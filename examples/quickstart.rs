//! Quickstart: test a planar and a far-from-planar network and print the
//! verdicts with round statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use planartest::core::{PlanarityTester, TesterConfig};
use planartest::graph::generators::{nonplanar, planar};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tester = PlanarityTester::new(TesterConfig::new(0.1).with_phases(8));

    let planar_net = planar::triangulated_grid(12, 12);
    let out = tester.run(&planar_net.graph)?;
    println!(
        "{:<28} n={:>5} m={:>6} -> {} ({} rounds, {} messages)",
        planar_net.name,
        planar_net.graph.n(),
        planar_net.graph.m(),
        if out.accepted() { "ACCEPT" } else { "REJECT" },
        out.rounds(),
        out.stats.messages,
    );
    assert!(out.accepted(), "planar inputs are always accepted");

    let far_net = nonplanar::k5_chain(20);
    let out = tester.run(&far_net.graph)?;
    println!(
        "{:<28} n={:>5} m={:>6} -> {} ({} rounds, {} rejecting node(s), first reason: {})",
        far_net.name,
        far_net.graph.n(),
        far_net.graph.m(),
        if out.accepted() { "ACCEPT" } else { "REJECT" },
        out.rounds(),
        out.rejections.len(),
        out.rejections
            .first()
            .map(|&(_, r)| r.to_string())
            .unwrap_or_default(),
    );
    assert!(!out.accepted(), "certified-far inputs are rejected");

    println!("\nStage I phase trace for the far input:");
    for p in &out.phases {
        println!(
            "  phase {:>2}: cut={:>6} parts={:>5} max_depth={:>3} peel_super_rounds={}",
            p.phase, p.cut_weight, p.parts, p.max_depth, p.peel_super_rounds
        );
    }
    Ok(())
}
