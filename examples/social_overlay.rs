//! A social-overlay scenario: a geographically planar backbone with
//! long-range "friendship" links. Sweeps the density of long-range links
//! and reports the tester verdict, the certified far-ness, and where in
//! the pipeline rejection evidence appeared — a miniature of experiment
//! E1's soundness table.
//!
//! ```sh
//! cargo run --release --example social_overlay
//! ```

use planartest::core::{PlanarityTester, RejectReason, TesterConfig};
use planartest::graph::generators::nonplanar;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tester = PlanarityTester::new(TesterConfig::new(0.1).with_phases(8));
    println!(
        "{:<36} {:>6} {:>8} {:>8} {:>8} {:>10}",
        "graph", "m", "far>=", "verdict", "rounds", "evidence"
    );
    for extra in [0.0f64, 0.2, 0.5, 1.0, 2.0, 4.0] {
        let mut rng = StdRng::seed_from_u64(7);
        let c = nonplanar::social_overlay(400, extra, &mut rng);
        let out = tester.run(&c.graph)?;
        let evidence = out
            .rejections
            .first()
            .map(|&(_, r)| match r {
                RejectReason::ArboricityEvidence => "stage-I",
                RejectReason::EulerBound => "euler",
                RejectReason::EmbeddingFailed => "embed",
                RejectReason::ViolatingEdge => "violation",
            })
            .unwrap_or("-");
        println!(
            "{:<36} {:>6} {:>8.3} {:>8} {:>8} {:>10}",
            c.name,
            c.graph.m(),
            c.far_fraction(),
            if out.accepted() { "ACCEPT" } else { "REJECT" },
            out.rounds(),
            evidence
        );
        // One-sided guarantee: anything certified >= 0.1-far must reject.
        if c.far_fraction() >= 0.1 {
            assert!(!out.accepted(), "certified-far overlay accepted");
        }
    }
    Ok(())
}
