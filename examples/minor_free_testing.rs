//! Corollary 16: testing cycle-freeness and bipartiteness on minor-free
//! graphs using the Stage I partition, plus the randomized Theorem 4
//! partition trade-off.
//!
//! ```sh
//! cargo run --release --example minor_free_testing
//! ```

use planartest::core::applications::{test_bipartiteness, test_cycle_freeness};
use planartest::core::partition::randomized::{run_randomized_partition, RandomPartitionConfig};
use planartest::core::TesterConfig;
use planartest::graph::generators::planar;
use planartest::sim::{Engine, SimConfig};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let cfg = TesterConfig::new(0.2).with_phases(6);

    // Cycle-freeness.
    let tree = planar::random_tree(256, &mut rng).graph;
    let grid = planar::grid(12, 12).graph;
    let mut engine = Engine::new(&tree, SimConfig::default());
    let out = test_cycle_freeness(&mut engine, &cfg)?;
    println!(
        "cycle-freeness  tree  -> {} ({} rounds)",
        verdict(out.accepted()),
        engine.stats().total_rounds()
    );
    let mut engine = Engine::new(&grid, SimConfig::default());
    let out = test_cycle_freeness(&mut engine, &cfg)?;
    println!(
        "cycle-freeness  grid  -> {} ({} rejecting)",
        verdict(out.accepted()),
        out.rejecting.len()
    );

    // Bipartiteness.
    let tri = planar::triangulated_grid(10, 10).graph;
    let mut engine = Engine::new(&grid, SimConfig::default());
    let out = test_bipartiteness(&mut engine, &cfg)?;
    println!("bipartiteness   grid  -> {}", verdict(out.accepted()));
    let mut engine = Engine::new(&tri, SimConfig::default());
    let out = test_bipartiteness(&mut engine, &cfg)?;
    println!(
        "bipartiteness   tri   -> {} ({} rejecting)",
        verdict(out.accepted()),
        out.rejecting.len()
    );

    // Theorem 4: randomized partition at different confidence levels.
    println!("\nrandomized minor-free partition (Theorem 4) on the triangulated grid:");
    for delta in [0.5, 0.1, 0.01] {
        let pcfg = RandomPartitionConfig::new(0.2, delta)
            .with_phases(8)
            .with_seed(3);
        let mut engine = Engine::new(&tri, SimConfig::default());
        let p = run_randomized_partition(&mut engine, &pcfg)?;
        let cut = p.state.cut_weight(&tri);
        println!(
            "  delta={:<5} trials/phase={} parts={:>3} cut={:>4} ({:.1}% of m) rounds={}",
            delta,
            pcfg.trials(),
            p.state.part_count(),
            cut,
            100.0 * cut as f64 / tri.m() as f64,
            engine.stats().total_rounds()
        );
    }
    Ok(())
}

fn verdict(accepted: bool) -> &'static str {
    if accepted {
        "ACCEPT"
    } else {
        "REJECT"
    }
}
