//! Corollary 17: ultra-sparse spanners for minor-free graphs, compared
//! against the random-shift clustering baseline (the Elkin–Neiman-style
//! comparator from the paper's §1.2).
//!
//! ```sh
//! cargo run --release --example spanner_demo
//! ```

use planartest::core::applications::build_spanner;
use planartest::core::baselines::{shift_spanner, RandomShiftConfig};
use planartest::core::TesterConfig;
use planartest::graph::generators::planar;
use planartest::sim::{Engine, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = planar::triangulated_grid(16, 16).graph;
    println!("input: triangulated grid, n={} m={}", g.n(), g.m());

    for eps in [0.4, 0.2, 0.1] {
        let cfg = TesterConfig::new(eps).with_phases(8);
        let mut engine = Engine::new(&g, SimConfig::default());
        let sp = build_spanner(&mut engine, &cfg)?;
        println!(
            "ours  eps={:<4} edges={:>4} (tree {:>4} + cut {:>4})  size/n={:.3}  max_stretch={}  rounds={}",
            eps,
            sp.edges.len(),
            sp.tree_edges,
            sp.cut_edges,
            sp.size_ratio(&g),
            sp.max_stretch(&g),
            engine.stats().total_rounds()
        );
    }

    for beta in [0.4, 0.2, 0.1] {
        let cfg = RandomShiftConfig::new(beta);
        let mut engine = Engine::new(&g, SimConfig::default());
        let edges = shift_spanner(&mut engine, &cfg)?;
        println!(
            "shift beta={:<4} edges={:>4}  size/n={:.3}  rounds={}",
            beta,
            edges.len(),
            edges.len() as f64 / g.n() as f64,
            engine.stats().total_rounds()
        );
    }
    Ok(())
}
