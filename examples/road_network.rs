//! Scenario from the paper's motivation: road networks are (nearly)
//! planar. We generate a city-style road network (grid with diagonal
//! streets and closures — planar by construction), verify the tester
//! accepts it, then add illegal "flyover" links until the network becomes
//! certifiably far from planar and watch the tester flip to reject.
//!
//! ```sh
//! cargo run --release --example road_network
//! ```

use planartest::core::{PlanarityTester, TesterConfig};
use planartest::graph::generators::planar;
use planartest::graph::GraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2024);
    let city = planar::road_network(14, 14, &mut rng);
    let n = city.graph.n();
    println!(
        "road network: {} intersections, {} road segments",
        n,
        city.graph.m()
    );

    let tester = PlanarityTester::new(TesterConfig::new(0.1).with_phases(8));
    let out = tester.run(&city.graph)?;
    println!(
        "planar city  -> {} ({} rounds)",
        if out.accepted() { "ACCEPT" } else { "REJECT" },
        out.rounds()
    );
    assert!(out.accepted());

    // Add random flyovers (long-range links) in increasing numbers.
    for flyovers in [8usize, 32, 128, 512] {
        let mut b = GraphBuilder::new(n);
        for (u, v) in city.graph.edges() {
            b.add_edge(u.index(), v.index())?;
        }
        for _ in 0..flyovers {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u != v {
                b.add_edge(u, v)?;
            }
        }
        let g = b.build();
        let excess = planartest::graph::generators::euler_excess(g.n(), g.m());
        let out = tester.run(&g)?;
        println!(
            "{:>4} flyovers: m={:>5} euler_excess={:>4} -> {} ({} rounds)",
            flyovers,
            g.m(),
            excess,
            if out.accepted() { "ACCEPT" } else { "REJECT" },
            out.rounds()
        );
    }
    println!("\nnote: one-sided testing — sparse flyover counts may legitimately accept;");
    println!("certified-far versions (large flyover counts) must reject.");
    Ok(())
}
