//! Workspace-level integration tests: the full tester pipeline across all
//! crates, on every generator family, with correctness cross-checked
//! against the centralized planarity substrate.

use planartest::core::{EmbeddingMode, PlanarityTester, RejectReason, TesterConfig};
use planartest::embed::demoucron::is_planar;
use planartest::graph::generators::{nonplanar, planar, Certified, PlanarityStatus};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tester(eps: f64) -> PlanarityTester {
    PlanarityTester::new(TesterConfig::new(eps).with_phases(8))
}

/// Completeness (one-sided error): every planar family must be accepted
/// under every seed we try.
#[test]
fn completeness_across_families_and_seeds() {
    let mut rng = StdRng::seed_from_u64(100);
    let families: Vec<Certified> = vec![
        planar::path(40),
        planar::cycle(41),
        planar::star(40),
        planar::grid(8, 7),
        planar::triangulated_grid(7, 7),
        planar::apollonian(90, &mut rng),
        planar::random_planar(90, 0.5, &mut rng),
        planar::random_tree(90, &mut rng),
        planar::maximal_outerplanar(60, &mut rng),
        planar::road_network(8, 8, &mut rng),
    ];
    for fam in &families {
        assert!(
            is_planar(&fam.graph),
            "{} generator must be planar",
            fam.name
        );
        for seed in [0u64, 1, 99] {
            let t = PlanarityTester::new(TesterConfig::new(0.1).with_phases(8).with_seed(seed));
            let out = t.run(&fam.graph).expect("run");
            assert!(
                out.accepted(),
                "planar family {} rejected (seed {seed}): {:?}",
                fam.name,
                out.rejections
            );
        }
    }
}

/// Soundness: certified-far families must be rejected.
#[test]
fn soundness_across_certified_far_families() {
    let mut rng = StdRng::seed_from_u64(200);
    let families: Vec<Certified> = vec![
        nonplanar::k5_chain(16),
        nonplanar::complete(12),
        nonplanar::planar_plus_chords(80, 80, &mut rng),
        nonplanar::near_regular(120, 8, &mut rng),
        nonplanar::social_overlay(144, 3.0, &mut rng),
        nonplanar::hypercube(7),
    ];
    for fam in &families {
        assert!(
            matches!(fam.status, PlanarityStatus::FarFromPlanar { .. }),
            "{} must carry a certificate",
            fam.name
        );
        let out = tester(0.05).run(&fam.graph).expect("run");
        assert!(
            !out.accepted(),
            "certified-far family {} accepted",
            fam.name
        );
    }
}

/// One-sidedness on non-planar but *not-certified-far* inputs: the tester
/// may accept or reject; it must never error.
#[test]
fn near_planar_inputs_are_handled() {
    let fam = nonplanar::torus(4, 5);
    let out = tester(0.1).run(&fam.graph).expect("run");
    // Any verdict is legal; stats must be coherent.
    assert!(out.rounds() > 0);
    let k33 = nonplanar::complete_bipartite(3, 3);
    let out = tester(0.1).run(&k33.graph).expect("run");
    assert!(
        !out.accepted(),
        "K3,3 as a single small part is caught by the embedder"
    );
}

/// The round complexity is sublinear in n for fixed eps: quadrupling n
/// must grow rounds by less than 4x. (At these small sizes the
/// `poly(1/ε)` part-diameter terms still dominate — parts span the whole
/// grid — so the asymptotic `O(log n)` ratio only emerges at larger n;
/// E2 measures that regime.)
#[test]
fn rounds_scale_sublinearly() {
    let small = planar::triangulated_grid(6, 6).graph;
    let large = planar::triangulated_grid(12, 12).graph; // 4x nodes
    let r_small = tester(0.2).run(&small).expect("run").rounds();
    let r_large = tester(0.2).run(&large).expect("run").rounds();
    assert!(
        (r_large as f64) < 4.0 * r_small as f64,
        "rounds grew {}x for 4x nodes ({} -> {})",
        r_large as f64 / r_small as f64,
        r_small,
        r_large
    );
}

/// Paper-faithful mode still rejects far inputs via violating edges
/// (Corollary 9 direction), even though its completeness is refuted.
#[test]
fn paper_mode_soundness() {
    let mut rng = StdRng::seed_from_u64(7);
    let far = nonplanar::planar_plus_chords(70, 70, &mut rng);
    let cfg = TesterConfig::new(0.05)
        .with_phases(8)
        .with_embedding(EmbeddingMode::Demoucron);
    let out = PlanarityTester::new(cfg).run(&far.graph).expect("run");
    assert!(!out.accepted());
}

/// Rejection evidence is attributable: dense graphs die in Stage I,
/// sparse non-planar parts die at the embedding or Euler check.
#[test]
fn rejection_reasons_are_sensible() {
    let dense = nonplanar::complete(14);
    let out = tester(0.1).run(&dense.graph).expect("run");
    assert!(out
        .rejections
        .iter()
        .all(|&(_, r)| r == RejectReason::ArboricityEvidence));

    let k33 = nonplanar::complete_bipartite(3, 3);
    let out = tester(0.1).run(&k33.graph).expect("run");
    assert!(out
        .rejections
        .iter()
        .all(|&(_, r)| { r == RejectReason::EmbeddingFailed || r == RejectReason::EulerBound }));
}

/// Determinism: identical config + seed => identical telemetry.
#[test]
fn full_pipeline_deterministic() {
    let mut rng = StdRng::seed_from_u64(5);
    let fam = planar::apollonian(70, &mut rng);
    let run = || {
        let out = tester(0.15).run(&fam.graph).expect("run");
        (out.rounds(), out.stats.messages, out.stats.words)
    };
    assert_eq!(run(), run());
}

/// Disconnected inputs: every component is partitioned and tested
/// independently; planar unions accept.
#[test]
fn disconnected_graphs_supported() {
    let mut rng = StdRng::seed_from_u64(6);
    let a = planar::triangulated_grid(4, 4).graph;
    let b = planar::random_tree(20, &mut rng).graph;
    let mut builder = planartest::graph::GraphBuilder::new(a.n() + b.n());
    for (u, v) in a.edges() {
        builder.add_edge(u.index(), v.index()).unwrap();
    }
    for (u, v) in b.edges() {
        builder
            .add_edge(a.n() + u.index(), a.n() + v.index())
            .unwrap();
    }
    let g = builder.build();
    let out = tester(0.2).run(&g).expect("run");
    assert!(out.accepted(), "{:?}", out.rejections);
}
