//! Property-based tests (proptest) on the cross-crate invariants the
//! paper's proofs rely on.

use planartest::core::oracle::{
    audit_partition, count_violating_edges, count_violating_edges_naive, non_tree_intervals,
};
use planartest::core::partition::run_partition;
use planartest::core::stage2::labels::{Label, LabeledEdge};
use planartest::core::TesterConfig;
use planartest::embed::demoucron::{check_planarity, is_planar};
use planartest::embed::RotationSystem;
use planartest::graph::generators::{nonplanar, planar};
use planartest::graph::{Graph, NodeId};
use planartest::sim::{Engine, SimConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Planar generators are accepted by the centralized planarity test
    /// and produce Euler-verified embeddings.
    #[test]
    fn planar_generators_embed(seed in 0u64..5000, n in 4usize..70) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = planar::apollonian(n.max(3), &mut rng).graph;
        let rot = check_planarity(&g).into_rotation().expect("apollonian is planar");
        prop_assert!(rot.is_planar_embedding(&g));
        // Faces count obeys Euler: f = m - n + 2 (connected).
        let f = rot.trace_faces(&g).len();
        prop_assert_eq!(f, g.m() - g.n() + 2);
    }

    /// Random subgraphs of planar graphs stay planar (closure under edge
    /// deletion) and K5-supergraphs stay non-planar.
    #[test]
    fn planarity_monotone(seed in 0u64..5000, keep in 0.2f64..0.9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = planar::random_planar(50, keep, &mut rng).graph;
        prop_assert!(is_planar(&g));
    }

    /// The violating-edge sweep matches the quadratic reference on random
    /// interval families.
    #[test]
    fn violation_sweep_matches_naive(pairs in prop::collection::vec((0u32..40, 0u32..40), 2..60)) {
        let ivs: Vec<LabeledEdge> = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| LabeledEdge::new(Label(vec![a]), Label(vec![b])))
            .collect();
        prop_assert_eq!(count_violating_edges(&ivs), count_violating_edges_naive(&ivs));
    }

    /// Claim 8 (sound direction): when a labelling has no violating
    /// edges, the graph really is planar — exercised through random
    /// planar graphs whose labellings happen to be violation-free, and
    /// through non-planar graphs which must always violate.
    #[test]
    fn claim8_nonplanar_always_violates(seed in 0u64..2000, k in 8usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = nonplanar::planar_plus_chords(30, k, &mut rng);
        let rot = RotationSystem::from_adjacency(&c.graph);
        if !is_planar(&c.graph) {
            let ivs = non_tree_intervals(&c.graph, &rot, NodeId::new(0));
            prop_assert!(
                count_violating_edges(&ivs) > 0,
                "a non-planar graph had a violation-free labelling (refutes Claim 8!)"
            );
        }
    }

    /// Stage-I partitions always satisfy the structural invariants:
    /// connected parts, consistent trees, monotone cut weight.
    #[test]
    fn partition_invariants(seed in 0u64..1000, phases in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = planar::random_planar(60, 0.8, &mut rng).graph;
        let cfg = TesterConfig::new(0.2).with_phases(phases);
        let mut engine = Engine::new(&g, SimConfig::default());
        let p = run_partition(&mut engine, &cfg).expect("partition");
        prop_assert!(p.completed_successfully());
        let audit = audit_partition(&g, &p);
        prop_assert!(audit.parts_connected);
        let mut prev = g.m() as u64;
        for ph in &p.phases {
            prop_assert!(ph.cut_weight <= prev, "cut weight must not grow");
            prev = ph.cut_weight;
            // Claim 4's bound on diameters via tree depth.
            prop_assert!((ph.max_depth as u64) < 4u64.pow(ph.phase as u32 + 1));
        }
    }

    /// The Euler-formula verifier agrees with Demoucron on random graphs:
    /// if Demoucron embeds, genus is 0; if it rejects, no rotation we can
    /// build from adjacency order verifies as planar *and* the graph
    /// contains K5/K33-ish density or a refuting fragment.
    #[test]
    fn demoucron_internally_consistent(seed in 0u64..2000, n in 6usize..40, extra in 0usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = n.max(5);
        // A maximal planar base leaves n(n-1)/2 - (3n-6) free non-edges.
        let free = (n * (n - 1) / 2).saturating_sub(3 * n - 6);
        let extra = extra.min(n).min(free);
        let c = nonplanar::planar_plus_chords(n, extra, &mut rng);
        match check_planarity(&c.graph) {
            planartest::embed::demoucron::PlanarityCheck::Planar(rot) => {
                prop_assert!(rot.is_planar_embedding(&c.graph));
            }
            planartest::embed::demoucron::PlanarityCheck::NonPlanar => {
                // Cross-check: deleting the added chords leaves a planar
                // base, so non-planarity must come from the chords.
                prop_assert!(extra > 0);
            }
        }
    }
}

/// Non-proptest sanity: the quadratic far-ness certificate math.
#[test]
fn far_fraction_certificates() {
    let c = nonplanar::k5_chain(5);
    assert!(c.far_fraction() > 0.0);
    let g: &Graph = &c.graph;
    assert_eq!(g.n(), 25);
}
