//! Telemetry determinism tests: the whole stage-timing pipeline run on
//! the injected mock clock (no wall-clock reads anywhere), plus the
//! property test tying [`Histogram`] quantiles to exact sort-based
//! quantiles within one bucket's relative error.

use planartest_core::TesterConfig;
use planartest_service::protocol::handle_line;
use planartest_service::{
    CacheStatus, Clock, GraphRef, Histogram, Property, Query, Service, StageTimes,
};
use proptest::prelude::*;

/// Exact nearest-rank quantile over a sorted sample — the convention
/// [`Histogram::value_at_quantile`] mirrors bucket-wise.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

proptest! {
    /// The log-bucketed histogram's quantiles match exact sort-based
    /// quantiles within one bucket's relative error: the estimate is a
    /// bucket upper edge, so it never under-reports and overshoots by
    /// at most the bucket width (`value/16 + 1` with 4 sub-bucket
    /// bits).
    #[test]
    fn histogram_quantiles_match_sorted_ranks(
        values in prop::collection::vec(0u64..1_000_000_000, 1..200),
        q in 0.0f64..1.001,
    ) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let est = hist.value_at_quantile(q);
        prop_assert!(
            exact <= est && est <= exact + exact / 16 + 1,
            "q={q}: exact {exact}, histogram {est}"
        );
    }
}

/// A service on a fresh auto-ticking mock clock (every stamp advances
/// one microsecond), with one planar and one certified-far graph
/// resident.
fn mock_service() -> Service {
    let (clock, _) = Clock::mock(1);
    let mut service = Service::new().with_clock(clock);
    service
        .registry_mut()
        .ingest_spec("tri", "tri_grid(6,6)")
        .expect("planar spec");
    service
        .registry_mut()
        .ingest_spec("far", "k5_chain(4)")
        .expect("far spec");
    service
}

fn planarity(graph: &str, seed: u64) -> Query {
    Query::planarity(
        GraphRef::Name(graph.into()),
        TesterConfig::new(0.2).with_phases(5).with_seed(seed),
    )
}

/// Runs the canonical cold → warm → certificate sequence, returning
/// the four responses' stage timings in order.
fn canonical_run(service: &mut Service) -> Vec<(CacheStatus, StageTimes)> {
    [
        planarity("tri", 1), // cold accept
        planarity("tri", 1), // warm replay
        planarity("far", 1), // cold reject (records the certificate)
        planarity("far", 2), // certificate replay under a new seed
    ]
    .into_iter()
    .map(|q| {
        let r = service.query(q).expect("query");
        (r.cache, r.stages)
    })
    .collect()
}

#[test]
fn stage_timings_are_contiguous_and_deterministic_on_the_mock_clock() {
    let runs: Vec<_> = (0..2).map(|_| canonical_run(&mut mock_service())).collect();

    // Deterministic: two fresh services on fresh mock clocks produce
    // bit-identical stage timings.
    assert_eq!(runs[0], runs[1], "mock-clock stage timings must repeat");

    let statuses: Vec<CacheStatus> = runs[0].iter().map(|(c, _)| *c).collect();
    assert_eq!(
        statuses,
        [
            CacheStatus::Cold,
            CacheStatus::Warm,
            CacheStatus::Cold,
            CacheStatus::Certificate
        ]
    );
    for (cache, stages) in &runs[0] {
        // Contiguous spans: one stamp per boundary, so the stage sum
        // IS the end-to-end latency — exactly, not within error.
        assert_eq!(
            stages.queue_micros
                + stages.resolve_micros
                + stages.execute_micros
                + stages.respond_micros,
            stages.total_micros(),
        );
        // Every boundary is a distinct auto-tick stamp, so the spans a
        // query actually crosses are nonzero…
        assert!(stages.queue_micros > 0, "queue span crosses submit");
        assert!(stages.resolve_micros > 0, "resolve span crosses stamps");
        match cache {
            CacheStatus::Cold => {
                assert!(stages.execute_micros > 0, "cold queries hit the engine");
                assert!(stages.respond_micros > 0, "cold queries apply results");
            }
            // …while cache hits end at resolve time: no engine pass,
            // no apply stage.
            CacheStatus::Warm | CacheStatus::Certificate => {
                assert_eq!(stages.execute_micros, 0);
                assert_eq!(stages.respond_micros, 0);
            }
        }
    }
}

#[test]
fn latency_histograms_distinguish_cold_warm_and_certificate() {
    let mut service = mock_service();
    let runs = canonical_run(&mut service);
    let telemetry = service.telemetry();

    // One histogram cell per (property, cache outcome): the three
    // provenance classes land in three separate distributions.
    let cell = |cache| telemetry.latency_histogram(Property::Planarity, cache);
    let cold = cell(CacheStatus::Cold).expect("cold cell");
    let warm = cell(CacheStatus::Warm).expect("warm cell");
    let cert = cell(CacheStatus::Certificate).expect("certificate cell");
    assert_eq!(cold.count(), 2, "tri and far cold passes");
    assert_eq!(warm.count(), 1);
    assert_eq!(cert.count(), 1);

    // Each cell's recorded sum is the exact total of the stage sums
    // that landed there — stage timings and end-to-end latency agree.
    let total_for = |want: CacheStatus| -> u64 {
        runs.iter()
            .filter(|(c, _)| *c == want)
            .map(|(_, s)| s.total_micros())
            .sum()
    };
    assert_eq!(cold.sum(), total_for(CacheStatus::Cold));
    assert_eq!(warm.sum(), total_for(CacheStatus::Warm));
    assert_eq!(cert.sum(), total_for(CacheStatus::Certificate));

    // And the cache classes are meaningfully ordered: a cold pass
    // costs strictly more stamped time than its cache replays.
    assert!(cold.min() > warm.max());
    assert!(cold.min() > cert.max());
}

#[test]
fn metrics_ops_snapshot_the_histograms() {
    let mut service = mock_service();
    canonical_run(&mut service);

    // `metrics`: the JSON snapshot carries one latency entry per
    // (property, cache) cell with quantiles and raw buckets.
    let metrics = handle_line(&mut service, r#"{"op":"metrics"}"#);
    assert_eq!(metrics.get("ok").unwrap().as_bool(), Some(true));
    let latency = metrics.get("latency").unwrap().as_arr().expect("array");
    let mut cells: Vec<(String, String)> = latency
        .iter()
        .map(|entry| {
            assert!(
                entry
                    .get("latency_micros")
                    .unwrap()
                    .get("p50")
                    .unwrap()
                    .as_u64()
                    .is_some(),
                "every cell snapshots its quantiles"
            );
            (
                entry.get("property").unwrap().as_str().unwrap().to_string(),
                entry.get("cache").unwrap().as_str().unwrap().to_string(),
            )
        })
        .collect();
    cells.sort();
    assert_eq!(
        cells,
        [
            ("planarity".to_string(), "certificate".to_string()),
            ("planarity".to_string(), "cold".to_string()),
            ("planarity".to_string(), "warm".to_string()),
        ]
    );
    let cycles = metrics.get("cycles").unwrap();
    assert!(cycles.get("wake").unwrap().get("depth").is_some());
    assert!(metrics
        .get("engine")
        .unwrap()
        .get("coalesce_ratio")
        .is_some());

    // `metrics-text`: the Prometheus exposition of the same state.
    let text_resp = handle_line(&mut service, r#"{"op":"metrics-text"}"#);
    assert_eq!(text_resp.get("ok").unwrap().as_bool(), Some(true));
    let text = text_resp.get("text").unwrap().as_str().expect("text");
    assert!(text.contains("planartest_uptime_micros"));
    assert!(text.contains("planartest_drain_wake_total{reason=\"depth\"}"));
    assert!(text.contains("_bucket{"), "histograms expose buckets");
    assert!(
        text.contains("le=\"+Inf\""),
        "cumulative buckets end at +Inf"
    );

    // `stats`: the extended summary carries the satellite fields.
    let stats = handle_line(&mut service, r#"{"op":"stats"}"#);
    assert_eq!(stats.get("queue_depth").unwrap().as_u64(), Some(0));
    assert!(stats.get("uptime_micros").unwrap().as_u64().is_some());
    assert!(stats.get("accept_stripes").unwrap().as_u64().is_some());
    assert!(stats.get("accept_capacity").unwrap().as_u64().is_some());
    assert!(stats.get("drain_cycles").unwrap().as_u64().is_some());
    assert!(stats.get("wake").unwrap().get("linger").is_some());
}

#[test]
fn latency_cells_account_for_every_query_in_a_mixed_sweep() {
    let mut service = mock_service();

    // A deterministic mixed sweep: cold and warm planarity on both
    // graphs, the seed-independent properties, and one batch. Every
    // query must land in exactly one (property, cache) latency cell.
    let mut requests = Vec::new();
    for seed in 0..4 {
        requests.push(format!(
            r#"{{"op":"query","graph":"tri","epsilon":0.2,"phases":5,"seed":{seed}}}"#
        ));
    }
    requests.push(requests[0].clone()); // warm replay
    for seed in 0..3 {
        requests.push(format!(
            r#"{{"op":"query","graph":"far","epsilon":0.2,"phases":5,"seed":{seed}}}"#
        ));
    }
    for property in ["cycle_freeness", "bipartiteness"] {
        for graph in ["tri", "far"] {
            requests.push(format!(
                r#"{{"op":"query","graph":"{graph}","property":"{property}","epsilon":0.2,"phases":5,"seed":0}}"#
            ));
        }
    }
    let sent = requests.len() + 3; // the batch below carries 3 queries
    requests.push(
        r#"{"op":"batch","queries":[
            {"op":"query","graph":"tri","epsilon":0.2,"phases":5,"seed":1},
            {"op":"query","graph":"far","epsilon":0.2,"phases":5,"seed":1},
            {"op":"query","graph":"tri","property":"cycle_freeness","epsilon":0.2,"phases":5,"seed":0}
        ]}"#
            .to_string(),
    );
    for request in &requests {
        let response = handle_line(&mut service, request);
        assert_eq!(
            response.get("ok").unwrap().as_bool(),
            Some(true),
            "request failed: {request}"
        );
    }

    // Conservation: the per-cell histogram counts sum to exactly the
    // number of queries sent — nothing double-counted, nothing dropped
    // — and the scheduler's own ledger agrees.
    let metrics = handle_line(&mut service, r#"{"op":"metrics"}"#);
    let cell_total: u64 = metrics
        .get("latency")
        .unwrap()
        .as_arr()
        .expect("latency array")
        .iter()
        .map(|entry| {
            entry
                .get("latency_micros")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64()
                .expect("cell count")
        })
        .sum();
    assert_eq!(cell_total, sent as u64);
    assert_eq!(
        metrics.get("queries_served").unwrap().as_u64(),
        Some(sent as u64)
    );
}

#[test]
fn queue_depth_hwm_ratchets_across_a_load_ramp() {
    use std::io::Write;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    use planartest_service::wire::Value;
    use planartest_service::{ServeOptions, Server, Submission};

    #[derive(Clone, Default)]
    struct Sink(Arc<Mutex<Vec<u8>>>);
    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let mut service = Service::new();
    service
        .registry_mut()
        .ingest_spec("g", "tri_grid(4,4)")
        .expect("spec");
    // A long linger with no depth wake parks the drain loop, so each
    // round's burst accumulates in the queue in full; the trailing
    // `stats` op is non-coalescable and flushes the round on demand.
    let server = Server::start(
        service,
        ServeOptions {
            linger: Duration::from_secs(30),
            ..ServeOptions::default()
        },
    );
    let queue = server.submission_queue();
    let sink = Sink::default();
    let conn = server.connections().register(Box::new(sink.clone()));

    let query = |seed: usize| {
        let line =
            format!(r#"{{"op":"query","graph":"g","epsilon":0.2,"phases":5,"seed":{seed}}}"#);
        Submission::new(conn, Ok(Value::parse(&line).expect("query parses")))
    };
    let lines_in = |sink: &Sink| {
        let buf = sink.0.lock().unwrap();
        buf.iter().filter(|&&b| b == b'\n').count()
    };

    // Ramp the per-round burst up; the high-water mark must ratchet:
    // it tracks each new deepest backlog and never moves back down
    // after the drain empties the queue.
    let mut responses_expected = 0;
    let mut hwm_seen = 0;
    for (round, burst) in [2usize, 5, 9].into_iter().enumerate() {
        for i in 0..burst {
            queue.push(query(round * 100 + i));
        }
        assert_eq!(queue.depth(), burst, "burst parked until the flush op");
        queue.push(Submission::new(
            conn,
            Ok(Value::parse(r#"{"op":"stats"}"#).unwrap()),
        ));

        responses_expected += burst + 1;
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while lines_in(&sink) < responses_expected {
            assert!(std::time::Instant::now() < deadline, "drain stalled");
            std::thread::sleep(Duration::from_millis(5));
        }

        let hwm = queue.depth_hwm();
        assert_eq!(hwm, burst + 1, "deepest backlog this ramp so far");
        assert!(hwm > hwm_seen, "the mark ratchets upward across rounds");
        hwm_seen = hwm;

        // The `stats` response (the round's last line) reports the
        // same mark on the wire, even though the queue is empty again.
        let buf = sink.0.lock().unwrap();
        let text = String::from_utf8(buf.clone()).expect("utf8 responses");
        let stats = Value::parse(text.lines().last().unwrap()).expect("stats parses");
        assert_eq!(
            stats.get("queue_depth_hwm").unwrap().as_u64(),
            Some(hwm as u64)
        );
        assert_eq!(stats.get("responses_lost").unwrap().as_u64(), Some(0));
        drop(buf);
        assert_eq!(queue.depth(), 0, "flush op drains the whole round");
    }

    server.request_shutdown();
    let service = server.join();
    assert_eq!(service.stats().queue_depth_hwm, 10, "mark survives join");
}

#[test]
fn trace_log_replays_the_stage_stamps() {
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct Sink(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Sink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let mut service = mock_service();
    let sink = Sink::default();
    service.telemetry().set_trace_writer(Box::new(sink.clone()));
    let runs = canonical_run(&mut service);

    let bytes = sink.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("utf8 trace");
    let records: Vec<planartest_service::wire::Value> = text
        .lines()
        .map(|l| planartest_service::wire::Value::parse(l).expect("trace record parses"))
        .collect();
    assert_eq!(records.len(), 4 * runs.len(), "four records per query");

    // Each query's four records reconstruct its stage boundaries:
    // every record is stamped at its stage's *start*, so the respond
    // record's offset from submit plus its own span is exactly the
    // stage sum.
    for (i, (_, stages)) in runs.iter().enumerate() {
        let chunk = &records[4 * i..4 * i + 4];
        let events: Vec<&str> = chunk
            .iter()
            .map(|r| r.get("event").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(events, ["submit", "resolve", "execute", "respond"]);
        let at = |j: usize| chunk[j].get("at_micros").unwrap().as_u64().unwrap();
        assert_eq!(at(3) - at(0) + stages.respond_micros, stages.total_micros());
        assert_eq!(
            chunk[3].get("total_micros").unwrap().as_u64(),
            Some(stages.total_micros())
        );
        // Lib-path queries have no connection: conn is null.
        assert!(matches!(
            chunk[0].get("conn"),
            Some(planartest_service::wire::Value::Null)
        ));
    }
}
