//! Cache-correctness properties: cached and uncached paths must be
//! bit-identical, across every execution backend — and a cached reject
//! must replay its witness without re-running the partition.

use planartest_core::applications::{test_bipartiteness, test_cycle_freeness};
use planartest_core::{PlanarityTester, TesterConfig};
use planartest_graph::generators::spec;
use planartest_service::{CacheStatus, GraphRef, Outcome, Property, Query, Service};
use planartest_sim::{Backend, Engine, SimConfig, SimStats};
use proptest::prelude::*;

/// The corpus the properties draw from: planar, certified-far, and
/// uncertified non-planar families, all spec-addressable.
const SPECS: &[&str] = &[
    "tri_grid(5,5)",
    "grid(4,6)",
    "cycle(12)",
    "random_planar(30, 0.7, seed=3)",
    "k5_chain(4)",
    "complete(8)",
    "planar_plus_chords(16, 10, seed=2)",
    "gnp(24, 0.25, seed=5)",
];

const EPSILONS: &[f64] = &[0.05, 0.1, 0.25];

const BACKENDS: &[Backend] = &[
    Backend::Serial,
    Backend::Parallel { threads: 2 },
    Backend::Auto,
];

const PROPERTIES: &[Property] = &[
    Property::Planarity,
    Property::CycleFreeness,
    Property::Bipartiteness,
];

fn cfg(eps: f64, seed: u64) -> TesterConfig {
    TesterConfig::new(eps).with_phases(4).with_seed(seed)
}

/// Reference run with no service in the loop (the "uncached path"),
/// pinned to the serial engine.
fn direct(spec_text: &str, cfg: &TesterConfig, property: Property) -> Outcome {
    let graph = spec::parse(spec_text).expect("corpus spec").graph;
    match property {
        Property::Planarity => Outcome::Planarity(
            PlanarityTester::new(cfg.clone())
                .with_backend(Backend::Serial)
                .run(&graph)
                .expect("run"),
        ),
        Property::CycleFreeness | Property::Bipartiteness => {
            let mut engine = Engine::new(&graph, SimConfig::default());
            let baseline = *engine.stats();
            let outcome = match property {
                Property::CycleFreeness => test_cycle_freeness(&mut engine, cfg),
                _ => test_bipartiteness(&mut engine, cfg),
            }
            .expect("run");
            let stats = engine.stats().delta_since(&baseline);
            Outcome::Hereditary { outcome, stats }
        }
    }
}

/// Field-wise bit equality of two outcomes (verdict, witnesses, and the
/// full statistics ledger — `RunReport`s absorb into `SimStats`, so
/// equal stats means every absorbed report agreed).
fn assert_outcomes_identical(a: &Outcome, b: &Outcome, context: &str) {
    assert_eq!(a.accepted(), b.accepted(), "{context}: verdict");
    assert_eq!(
        a.rejecting_nodes(),
        b.rejecting_nodes(),
        "{context}: witnesses"
    );
    let (sa, sb): (&SimStats, &SimStats) = (a.stats(), b.stats());
    assert_eq!(sa, sb, "{context}: stats ledger");
    match (a, b) {
        (Outcome::Planarity(x), Outcome::Planarity(y)) => {
            assert_eq!(x.rejections, y.rejections, "{context}: reject reasons");
            assert_eq!(
                x.violation_witnesses, y.violation_witnesses,
                "{context}: violation witnesses"
            );
            let xs: Vec<usize> = x.parts.iter().map(|p| p.sampled).collect();
            let ys: Vec<usize> = y.parts.iter().map(|p| p.sampled).collect();
            assert_eq!(xs, ys, "{context}: per-part sample counts");
        }
        (Outcome::Hereditary { outcome: x, .. }, Outcome::Hereditary { outcome: y, .. }) => {
            assert_eq!(x.parts, y.parts, "{context}: part count");
        }
        _ => panic!("{context}: outcome shapes diverged"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cached and uncached paths return bit-identical outcomes, with the
    /// cold pass and the warm replay on independently chosen backends.
    #[test]
    fn cached_equals_uncached_across_backends(
        spec_idx in 0..SPECS.len(),
        eps_idx in 0..EPSILONS.len(),
        seed in 0u64..1_000,
        prop_idx in 0..PROPERTIES.len(),
        cold_backend in 0..BACKENDS.len(),
        warm_backend in 0..BACKENDS.len(),
    ) {
        let spec_text = SPECS[spec_idx];
        let property = PROPERTIES[prop_idx];
        let cfg = cfg(EPSILONS[eps_idx], seed);
        let reference = direct(spec_text, &cfg, property);

        let mut service = Service::new();
        service.registry_mut().ingest_spec("g", spec_text).unwrap();
        let query = |backend: Backend| {
            Query::planarity(GraphRef::Name("g".into()), cfg.clone())
                .with_property(property)
                .with_backend(backend)
        };

        let cold = service.query(query(BACKENDS[cold_backend])).unwrap();
        prop_assert_eq!(cold.cache, CacheStatus::Cold);
        assert_outcomes_identical(
            &cold.outcome,
            &reference,
            &format!("cold {spec_text} {property} backend {cold_backend}"),
        );
        prop_assert_eq!(service.engine_passes(), 1);

        // Warm replay: possibly a different backend — the cache key
        // ignores backends because outcomes are backend-invariant.
        let warm = service.query(query(BACKENDS[warm_backend])).unwrap();
        prop_assert_eq!(warm.cache, CacheStatus::Warm);
        assert_outcomes_identical(
            &warm.outcome,
            &reference,
            &format!("warm {spec_text} {property} backend {warm_backend}"),
        );
        prop_assert_eq!(service.engine_passes(), 1, "warm hits must not run engines");
    }

    /// A coalesced drain serves every member bit-identically to its solo
    /// uncached run, and re-querying any member is a warm replay.
    #[test]
    fn coalesced_batch_equals_solo_runs(
        spec_idx in 0..SPECS.len(),
        eps_idx in 0..EPSILONS.len(),
        base_seed in 0u64..1_000,
        backend in 0..BACKENDS.len(),
    ) {
        let spec_text = SPECS[spec_idx];
        let mut service = Service::new();
        service.registry_mut().ingest_spec("g", spec_text).unwrap();
        let seeds: Vec<u64> = (base_seed..base_seed + 3).collect();
        for &seed in &seeds {
            service.submit(
                Query::planarity(
                    GraphRef::Name("g".into()),
                    cfg(EPSILONS[eps_idx], seed),
                )
                .with_backend(BACKENDS[backend]),
            );
        }
        let drained = service.drain();
        prop_assert_eq!(service.engine_passes(), 1, "one pass for the group");
        for (&seed, (_, result)) in seeds.iter().zip(&drained) {
            let response = result.as_ref().unwrap();
            prop_assert_eq!(response.coalesced, seeds.len());
            let reference = direct(
                spec_text,
                &cfg(EPSILONS[eps_idx], seed),
                Property::Planarity,
            );
            assert_outcomes_identical(
                &response.outcome,
                &reference,
                &format!("coalesced {spec_text} seed {seed}"),
            );
            // And the cache now warm-replays that exact seed.
            let warm = service
                .query(Query::planarity(
                    GraphRef::Name("g".into()),
                    cfg(EPSILONS[eps_idx], seed),
                ))
                .unwrap();
            prop_assert_eq!(warm.cache, CacheStatus::Warm);
            assert_outcomes_identical(&warm.outcome, &reference, "warm after batch");
        }
        prop_assert_eq!(service.engine_passes(), 1);
    }

    /// One-sided-error retention: a cached reject replays its witness
    /// for *unseen* seeds without re-running the partition (the engine
    /// pass counter proves no engine work happened).
    #[test]
    fn cached_reject_replays_witness_without_rerunning(
        far_idx in 0..3usize,
        seed_a in 0u64..500,
        seed_offset in 1u64..500,
        backend in 0..BACKENDS.len(),
    ) {
        // Certified-far corpus members: every seed rejects.
        let spec_text = ["k5_chain(4)", "complete(8)", "planar_plus_chords(16, 10, seed=2)"][far_idx];
        let seed_b = seed_a + seed_offset;
        let mut service = Service::new();
        service.registry_mut().ingest_spec("far", spec_text).unwrap();
        let query = |seed: u64| {
            Query::planarity(GraphRef::Name("far".into()), cfg(0.05, seed))
                .with_backend(BACKENDS[backend])
        };

        let first = service.query(query(seed_a)).unwrap();
        prop_assert!(!first.outcome.accepted(), "{} must reject", spec_text);
        prop_assert_eq!(service.engine_passes(), 1);

        let replay = service.query(query(seed_b)).unwrap();
        prop_assert_eq!(replay.cache, CacheStatus::Certificate);
        prop_assert_eq!(
            service.engine_passes(),
            1,
            "certificate replay must not re-run the partition"
        );
        // The replay is the certifying run, witness and stats included.
        prop_assert_eq!(replay.seed, seed_a);
        assert_outcomes_identical(&replay.outcome, &first.outcome, "certificate replay");
    }
}
