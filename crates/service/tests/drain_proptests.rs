//! Scheduler-determinism properties: a drain whose independent groups
//! execute on a parallel worker pool must be **bit-for-bit** equal to
//! the sequential drain — same verdicts, witnesses, statistics
//! ledgers, cache provenance, coalescing counts and telemetry — across
//! Serial/Parallel/Auto engine backends and mixed properties.
//!
//! This is the contract that lets the concurrent server fan groups out
//! (`exec::execute_groups`) without the results depending on pool
//! scheduling: group execution is pure, and all ordered state (cache
//! inserts, counters) is applied sequentially in group order.

use planartest_core::TesterConfig;
use planartest_service::{DrainedQuery, GraphRef, Property, Query, Service};
use planartest_sim::Backend;
use proptest::prelude::*;

/// The corpus: two planar families, a certified-far family, and an
/// uncertified non-planar one, so drains mix accepts and rejects.
const SPECS: &[&str] = &[
    "tri_grid(4,4)",
    "grid(3,5)",
    "k5_chain(3)",
    "gnp(18, 0.3, seed=5)",
];

const EPSILONS: &[f64] = &[0.1, 0.25];

const BACKENDS: &[Backend] = &[
    Backend::Serial,
    Backend::Parallel { threads: 2 },
    Backend::Auto,
];

const PROPERTIES: &[Property] = &[
    Property::Planarity,
    Property::CycleFreeness,
    Property::Bipartiteness,
];

/// One generated query: indices into the tables above plus a seed.
/// `graph_idx == SPECS.len()` references a graph that was never
/// ingested, exercising per-query failure equivalence too.
#[derive(Debug, Clone)]
struct Spec {
    graph_idx: usize,
    eps_idx: usize,
    seed: u64,
    property_idx: usize,
    backend_idx: usize,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        0..SPECS.len() + 1,
        0..EPSILONS.len(),
        0u64..4,
        0..PROPERTIES.len(),
        0..BACKENDS.len(),
    )
        .prop_map(
            |(graph_idx, eps_idx, seed, property_idx, backend_idx)| Spec {
                graph_idx,
                eps_idx,
                seed,
                property_idx,
                backend_idx,
            },
        )
}

fn build_query(spec: &Spec) -> Query {
    let graph = if spec.graph_idx < SPECS.len() {
        GraphRef::Name(format!("g{}", spec.graph_idx))
    } else {
        GraphRef::Name("missing".into())
    };
    Query::planarity(
        graph,
        TesterConfig::new(EPSILONS[spec.eps_idx])
            .with_phases(4)
            .with_seed(spec.seed),
    )
    .with_property(PROPERTIES[spec.property_idx])
    .with_backend(BACKENDS[spec.backend_idx])
}

/// Runs the whole workload through a fresh service with the given
/// group-execution width: every spec submitted, one drain, then a
/// second drain of the same workload (cache-hit paths), returning both
/// drains plus the final telemetry.
fn run_workload(
    specs: &[Spec],
    group_threads: usize,
) -> (Vec<DrainedQuery>, Vec<DrainedQuery>, u64) {
    let mut service = Service::new().with_group_threads(group_threads);
    for (i, spec_text) in SPECS.iter().enumerate() {
        service
            .registry_mut()
            .ingest_spec(&format!("g{i}"), spec_text)
            .unwrap();
    }
    for spec in specs {
        service.submit(build_query(spec));
    }
    let cold = service.drain();
    for spec in specs {
        service.submit(build_query(spec));
    }
    let warm = service.drain();
    (cold, warm, service.engine_passes())
}

fn assert_drains_identical(a: &[DrainedQuery], b: &[DrainedQuery], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: drain length");
    for (i, ((id_a, ra), (id_b, rb))) in a.iter().zip(b).enumerate() {
        let context = format!("{context}: query {i}");
        assert_eq!(id_a, id_b, "{context}: id");
        match (ra, rb) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.graph, y.graph, "{context}: graph fp");
                assert_eq!(x.property, y.property, "{context}: property");
                assert_eq!(x.seed, y.seed, "{context}: seed");
                assert_eq!(x.cache, y.cache, "{context}: cache provenance");
                assert_eq!(x.coalesced, y.coalesced, "{context}: coalesced");
                assert_eq!(
                    x.outcome.accepted(),
                    y.outcome.accepted(),
                    "{context}: verdict"
                );
                assert_eq!(
                    x.outcome.rejecting_nodes(),
                    y.outcome.rejecting_nodes(),
                    "{context}: witnesses"
                );
                assert_eq!(x.outcome.stats(), y.outcome.stats(), "{context}: stats");
            }
            (Err(x), Err(y)) => {
                assert_eq!(x.to_string(), y.to_string(), "{context}: error");
            }
            _ => panic!("{context}: Ok/Err shape diverged"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance property: parallel-group drains equal sequential
    /// `Service::drain` bit-for-bit, cold and warm, including the
    /// engine-pass telemetry.
    #[test]
    fn parallel_group_drain_equals_sequential(
        specs in proptest::collection::vec(spec_strategy(), 1..9),
        threads in 2usize..6,
    ) {
        let (seq_cold, seq_warm, seq_passes) = run_workload(&specs, 1);
        let (par_cold, par_warm, par_passes) = run_workload(&specs, threads);
        assert_drains_identical(&seq_cold, &par_cold, "cold drain");
        assert_drains_identical(&seq_warm, &par_warm, "warm drain");
        prop_assert_eq!(seq_passes, par_passes, "engine pass counts");
    }
}
