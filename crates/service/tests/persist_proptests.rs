//! Crash-safety properties for the durable certificate log, driven on
//! a deterministic mock clock.
//!
//! The write-ahead log's contract under crashes:
//!
//! * every `append` is one `write` + `sync_data` of a full LDJSON line,
//!   so a crash mid-append can damage **at most the final line** — the
//!   replay truncates the torn tail, counts it, and every earlier
//!   record survives verbatim;
//! * replay is first-wins and idempotent: duplicate records (the log is
//!   append-only across cache clears) collapse to one certificate;
//! * compaction is state-identical: restart → compact → restart serves
//!   exactly the certificates the pre-compaction restart served, and
//!   compacting twice yields the same record set.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use planartest_core::TesterConfig;
use planartest_service::{CacheStatus, Clock, GraphRef, Query, Service, StateSummary};
use proptest::prelude::*;

/// Certified-far corpus: every member rejects at eps = 0.05, so every
/// first query mints a durable certificate.
const FAR_SPECS: &[&str] = &[
    "k5_chain(4)",
    "complete(8)",
    "planar_plus_chords(16, 10, seed=2)",
];

/// The certifying seed — fixed, so recomputing a certificate after a
/// cache clear appends a byte-identical duplicate record.
const CERT_SEED: u64 = 5;

fn cfg(seed: u64) -> TesterConfig {
    TesterConfig::new(0.05).with_phases(4).with_seed(seed)
}

fn scratch_dir() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "planartest-persist-prop-{}-{id}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A fresh service on a deterministic mock clock, attached to `dir`.
fn revive(dir: &Path) -> (Service, StateSummary) {
    let (clock, _handle) = Clock::mock(25);
    let mut service = Service::new().with_clock(clock);
    let summary = service.set_state_dir(dir).expect("attach state dir");
    (service, summary)
}

fn ingest(service: &mut Service, spec_idx: usize) {
    let name = format!("far{spec_idx}");
    if service
        .registry()
        .resolve(&GraphRef::Name(name.clone()))
        .is_err()
    {
        service
            .registry_mut()
            .ingest_spec(&name, FAR_SPECS[spec_idx])
            .expect("corpus spec");
    }
}

fn query(service: &mut Service, spec_idx: usize, seed: u64) -> (CacheStatus, bool, u64, u64, u64) {
    let r = service
        .query(Query::planarity(
            GraphRef::Name(format!("far{spec_idx}")),
            cfg(seed),
        ))
        .expect("query");
    (
        r.cache,
        r.outcome.accepted(),
        r.seed,
        r.outcome.stats().total_rounds(),
        r.outcome.stats().words,
    )
}

fn sorted_log_lines(dir: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(dir.join("certificates.ldjson")).unwrap_or_default();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    lines.sort();
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tearing `t ∈ [0, 10)` bytes off the log tail (a crash mid-append)
    /// loses at most the most recent record: replay counts exactly one
    /// skipped tail when torn, every earlier certificate replays
    /// bit-identically without an engine pass, and only the torn
    /// certificate pays a recompute.
    #[test]
    fn torn_tail_loses_at_most_the_last_record(
        order in prop::collection::vec(0..FAR_SPECS.len(), 1..7),
        tear in 0usize..10,
    ) {
        let dir = scratch_dir();
        let (mut service, summary) = revive(&dir);
        prop_assert_eq!(summary, StateSummary::default());

        // Cold pass: log lines appear in first-occurrence order of the
        // specs; repeats are certificate hits and append nothing.
        let mut appended: Vec<usize> = Vec::new();
        let mut cold = vec![None; FAR_SPECS.len()];
        for &idx in &order {
            ingest(&mut service, idx);
            let out = query(&mut service, idx, CERT_SEED);
            prop_assert!(!out.1, "far corpus must reject");
            if cold[idx].is_none() {
                prop_assert_eq!(out.0, CacheStatus::Cold);
                appended.push(idx);
                cold[idx] = Some(out);
            }
        }
        drop(service);

        // Crash: tear the tail. Records are far longer than 10 bytes,
        // so the tear damages only the final line (or nothing at t=0).
        let log = dir.join("certificates.ldjson");
        let bytes = std::fs::read(&log).expect("log exists");
        std::fs::write(&log, &bytes[..bytes.len() - tear]).expect("tear tail");
        let lost = if tear > 0 { appended.pop() } else { None };

        let (mut revived, summary) = revive(&dir);
        prop_assert_eq!(summary.graphs_restored, cold.iter().filter(|c| c.is_some()).count());
        prop_assert_eq!(summary.certificates_replayed, appended.len());
        prop_assert_eq!(summary.tail_skipped, usize::from(tear > 0));

        // Survivors replay the certifying run bit for bit, engine-free.
        for &idx in &appended {
            let expected = cold[idx].expect("cold outcome recorded");
            let got = query(&mut revived, idx, 777);
            prop_assert_eq!(got.0, CacheStatus::Certificate);
            prop_assert_eq!((got.1, got.2, got.3, got.4),
                            (expected.1, expected.2, expected.3, expected.4));
        }
        prop_assert_eq!(revived.engine_passes(), 0, "replay must be engine-free");

        // The torn certificate is gone durable-side: serving it again
        // is a cold recompute (same verdict, new engine pass).
        if let Some(idx) = lost {
            let got = query(&mut revived, idx, CERT_SEED);
            prop_assert_eq!(got.0, CacheStatus::Cold);
            prop_assert!(!got.1);
            prop_assert_eq!(revived.engine_passes(), 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Random ingest / evict / crash-restart schedules: cache clears
    /// append duplicate records, crashes drop the in-memory tier, and
    /// every restart replays the union of all certificates ever formed
    /// — first-wins, engine-free, independent of the schedule.
    /// Compaction then squeezes the duplicates out without changing the
    /// replayed state, and is idempotent record-for-record.
    #[test]
    fn compaction_and_restart_are_state_identical(
        schedule in prop::collection::vec((0..FAR_SPECS.len(), 0u8..3), 1..10),
    ) {
        let dir = scratch_dir();
        let (mut service, _) = revive(&dir);
        let mut certified: BTreeSet<usize> = BTreeSet::new();
        let mut cold = vec![None; FAR_SPECS.len()];
        for &(idx, op) in &schedule {
            match op {
                // Ingest + query: forms (or replays) a certificate.
                0 | 1 => {
                    ingest(&mut service, idx);
                    let out = query(&mut service, idx, CERT_SEED);
                    prop_assert!(!out.1);
                    certified.insert(idx);
                    if cold[idx].is_none() {
                        cold[idx] = Some(out);
                    }
                }
                // Evict: drops the in-memory tier only; the next query
                // of an already-certified spec recomputes and appends a
                // duplicate record (the log is append-only).
                _ => service.clear_cache(),
            }
        }
        drop(service); // crash

        // Restart 1: the union of everything ever certified comes back.
        let (mut first, s1) = revive(&dir);
        prop_assert_eq!(s1.certificates_replayed, certified.len());
        prop_assert_eq!(s1.tail_skipped, 0);
        let baseline: Vec<_> = certified
            .iter()
            .map(|&idx| query(&mut first, idx, 901))
            .collect();
        prop_assert_eq!(first.engine_passes(), 0);

        // Compact: duplicates collapse; one record per certificate.
        let compacted = first.compact_certificates().expect("compact");
        prop_assert_eq!(compacted, certified.len());
        let lines_once = sorted_log_lines(&dir);
        prop_assert_eq!(lines_once.len(), certified.len());
        drop(first);

        // Restart 2: state identical to the pre-compaction restart.
        let (mut second, s2) = revive(&dir);
        prop_assert_eq!(s2.certificates_replayed, certified.len());
        prop_assert_eq!(s2.tail_skipped, 0);
        for (&idx, expected) in certified.iter().zip(&baseline) {
            let got = query(&mut second, idx, 901);
            prop_assert_eq!(got.0, CacheStatus::Certificate);
            prop_assert_eq!(&got, expected, "spec {} diverged after compaction", idx);
        }
        prop_assert_eq!(second.engine_passes(), 0);

        // Compaction is idempotent on the record set.
        let again = second.compact_certificates().expect("recompact");
        prop_assert_eq!(again, certified.len());
        prop_assert_eq!(sorted_log_lines(&dir), lines_once);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
