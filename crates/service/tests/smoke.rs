//! End-to-end smoke tests of the `planartest` binary: the `serve`
//! LDJSON loop and the `query` one-shot (run in the quick CI job).

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use planartest_service::wire::Value;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_planartest"))
}

#[test]
fn serve_answers_ingest_query_and_cache_hit() {
    let mut child = bin()
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut stdin = child.stdin.take().expect("stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));

    let mut ask = |request: &str| -> Value {
        writeln!(stdin, "{request}").expect("write request");
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read response");
        Value::parse(line.trim()).expect("response parses")
    };

    // 1. Ingest a planar graph via generator spec.
    let ingested = ask(r#"{"op":"ingest","name":"city","spec":"tri_grid(6,6)"}"#);
    assert_eq!(ingested.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(ingested.get("n").unwrap().as_u64(), Some(36));

    // 2. Cold query: runs the engine, accepts.
    let query = r#"{"op":"query","graph":"city","epsilon":0.2,"phases":5,"seed":7}"#;
    let cold = ask(query);
    assert_eq!(cold.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(cold.get("verdict").unwrap().as_str(), Some("accept"));
    assert_eq!(cold.get("cache").unwrap().as_str(), Some("cold"));

    // 3. Same query again: warm cache hit, identical accounting.
    let warm = ask(query);
    assert_eq!(warm.get("cache").unwrap().as_str(), Some("warm"));
    assert_eq!(
        warm.get("rounds").unwrap().as_u64(),
        cold.get("rounds").unwrap().as_u64()
    );

    // Telemetry agrees: one engine pass, one warm hit.
    let stats = ask(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("engine_passes").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("warm_hits").unwrap().as_u64(), Some(1));

    // A malformed line answers an error instead of killing the server.
    let bad = ask("this is not json");
    assert_eq!(bad.get("ok").unwrap().as_bool(), Some(false));

    drop(stdin); // EOF ends the serve loop
    let status = child.wait().expect("serve exits");
    assert!(status.success());
}

#[test]
fn serve_answers_a_fully_piped_batch_before_exiting() {
    // The classic pipe usage: all requests written, stdin closed, THEN
    // the responses are read. Stdin EOF triggers the graceful
    // shutdown, which must flush every queued response to stdout —
    // stdout is not closed just because stdin is.
    let mut child = bin()
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    {
        let mut stdin = child.stdin.take().expect("stdin");
        writeln!(
            stdin,
            r#"{{"op":"ingest","name":"g","spec":"k5_chain(4)"}}"#
        )
        .unwrap();
        writeln!(
            stdin,
            r#"{{"op":"query","graph":"g","epsilon":0.05,"seed":1}}"#
        )
        .unwrap();
        writeln!(
            stdin,
            r#"{{"op":"query","graph":"g","epsilon":0.05,"seed":2}}"#
        )
        .unwrap();
        writeln!(stdin, r#"{{"op":"stats"}}"#).unwrap();
    } // dropped: EOF
    let output = child.wait_with_output().expect("serve exits");
    assert!(output.status.success());
    let lines: Vec<Value> = String::from_utf8(output.stdout)
        .expect("utf8 output")
        .lines()
        .map(|l| Value::parse(l).expect("response parses"))
        .collect();
    assert_eq!(lines.len(), 4, "one response per piped request");
    assert_eq!(lines[0].get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(lines[1].get("verdict").unwrap().as_str(), Some("reject"));
    assert_eq!(lines[1].get("cache").unwrap().as_str(), Some("cold"));
    assert_eq!(lines[2].get("verdict").unwrap().as_str(), Some("reject"));
    // Timing decides whether both seeds landed in one cycle (coalesced
    // cold lanes of one pass) or two (the second replays the first's
    // certificate) — both are correct and both cost one engine pass.
    let second_cache = lines[2].get("cache").unwrap().as_str().unwrap();
    assert!(
        second_cache == "certificate" || (second_cache == "cold"),
        "unexpected cache provenance {second_cache}"
    );
    assert_eq!(lines[3].get("ok").unwrap().as_bool(), Some(true));
    assert!(lines[3].get("engine_passes").is_some());
}

#[test]
fn one_shot_query_accepts_and_rejects_via_exit_codes() {
    let accept = bin()
        .args([
            "query",
            "--spec",
            "grid(5,5)",
            "--epsilon",
            "0.2",
            "--phases",
            "5",
        ])
        .output()
        .expect("run query");
    assert!(accept.status.success(), "planar graph must exit 0");
    let response =
        Value::parse(String::from_utf8_lossy(&accept.stdout).trim()).expect("json output");
    assert_eq!(response.get("verdict").unwrap().as_str(), Some("accept"));

    let reject = bin()
        .args([
            "query",
            "--spec",
            "k5_chain(4)",
            "--epsilon",
            "0.05",
            "--phases",
            "5",
            "--backend",
            "serial",
        ])
        .output()
        .expect("run query");
    assert_eq!(reject.status.code(), Some(1), "far graph must exit 1");
    let response =
        Value::parse(String::from_utf8_lossy(&reject.stdout).trim()).expect("json output");
    assert_eq!(response.get("verdict").unwrap().as_str(), Some("reject"));

    let bad = bin().args(["query", "--spec", "nope(1)"]).output().unwrap();
    assert_eq!(bad.status.code(), Some(2), "bad spec must exit 2");

    let families = bin().arg("families").output().unwrap();
    assert!(families.status.success());
    let response =
        Value::parse(String::from_utf8_lossy(&families.stdout).trim()).expect("json output");
    assert!(!response
        .get("families")
        .unwrap()
        .as_arr()
        .unwrap()
        .is_empty());
}
