//! Pipelined-server equivalence properties: the overlapped drain cycle
//! (hit fast path, per-connection deferral, per-connection outbound
//! writers) must deliver, **per connection**, exactly what the
//! synchronous [`Service::drain`] delivers — same responses, same
//! per-connection order, nothing lost, nothing duplicated — no matter
//! how arrivals interleave with running engine passes.
//!
//! Two properties at two trust levels:
//!
//! * `controlled_cycles_equal_synchronous_drain` pins the cycle
//!   partition (each pushed batch becomes exactly one cycle, no
//!   overlap) and compares the *full* response essence against a
//!   reference `Service` fed the same submissions — including
//!   partition-dependent fields like cache provenance and coalescing
//!   counts.
//! * `overlap_stress_preserves_per_connection_order` fires everything
//!   back-to-back at `wake_depth 1` so arrivals land mid-pass and ride
//!   the overlap resolver; the cycle partition is then timing-
//!   dependent, so it checks the partition-*invariant* contract: every
//!   submission answered once, in submission order, with the
//!   deterministic verdict and its own seed echoed.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use planartest_core::TesterConfig;
use planartest_service::wire::Value;
use planartest_service::{
    protocol, ConnectionId, GraphRef, Property, Query, ServeOptions, Server, Service, Submission,
};
use planartest_sim::Backend;
use proptest::prelude::*;

/// The ingested corpus: two accepting planar families, one certified-
/// far family, one uncertified non-planar one.
const SPECS: &[&str] = &[
    "tri_grid(4,4)",
    "grid(3,5)",
    "k5_chain(3)",
    "gnp(18, 0.3, seed=5)",
];

/// Indices of `SPECS` entries whose planarity verdict is always
/// `accept` (planar graphs: one-sided error, never rejected).
const ACCEPTING: &[usize] = &[0, 1];

const EPSILONS: &[f64] = &[0.1, 0.25];

const PROPERTIES: &[Property] = &[
    Property::Planarity,
    Property::CycleFreeness,
    Property::Bipartiteness,
];

/// An in-process transport endpoint: a shared byte sink the server's
/// writer thread for this connection flushes response lines into.
#[derive(Clone, Default)]
struct Sink(Arc<Mutex<Vec<u8>>>);

impl Write for Sink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Sink {
    /// Complete response lines received so far (a concurrent writer
    /// may be mid-line; those bytes don't count yet).
    fn complete_lines(&self) -> usize {
        self.0
            .lock()
            .unwrap()
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }

    fn responses(&self) -> Vec<Value> {
        let bytes = self.0.lock().unwrap().clone();
        String::from_utf8(bytes)
            .expect("responses are utf-8")
            .lines()
            .map(|l| Value::parse(l).expect("response line parses"))
            .collect()
    }
}

/// One generated request.
#[derive(Debug, Clone)]
enum Op {
    /// A plain query; `graph == SPECS.len()` targets a never-ingested
    /// name (the per-query error path).
    Query {
        graph: usize,
        eps: usize,
        seed: u64,
        property: usize,
    },
    /// A `batch` op of planarity members over `(graph, eps, seed)`.
    Batch(Vec<(usize, usize, u64)>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0..4usize, // 0..=2 → plain query (3:1 weighting), 3 → batch
        (
            0..SPECS.len() + 1,
            0..EPSILONS.len(),
            0u64..4,
            0..PROPERTIES.len(),
        ),
        proptest::collection::vec((0..SPECS.len(), 0..EPSILONS.len(), 0u64..4), 1..4),
    )
        .prop_map(|(kind, (graph, eps, seed, property), members)| {
            if kind < 3 {
                Op::Query {
                    graph,
                    eps,
                    seed,
                    property,
                }
            } else {
                Op::Batch(members)
            }
        })
}

fn graph_name(idx: usize) -> String {
    if idx < SPECS.len() {
        format!("g{idx}")
    } else {
        "missing".to_string()
    }
}

fn query_fields(v: Value, graph: usize, eps: usize, seed: u64) -> Value {
    v.field("graph", graph_name(graph))
        .field("epsilon", EPSILONS[eps])
        .field("phases", 4u64)
        .field("seed", seed)
}

/// The wire form of an op (what the server parses).
fn render_op(op: &Op) -> Value {
    match op {
        Op::Query {
            graph,
            eps,
            seed,
            property,
        } => query_fields(Value::obj().field("op", "query"), *graph, *eps, *seed)
            .field("property", PROPERTIES[*property].name()),
        Op::Batch(members) => Value::obj().field("op", "batch").field(
            "queries",
            members
                .iter()
                .map(|&(g, e, s)| query_fields(Value::obj(), g, e, s))
                .collect::<Vec<Value>>(),
        ),
    }
}

/// The `Service`-API form of one query (must parse-match `render_op`:
/// same config, same `Auto` backend default as the wire path).
fn build_query(graph: usize, eps: usize, seed: u64, property: Property) -> Query {
    Query::planarity(
        GraphRef::Name(graph_name(graph)),
        TesterConfig::new(EPSILONS[eps])
            .with_phases(4)
            .with_seed(seed),
    )
    .with_property(property)
    .with_backend(Backend::Auto)
}

fn ingested_service() -> Service {
    let mut service = Service::new().with_group_threads(2);
    for (i, spec) in SPECS.iter().enumerate() {
        service
            .registry_mut()
            .ingest_spec(&format!("g{i}"), spec)
            .unwrap();
    }
    service
}

/// The response fields that must match bit-for-bit between the
/// pipelined server and the synchronous drain — everything except
/// wall-clock stage timings.
const ESSENCE: &[&str] = &[
    "ok",
    "verdict",
    "property",
    "graph",
    "seed",
    "cache",
    "rounds",
    "messages",
    "words",
    "coalesced",
    "rejecting_nodes",
    "reject_reasons",
    "error",
];

fn essence(v: &Value) -> Vec<(&'static str, Option<Value>)> {
    ESSENCE.iter().map(|k| (*k, v.get(k).cloned())).collect()
}

fn assert_same_essence(server: &Value, reference: &Value, context: &str) {
    match (
        server.get("responses").and_then(Value::as_arr),
        reference.get("responses").and_then(Value::as_arr),
    ) {
        (Some(a), Some(b)) => {
            assert_eq!(a.len(), b.len(), "{context}: batch member count");
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(essence(x), essence(y), "{context}: batch member {i}");
            }
        }
        (None, None) => assert_eq!(essence(server), essence(reference), "{context}"),
        _ => panic!("{context}: batch/plain shape diverged"),
    }
}

fn wait_for_lines(sinks: &[Sink], expected: &[usize]) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if sinks
            .iter()
            .zip(expected)
            .all(|(s, &want)| s.complete_lines() >= want)
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for responses: have {:?}, want {expected:?}",
            sinks.iter().map(Sink::complete_lines).collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Runs `batches` through a pipelined server, one cycle per batch: the
/// queue lingers (1 h, depth `MAX`) until a trailing control op on a
/// dedicated connection fires the cycle, and the next batch is pushed
/// only after every response from the previous one landed. Returns the
/// per-connection response lists.
fn run_pipelined_controlled(batches: &[Vec<(usize, Op)>], conns: usize) -> Vec<Vec<Value>> {
    let server = Server::start(
        ingested_service(),
        ServeOptions {
            linger: Duration::from_secs(3600),
            wake_depth: usize::MAX,
            ..ServeOptions::default()
        },
    );
    let sinks: Vec<Sink> = (0..conns).map(|_| Sink::default()).collect();
    let ids: Vec<ConnectionId> = sinks
        .iter()
        .map(|s| server.connections().register(Box::new(s.clone())))
        .collect();
    let control = Sink::default();
    let control_id = server.connections().register(Box::new(control.clone()));
    let queue = server.submission_queue();

    let mut expected = vec![0usize; conns];
    for (b, batch) in batches.iter().enumerate() {
        for (conn, op) in batch {
            queue.push(Submission::new(ids[*conn], Ok(render_op(op))));
            expected[*conn] += 1;
        }
        // The cycle trigger: control ops are non-coalescable, so this
        // fires one cycle draining exactly the batch above.
        queue.push(Submission::new(
            control_id,
            Ok(Value::obj().field("op", "stats")),
        ));
        wait_for_lines(&sinks, &expected);
        wait_for_lines(std::slice::from_ref(&control), &[b + 1]);
    }
    server.request_shutdown();
    let _ = server.join();
    sinks.iter().map(Sink::responses).collect()
}

/// Runs the same batches through a synchronous `Service`, one
/// [`Service::drain`] per batch (batch-op members flattened into the
/// drain in member order, re-assembled after), and renders the
/// responses exactly as the wire would.
fn run_reference(batches: &[Vec<(usize, Op)>], conns: usize) -> Vec<Vec<Value>> {
    let mut service = ingested_service();
    let mut responses: Vec<Vec<Value>> = vec![Vec::new(); conns];
    for batch in batches {
        // (conn, member count or None-for-plain) in submission order.
        let mut plan: Vec<(usize, Option<usize>)> = Vec::new();
        for (conn, op) in batch {
            match op {
                Op::Query {
                    graph,
                    eps,
                    seed,
                    property,
                } => {
                    service.submit(build_query(*graph, *eps, *seed, PROPERTIES[*property]));
                    plan.push((*conn, None));
                }
                Op::Batch(members) => {
                    for &(g, e, s) in members {
                        service.submit(build_query(g, e, s, Property::Planarity));
                    }
                    plan.push((*conn, Some(members.len())));
                }
            }
        }
        let mut drained = service.drain().into_iter();
        let mut render = || match drained.next().expect("drain covers every submission").1 {
            Ok(r) => protocol::response_value(&r),
            Err(e) => protocol::error_value(&e),
        };
        for (conn, shape) in plan {
            let line = match shape {
                None => render(),
                Some(n) => Value::obj().field("ok", true).field(
                    "responses",
                    (0..n).map(|_| render()).collect::<Vec<Value>>(),
                ),
            };
            responses[conn].push(line);
        }
    }
    responses
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// With the cycle partition pinned, the pipelined server is
    /// bit-for-bit the synchronous drain, per connection — cache
    /// provenance and coalescing counts included.
    #[test]
    fn controlled_cycles_equal_synchronous_drain(
        batches in proptest::collection::vec(
            proptest::collection::vec((0..2usize, op_strategy()), 1..5),
            1..4,
        ),
    ) {
        let conns = 2;
        let piped = run_pipelined_controlled(&batches, conns);
        let reference = run_reference(&batches, conns);
        for c in 0..conns {
            assert_eq!(
                piped[c].len(),
                reference[c].len(),
                "conn {c}: response count"
            );
            for (i, (s, r)) in piped[c].iter().zip(&reference[c]).enumerate() {
                assert_same_essence(s, r, &format!("conn {c} response {i}"));
            }
        }
    }
}

/// A stress op: accepting-planarity queries (verdict known a priori)
/// with per-submission unique seeds, plus missing-graph errors and
/// small batches.
#[derive(Debug, Clone)]
enum StressOp {
    Accept { graph: usize },
    MissingGraph,
    Batch { graph: usize, members: usize },
}

fn stress_strategy() -> impl Strategy<Value = StressOp> {
    (0..8usize, 0..ACCEPTING.len(), 1..4usize).prop_map(|(kind, g, members)| match kind {
        0..=4 => StressOp::Accept {
            graph: ACCEPTING[g],
        },
        5 => StressOp::MissingGraph,
        _ => StressOp::Batch {
            graph: ACCEPTING[g],
            members,
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Back-to-back arrivals at `wake_depth 1`: every submission rides
    /// whatever cycle or overlap window it lands in, yet each
    /// connection still gets one response per submission, in
    /// submission order (proven by unique echoed seeds), with the
    /// deterministic verdict.
    #[test]
    fn overlap_stress_preserves_per_connection_order(
        ops in proptest::collection::vec((0..3usize, stress_strategy()), 4..24),
    ) {
        let conns = 3;
        let server = Server::start(
            ingested_service(),
            ServeOptions {
                linger: Duration::from_secs(3600),
                wake_depth: 1,
                ..ServeOptions::default()
            },
        );
        let sinks: Vec<Sink> = (0..conns).map(|_| Sink::default()).collect();
        let ids: Vec<ConnectionId> = sinks
            .iter()
            .map(|s| server.connections().register(Box::new(s.clone())))
            .collect();
        let queue = server.submission_queue();

        // Per-connection expectations, in submission order. Unique
        // seeds (the global counter) make order violations visible.
        let mut seed = 0u64;
        let mut expected: Vec<Vec<StressExpect>> = (0..conns).map(|_| Vec::new()).collect();
        for (conn, op) in &ops {
            let request = match op {
                StressOp::Accept { graph } => {
                    seed += 1;
                    expected[*conn].push(StressExpect::Plain(seed));
                    query_fields(Value::obj().field("op", "query"), *graph, 1, seed)
                }
                StressOp::MissingGraph => {
                    seed += 1;
                    expected[*conn].push(StressExpect::Error);
                    query_fields(Value::obj().field("op", "query"), SPECS.len(), 1, seed)
                }
                StressOp::Batch { graph, members } => {
                    let seeds: Vec<u64> = (0..*members)
                        .map(|_| {
                            seed += 1;
                            seed
                        })
                        .collect();
                    let queries: Vec<Value> = seeds
                        .iter()
                        .map(|&s| query_fields(Value::obj(), *graph, 1, s))
                        .collect();
                    expected[*conn].push(StressExpect::Batch(seeds));
                    Value::obj().field("op", "batch").field("queries", queries)
                }
            };
            queue.push(Submission::new(ids[*conn], Ok(request)));
        }
        server.request_shutdown();
        let _ = server.join();

        for c in 0..conns {
            let got = sinks[c].responses();
            assert_eq!(got.len(), expected[c].len(), "conn {c}: one response per submission");
            for (i, (response, want)) in got.iter().zip(&expected[c]).enumerate() {
                let context = format!("conn {c} response {i}");
                match want {
                    StressExpect::Error => {
                        assert_eq!(
                            response.get("ok").and_then(Value::as_bool),
                            Some(false),
                            "{context}: missing graph errors"
                        );
                        assert!(response.get("error").is_some(), "{context}: error text");
                    }
                    StressExpect::Plain(seed) => {
                        assert_eq!(
                            response.get("verdict").and_then(Value::as_str),
                            Some("accept"),
                            "{context}: planar graphs always accept (got {response})"
                        );
                        assert_eq!(
                            response.get("seed").and_then(Value::as_u64),
                            Some(*seed),
                            "{context}: out of submission order"
                        );
                    }
                    StressExpect::Batch(seeds) => {
                        let members = response
                            .get("responses")
                            .and_then(Value::as_arr)
                            .unwrap_or_else(|| panic!("{context}: batch response shape"));
                        assert_eq!(members.len(), seeds.len(), "{context}: batch member count");
                        for (m, (got, want)) in members.iter().zip(seeds).enumerate() {
                            assert_eq!(
                                got.get("verdict").and_then(Value::as_str),
                                Some("accept"),
                                "{context} member {m}: verdict"
                            );
                            assert_eq!(
                                got.get("seed").and_then(Value::as_u64),
                                Some(*want),
                                "{context} member {m}: member order"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// What one stress submission must answer with.
#[derive(Debug)]
enum StressExpect {
    /// One accepting planarity response echoing this seed.
    Plain(u64),
    /// A batch response whose members echo these seeds in order.
    Batch(Vec<u64>),
    /// A missing-graph error.
    Error,
}
