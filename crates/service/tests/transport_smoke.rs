//! End-to-end smoke tests of the transport-abstracted server: the real
//! `planartest` binary serving concurrent unix-socket and TCP clients,
//! cross-client coalescing, wire-protocol hardening, and graceful
//! shutdown on EOF and SIGTERM.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, ChildStderr, Command, Stdio};
use std::time::Duration;

use planartest_service::wire::Value;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_planartest"))
}

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("planartest-{tag}-{}.sock", std::process::id()))
}

/// Spawns `planartest serve` with the given extra flags; stdin is kept
/// open (it is the shutdown control), stderr is piped so tests can read
/// the `listening …` banners.
fn spawn_serve(extra: &[&str]) -> Child {
    let mut cmd = bin();
    cmd.arg("serve").args(extra);
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve")
}

/// Reads stderr lines until the wanted `listening <transport> …`
/// banner appears; returns its last whitespace-separated field.
fn await_banner(stderr: &mut BufReader<ChildStderr>, transport: &str) -> String {
    for _ in 0..32 {
        let mut line = String::new();
        if stderr.read_line(&mut line).expect("read stderr") == 0 {
            break;
        }
        if line.starts_with(&format!("listening {transport}")) {
            return line
                .split_whitespace()
                .last()
                .expect("banner field")
                .to_string();
        }
    }
    panic!("no `listening {transport}` banner on stderr");
}

/// One request/response exchange over any stream transport.
fn ask<S: Read + Write>(stream: &mut S, reader: &mut BufReader<S>, request: &str) -> Value {
    writeln!(stream, "{request}").expect("write request");
    stream.flush().expect("flush request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(!line.is_empty(), "connection closed before a response");
    Value::parse(line.trim()).expect("response parses")
}

fn connect(path: &std::path::Path) -> (UnixStream, BufReader<UnixStream>) {
    let stream = UnixStream::connect(path).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

#[test]
fn two_socket_clients_coalesce_into_one_engine_pass() {
    let path = socket_path("coalesce");
    // wake-depth 2 + a long linger make the test deterministic: the
    // cycle fires exactly when both clients' queries are pending.
    let mut child = spawn_serve(&[
        "--unix",
        path.to_str().unwrap(),
        "--wake-depth",
        "2",
        "--linger-ms",
        "30000",
    ]);
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr"));
    await_banner(&mut stderr, "unix");

    let (mut a, mut a_rx) = connect(&path);
    let (mut b, mut b_rx) = connect(&path);

    // Ingest is a control op: it wakes the drain loop immediately, no
    // lingering, so client A gets its answer straight away.
    let ingested = ask(
        &mut a,
        &mut a_rx,
        r#"{"op":"ingest","name":"city","spec":"tri_grid(5,5)"}"#,
    );
    assert_eq!(ingested.get("ok").unwrap().as_bool(), Some(true));

    // Both clients query the same graph under different seeds. Neither
    // alone reaches wake-depth 2; together they fire one cycle — and
    // one engine pass serves both.
    writeln!(
        a,
        r#"{{"op":"query","graph":"city","epsilon":0.2,"phases":5,"seed":1}}"#
    )
    .unwrap();
    writeln!(
        b,
        r#"{{"op":"query","graph":"city","epsilon":0.2,"phases":5,"seed":2}}"#
    )
    .unwrap();

    for rx in [&mut a_rx, &mut b_rx] {
        let mut line = String::new();
        rx.read_line(&mut line).expect("read response");
        let response = Value::parse(line.trim()).expect("response parses");
        assert_eq!(response.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(response.get("verdict").unwrap().as_str(), Some("accept"));
        assert_eq!(response.get("cache").unwrap().as_str(), Some("cold"));
        assert_eq!(
            response.get("coalesced").unwrap().as_u64(),
            Some(2),
            "both clients' seeds must ride one pass"
        );
    }

    // The server-side proof: one engine pass, two queries served.
    let stats = ask(&mut a, &mut a_rx, r#"{"op":"stats"}"#);
    assert_eq!(stats.get("engine_passes").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("queries_served").unwrap().as_u64(), Some(2));

    drop((a, b, a_rx, b_rx));
    drop(child.stdin.take()); // EOF: graceful shutdown
    let status = child.wait().expect("serve exits");
    assert!(status.success());
    assert!(!path.exists(), "socket file cleaned up on exit");
}

#[test]
fn tcp_survives_garbage_and_oversized_frames() {
    let mut child = spawn_serve(&["--tcp", "127.0.0.1:0", "--max-frame-bytes", "256"]);
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr"));
    let addr = await_banner(&mut stderr, "tcp");

    let mut stream = std::net::TcpStream::connect(&addr).expect("connect tcp");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Garbage: an in-band error, not a dead server.
    let bad = ask(&mut stream, &mut reader, "this is not json");
    assert_eq!(bad.get("ok").unwrap().as_bool(), Some(false));
    assert!(bad
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("bad request"));

    // Oversized frame: ditto, and the connection keeps working.
    let huge = "x".repeat(300);
    let oversized = ask(&mut stream, &mut reader, &huge);
    assert_eq!(oversized.get("ok").unwrap().as_bool(), Some(false));
    assert!(oversized
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("256-byte"));

    // Same connection still serves real work.
    let ingested = ask(
        &mut stream,
        &mut reader,
        r#"{"op":"ingest","name":"g","spec":"grid(4,4)"}"#,
    );
    assert_eq!(ingested.get("ok").unwrap().as_bool(), Some(true));
    let queried = ask(
        &mut stream,
        &mut reader,
        r#"{"op":"query","graph":"g","epsilon":0.2,"phases":5}"#,
    );
    assert_eq!(queried.get("verdict").unwrap().as_str(), Some("accept"));

    drop((stream, reader));
    drop(child.stdin.take());
    assert!(child.wait().expect("serve exits").success());
}

#[test]
fn eof_shutdown_flushes_lingering_queries() {
    let path = socket_path("eof-flush");
    // A very long linger and no depth wake: the query below would sit
    // in the queue for 30s — unless shutdown flushes it.
    let mut child = spawn_serve(&["--unix", path.to_str().unwrap(), "--linger-ms", "30000"]);
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr"));
    await_banner(&mut stderr, "unix");

    let (mut client, mut rx) = connect(&path);
    let ingested = ask(
        &mut client,
        &mut rx,
        r#"{"op":"ingest","name":"g","spec":"tri_grid(4,4)"}"#,
    );
    assert_eq!(ingested.get("ok").unwrap().as_bool(), Some(true));

    writeln!(
        client,
        r#"{{"op":"query","graph":"g","epsilon":0.2,"phases":5,"seed":9}}"#
    )
    .unwrap();
    // Let the query reach the submission queue, then close stdin.
    std::thread::sleep(Duration::from_millis(300));
    let started = std::time::Instant::now();
    drop(child.stdin.take());

    // The lingering query is answered on the way down, well before its
    // 30-second window.
    let mut line = String::new();
    rx.read_line(&mut line).expect("read flushed response");
    let response = Value::parse(line.trim()).expect("response parses");
    assert_eq!(response.get("verdict").unwrap().as_str(), Some("accept"));
    assert!(started.elapsed() < Duration::from_secs(20));
    assert!(child.wait().expect("serve exits").success());
}

#[test]
fn sigterm_shutdown_flushes_lingering_queries() {
    let path = socket_path("sigterm-flush");
    let mut child = spawn_serve(&["--unix", path.to_str().unwrap(), "--linger-ms", "30000"]);
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr"));
    await_banner(&mut stderr, "unix");

    let (mut client, mut rx) = connect(&path);
    let ingested = ask(
        &mut client,
        &mut rx,
        r#"{"op":"ingest","name":"g","spec":"tri_grid(4,4)"}"#,
    );
    assert_eq!(ingested.get("ok").unwrap().as_bool(), Some(true));

    writeln!(
        client,
        r#"{{"op":"query","graph":"g","epsilon":0.2,"phases":5,"seed":3}}"#
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let killed = Command::new("sh")
        .args(["-c", &format!("kill -TERM {}", child.id())])
        .status()
        .expect("run kill");
    assert!(killed.success(), "kill -TERM must reach the server");

    let mut line = String::new();
    rx.read_line(&mut line).expect("read flushed response");
    let response = Value::parse(line.trim()).expect("response parses");
    assert_eq!(response.get("verdict").unwrap().as_str(), Some("accept"));
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "SIGTERM exit is graceful, code 0");
}

#[test]
fn no_stdio_daemon_survives_stdin_eof_and_stops_on_sigterm() {
    let path = socket_path("daemon");
    // Daemon mode: stdin is closed immediately (as under a supervisor
    // with /dev/null) — the server must keep serving regardless.
    let mut child = bin()
        .args(["serve", "--no-stdio", "--unix", path.to_str().unwrap()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr"));
    await_banner(&mut stderr, "unix");
    std::thread::sleep(Duration::from_millis(200));
    assert!(
        child.try_wait().expect("probe child").is_none(),
        "--no-stdio server must not exit on stdin EOF"
    );

    let (mut client, mut rx) = connect(&path);
    let ingested = ask(
        &mut client,
        &mut rx,
        r#"{"op":"ingest","name":"g","spec":"grid(4,4)"}"#,
    );
    assert_eq!(ingested.get("ok").unwrap().as_bool(), Some(true));
    let queried = ask(
        &mut client,
        &mut rx,
        r#"{"op":"query","graph":"g","epsilon":0.2,"phases":5}"#,
    );
    assert_eq!(queried.get("verdict").unwrap().as_str(), Some("accept"));

    let killed = Command::new("sh")
        .args(["-c", &format!("kill -TERM {}", child.id())])
        .status()
        .expect("run kill");
    assert!(killed.success());
    assert!(child.wait().expect("serve exits").success());

    // --no-stdio without any listener is rejected up front.
    let refused = bin()
        .args(["serve", "--no-stdio"])
        .stdin(Stdio::null())
        .output()
        .expect("run serve");
    assert_eq!(refused.status.code(), Some(2));
}

#[test]
fn concurrent_open_loop_clients_drain_exactly_and_in_order() {
    const CLIENTS: usize = 6;
    const QUERIES: usize = 80;

    let path = socket_path("stress");
    let mut child = spawn_serve(&["--unix", path.to_str().unwrap()]);
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr"));
    await_banner(&mut stderr, "unix");

    // Shared corpus: an accepting graph, so every verdict is known
    // regardless of how the drain loop interleaves the six clients.
    let (mut setup, mut setup_rx) = connect(&path);
    let ingested = ask(
        &mut setup,
        &mut setup_rx,
        r#"{"op":"ingest","name":"g","spec":"tri_grid(4,4)"}"#,
    );
    assert_eq!(ingested.get("ok").unwrap().as_bool(), Some(true));

    // Each client fires all of its queries open-loop (no waiting for
    // responses), then drains. Unique seeds mark every request, so the
    // echoed `seed` field proves per-connection ordering and exactness:
    // one response per query, none lost, none duplicated, none garbled.
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let path = &path;
            scope.spawn(move || {
                let (mut tx, mut rx) = connect(path);
                for i in 0..QUERIES {
                    writeln!(
                        tx,
                        r#"{{"op":"query","graph":"g","epsilon":0.2,"phases":5,"seed":{}}}"#,
                        c * 1000 + i
                    )
                    .expect("write query");
                }
                tx.flush().expect("flush burst");
                for i in 0..QUERIES {
                    let mut line = String::new();
                    rx.read_line(&mut line).expect("read response");
                    let response = Value::parse(line.trim()).expect("response parses");
                    assert_eq!(response.get("ok").unwrap().as_bool(), Some(true));
                    assert_eq!(response.get("verdict").unwrap().as_str(), Some("accept"));
                    assert_eq!(
                        response.get("seed").unwrap().as_u64(),
                        Some((c * 1000 + i) as u64),
                        "client {c} got response {i} out of submission order"
                    );
                }
                // The stream is exactly drained: the next response on
                // this connection is the stats echo, nothing stale.
                let stats = ask(&mut tx, &mut rx, r#"{"op":"stats"}"#);
                assert!(stats.get("queries_served").is_some(), "stream misaligned");
            });
        }
    });

    // Server-side ledger: every query served, no response lost, and the
    // queue's high-water mark recorded the concurrent burst.
    let stats = ask(&mut setup, &mut setup_rx, r#"{"op":"stats"}"#);
    assert_eq!(
        stats.get("queries_served").unwrap().as_u64(),
        Some((CLIENTS * QUERIES) as u64)
    );
    assert_eq!(stats.get("responses_lost").unwrap().as_u64(), Some(0));
    assert_eq!(
        stats.get("responses_shed").unwrap().as_u64(),
        Some(0),
        "unbounded outbound queues never shed"
    );
    let hwm = stats.get("queue_depth_hwm").unwrap().as_u64().unwrap();
    assert!(hwm >= 1, "burst must register on the queue high-water mark");
    assert!(
        hwm >= stats.get("queue_depth").unwrap().as_u64().unwrap(),
        "high-water mark can never trail the instantaneous depth"
    );

    drop((setup, setup_rx));
    drop(child.stdin.take());
    assert!(child.wait().expect("serve exits").success());
}

#[test]
fn never_reading_client_sheds_without_hurting_healthy_peers() {
    const FIREHOSE: usize = 3000;
    const HEALTHY: usize = 50;

    let path = socket_path("slowpeer");
    // A tight outbound queue and a modest in-flight cap: the policy
    // under test is bounded memory + shed, not unbounded buffering.
    let mut child = spawn_serve(&[
        "--unix",
        path.to_str().unwrap(),
        "--outbound-depth",
        "8",
        "--max-in-flight",
        "64",
    ]);
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr"));
    await_banner(&mut stderr, "unix");

    // Prime the cache over the healthy connection so every firehose
    // query is a warm hit (the fast path is exactly what would flood
    // an unbounded writer queue).
    let (mut healthy, mut healthy_rx) = connect(&path);
    let ingested = ask(
        &mut healthy,
        &mut healthy_rx,
        r#"{"op":"ingest","name":"g","spec":"tri_grid(4,4)"}"#,
    );
    assert_eq!(ingested.get("ok").unwrap().as_bool(), Some(true));
    let primed = ask(
        &mut healthy,
        &mut healthy_rx,
        r#"{"op":"query","graph":"g","epsilon":0.2,"phases":5,"seed":7}"#,
    );
    assert_eq!(primed.get("verdict").unwrap().as_str(), Some("accept"));

    // The deaf client: fires thousands of warm queries and never reads
    // a byte. Its socket buffer fills, its writer thread blocks, its
    // 8-deep outbound queue fills, and everything else is shed — while
    // its in-flight slots keep recycling, so this write loop cannot
    // deadlock against the server.
    let (mut deaf, _deaf_rx) = connect(&path);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for _ in 0..FIREHOSE {
                writeln!(
                    deaf,
                    r#"{{"op":"query","graph":"g","epsilon":0.2,"phases":5,"seed":7}}"#
                )
                .expect("write firehose query");
            }
            deaf.flush().expect("flush firehose");
        });

        // Concurrently, the healthy connection gets every response, in
        // order, while the deaf peer is mid-flood.
        for i in 0..HEALTHY {
            let r = ask(
                &mut healthy,
                &mut healthy_rx,
                &format!(
                    r#"{{"op":"query","graph":"g","epsilon":0.2,"phases":5,"seed":{}}}"#,
                    i
                ),
            );
            assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
            assert_eq!(
                r.get("seed").unwrap().as_u64(),
                Some(i as u64),
                "healthy client response out of order beside a deaf peer"
            );
        }
    });

    // Give the drain loop a moment to finish shedding the tail, then
    // read the ledger over the healthy connection: sheds happened (the
    // bounded queue did its job), yet nothing was lost mid-flight.
    std::thread::sleep(Duration::from_millis(500));
    let stats = ask(&mut healthy, &mut healthy_rx, r#"{"op":"stats"}"#);
    let shed = stats.get("responses_shed").unwrap().as_u64().unwrap();
    assert!(
        shed > 0,
        "a deaf firehose must shed against an 8-deep queue"
    );
    assert_eq!(
        stats.get("responses_lost").unwrap().as_u64(),
        Some(0),
        "shedding is policy, not mid-flight loss"
    );
    assert!(stats.get("outbound_depth_hwm").unwrap().as_u64().unwrap() >= 8);

    // Graceful shutdown completes despite the still-deaf peer: the
    // flush grace expires, its socket is force-closed, and the queued
    // remainder lands on the shutdown ledger — exit stays clean.
    drop((healthy, healthy_rx));
    let started = std::time::Instant::now();
    drop(child.stdin.take());
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "deaf peer must not wedge shutdown");
    assert!(started.elapsed() < Duration::from_secs(20));
}

#[test]
fn cache_accepts_flag_bounds_stripes_and_reports_evictions() {
    let path = socket_path("cache-accepts");
    let mut child = spawn_serve(&["--unix", path.to_str().unwrap(), "--cache-accepts", "2"]);
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr"));
    await_banner(&mut stderr, "unix");

    let (mut client, mut rx) = connect(&path);
    let ingested = ask(
        &mut client,
        &mut rx,
        r#"{"op":"ingest","name":"g","spec":"tri_grid(4,4)"}"#,
    );
    assert_eq!(ingested.get("ok").unwrap().as_bool(), Some(true));
    for seed in 0..4 {
        let r = ask(
            &mut client,
            &mut rx,
            &format!(r#"{{"op":"query","graph":"g","epsilon":0.2,"phases":5,"seed":{seed}}}"#),
        );
        assert_eq!(r.get("cache").unwrap().as_str(), Some("cold"));
    }
    let stats = ask(&mut client, &mut rx, r#"{"op":"stats"}"#);
    assert_eq!(
        stats.get("cached_outcomes").unwrap().as_u64(),
        Some(2),
        "stripes bounded by --cache-accepts"
    );
    assert_eq!(stats.get("evictions").unwrap().as_u64(), Some(2));

    drop((client, rx));
    drop(child.stdin.take());
    assert!(child.wait().expect("serve exits").success());
}

#[test]
fn trace_flag_logs_a_two_client_coalesced_batch() {
    let path = socket_path("trace");
    let trace_path =
        std::env::temp_dir().join(format!("planartest-trace-{}.ldjson", std::process::id()));
    let _ = std::fs::remove_file(&trace_path);
    let mut child = spawn_serve(&[
        "--unix",
        path.to_str().unwrap(),
        "--wake-depth",
        "2",
        "--linger-ms",
        "30000",
        "--trace",
        trace_path.to_str().unwrap(),
    ]);
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr"));
    await_banner(&mut stderr, "unix");

    let (mut a, mut a_rx) = connect(&path);
    let (mut b, mut b_rx) = connect(&path);
    let ingested = ask(
        &mut a,
        &mut a_rx,
        r#"{"op":"ingest","name":"city","spec":"tri_grid(5,5)"}"#,
    );
    assert_eq!(ingested.get("ok").unwrap().as_bool(), Some(true));

    // The same two-client coalesced batch as the cross-client test:
    // wake-depth 2 fires one cycle serving both queries in one pass.
    writeln!(
        a,
        r#"{{"op":"query","graph":"city","epsilon":0.2,"phases":5,"seed":1}}"#
    )
    .unwrap();
    writeln!(
        b,
        r#"{{"op":"query","graph":"city","epsilon":0.2,"phases":5,"seed":2}}"#
    )
    .unwrap();
    for rx in [&mut a_rx, &mut b_rx] {
        let mut line = String::new();
        rx.read_line(&mut line).expect("read response");
        let response = Value::parse(line.trim()).expect("response parses");
        assert_eq!(response.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(response.get("coalesced").unwrap().as_u64(), Some(2));
    }

    drop((a, b, a_rx, b_rx));
    drop(child.stdin.take());
    assert!(child.wait().expect("serve exits").success());

    // The trace artifact: exactly four LDJSON records per query (the
    // ingest and shutdown are control traffic, not queries), each
    // query's chunk contiguous and stage-complete.
    let text = std::fs::read_to_string(&trace_path).expect("trace file");
    let records: Vec<Value> = text
        .lines()
        .map(|l| Value::parse(l).expect("trace record parses"))
        .collect();
    assert_eq!(records.len(), 8, "4 records for each of the 2 queries");

    let mut conns = Vec::new();
    for chunk in records.chunks(4) {
        let events: Vec<&str> = chunk
            .iter()
            .map(|r| r.get("event").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(events, ["submit", "resolve", "execute", "respond"]);
        // One connection id per query, non-null and chunk-consistent.
        let conn = chunk[0].get("conn").unwrap().as_u64().expect("conn id");
        for r in chunk {
            assert_eq!(r.get("conn").unwrap().as_u64(), Some(conn));
            assert_eq!(
                r.get("query").unwrap().as_u64(),
                chunk[0].get("query").unwrap().as_u64()
            );
        }
        conns.push(conn);
        assert_eq!(chunk[1].get("cache").unwrap().as_str(), Some("cold"));
        assert_eq!(chunk[2].get("coalesced").unwrap().as_u64(), Some(2));
        // Stage stamps are monotone and close exactly: each record is
        // stamped at its stage's start, so the respond record's offset
        // from submit plus its own span is the reported total.
        let at = |j: usize| chunk[j].get("at_micros").unwrap().as_u64().unwrap();
        assert!(at(0) <= at(1) && at(1) <= at(2) && at(2) <= at(3));
        let respond_micros = chunk[3].get("micros").unwrap().as_u64().unwrap();
        assert_eq!(
            chunk[3].get("total_micros").unwrap().as_u64(),
            Some(at(3) - at(0) + respond_micros)
        );
    }
    conns.sort_unstable();
    conns.dedup();
    assert_eq!(conns.len(), 2, "the two clients traced as distinct conns");
    let _ = std::fs::remove_file(&trace_path);
}
