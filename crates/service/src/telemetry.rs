//! Zero-dependency telemetry substrate: injectable monotonic clock,
//! log-bucketed latency histograms, per-query stage timing, drain-loop
//! cycle accounting, and an opt-in LDJSON trace log.
//!
//! Everything the serving stack measures flows through one shared
//! [`Telemetry`] object (an `Arc` held by the [`Service`],
//! the [`Server`] drain loop and the transports):
//!
//! * **Clock** — [`Clock`] abstracts monotonic time so every duration
//!   in the system can run on a deterministic [`MockClock`] under test
//!   (no wall-clock flakes) while production uses a monotonic
//!   [`Instant`] anchor.
//! * **Histograms** — [`Histogram`] is an HDR-style log-bucketed
//!   histogram: 16 linear sub-buckets per power of two, so any
//!   recorded value is representable within a relative error of
//!   `1/16` (6.25%) using a few KiB of fixed storage and O(1)
//!   recording. Percentile queries return the *upper edge* of the
//!   containing bucket, so estimates never under-report a latency.
//! * **Stage timing** — [`StageTimes`] partitions a query's lifetime
//!   into contiguous queue → resolve → execute → respond spans whose
//!   sum is *exactly* the end-to-end latency (the histograms add at
//!   most one bucket of relative error on top). End-to-end latency is
//!   attributed per `(property, cache outcome)`, so cold engine
//!   passes, certificate replays and warm accepts each get their own
//!   distribution — the observable form of the paper's one-sided cost
//!   asymmetry (a reject certificate replays for free; a fresh accept
//!   pays a full partition).
//! * **Cycle accounting** — per drain-loop cycle: the wake reason
//!   ([`WakeReason`]: depth / linger expiry / control / shutdown),
//!   cycle width, group fan-out, and the coalescing ratio
//!   (engine-bound queries per engine pass).
//! * **Engine rollups** — every engine pass's [`SimStats`] are folded
//!   into a [`PassRollup`], so `metrics` exposes cumulative simulated
//!   rounds/messages/words alongside service-level latency.
//! * **Trace** — an opt-in LDJSON event log (`planartest serve
//!   --trace FILE`): per served query, `submit` / `resolve` /
//!   `execute` / `respond` records with connection id, query id and
//!   stage durations, suitable for replay into a load harness.
//!
//! [`Service`]: crate::Service
//! [`Server`]: crate::Server
//! [`Instant`]: std::time::Instant

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use planartest_sim::{PassRollup, SimStats};

use crate::query::{CacheStatus, Property};
use crate::transport::ConnectionId;
use crate::wire::Value;

// ---------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------

/// Shared state of a [`MockClock`].
#[derive(Debug, Default)]
struct MockState {
    /// Current mock time in microseconds.
    now: AtomicU64,
    /// Auto-tick step added after every read (0 = manual-only).
    tick: AtomicU64,
}

/// A monotonic clock the whole telemetry substrate reads through.
///
/// Production code uses [`Clock::wall`] (an [`Instant`] anchor);
/// tests inject [`Clock::mock`] so every stage duration, histogram
/// bucket and trace timestamp is deterministic.
#[derive(Debug, Clone)]
pub struct Clock(ClockInner);

#[derive(Debug, Clone)]
enum ClockInner {
    /// Monotonic wall clock, microseconds since construction.
    Wall(Instant),
    /// Deterministic test clock driven by a [`MockClock`] handle.
    Mock(Arc<MockState>),
}

impl Clock {
    /// A monotonic wall clock anchored now.
    #[must_use]
    pub fn wall() -> Clock {
        Clock(ClockInner::Wall(Instant::now()))
    }

    /// A deterministic mock clock starting at 0, plus its driving
    /// handle. With `tick_micros > 0` every read *returns* the current
    /// time and then advances it by the step — so consecutive stamps
    /// are distinct and fully reproducible without any manual
    /// [`MockClock::advance`] calls.
    #[must_use]
    pub fn mock(tick_micros: u64) -> (Clock, MockClock) {
        let state = Arc::new(MockState {
            now: AtomicU64::new(0),
            tick: AtomicU64::new(tick_micros),
        });
        (
            Clock(ClockInner::Mock(Arc::clone(&state))),
            MockClock { state },
        )
    }

    /// Microseconds on this clock (monotone, starts near 0).
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        match &self.0 {
            ClockInner::Wall(base) => base.elapsed().as_micros() as u64,
            ClockInner::Mock(state) => {
                let tick = state.tick.load(Ordering::Relaxed);
                state.now.fetch_add(tick, Ordering::Relaxed)
            }
        }
    }
}

/// The driving handle of a mock [`Clock`] (see [`Clock::mock`]).
#[derive(Debug, Clone)]
pub struct MockClock {
    state: Arc<MockState>,
}

impl MockClock {
    /// Advances the mock time by `micros`.
    pub fn advance(&self, micros: u64) {
        self.state.now.fetch_add(micros, Ordering::Relaxed);
    }

    /// The current mock time (without consuming an auto-tick).
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        self.state.now.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// log2(sub-buckets per power of two). 16 sub-buckets bound the
/// relative quantile error at `1/16` (6.25%).
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power of two.
const SUB: u64 = 1 << SUB_BITS;
/// Bucket groups: group 0 is the exact range `[0, SUB)`; each further
/// group covers one doubling, up to the full `u64` range.
const GROUPS: usize = (64 - SUB_BITS as usize) + 1;
/// Total bucket count (fixed storage, ~7.6 KiB of `u64` counters).
const BUCKETS: usize = GROUPS * SUB as usize;

/// An HDR-style log-bucketed histogram over `u64` values
/// (microseconds, counts — any non-negative magnitude).
///
/// Values below 16 are stored exactly; above, each power of two is
/// split into 16 linear sub-buckets, so the bucket containing
/// a value `v` spans at most `v / 16` — the "one bucket of relative
/// error" every percentile estimate is accurate to. Recording is O(1),
/// storage is fixed, and [`merge`](Histogram::merge) is element-wise,
/// so distributed collection composes.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index of `value`.
    fn index(value: u64) -> usize {
        // Group g >= 1 covers [SUB << (g-1), SUB << g); group 0 is the
        // exact values [0, SUB).
        let group = (64 - SUB_BITS) - (value | (SUB - 1)).leading_zeros();
        if group == 0 {
            value as usize
        } else {
            let sub = (value >> (group - 1)) - SUB;
            group as usize * SUB as usize + sub as usize
        }
    }

    /// The inclusive `[lower, upper]` value range of bucket `index`.
    fn bounds(index: usize) -> (u64, u64) {
        let group = (index / SUB as usize) as u32;
        let sub = (index % SUB as usize) as u64;
        if group == 0 {
            (sub, sub)
        } else {
            let lower = (SUB + sub) << (group - 1);
            let width = 1u64 << (group - 1);
            // `lower + width` wraps for the very top bucket; adding
            // the already-decremented width stays in range.
            (lower, lower + (width - 1))
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`, using the same nearest-rank
    /// convention as a sort-based `sorted[round(q · (len-1))]` — but
    /// returning the **upper edge** of the containing bucket, so the
    /// estimate `e` of an exact quantile `x` satisfies
    /// `x <= e <= x + x/16` (never under-reports). Returns 0 when
    /// empty.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                return Self::bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise subtraction of an **earlier snapshot of the same
    /// histogram stream**: `self` becomes the distribution of
    /// everything recorded after `earlier` was cloned. Load drivers
    /// use this to window the cumulative telemetry histograms (one
    /// slice per sweep rate, cache-warmup traffic excluded).
    ///
    /// `min`/`max` are re-derived from the surviving buckets' bounds,
    /// so like every quantile they are bucket-edge accurate rather
    /// than exact.
    ///
    /// # Panics
    ///
    /// If `earlier` is not an earlier snapshot of this stream (a
    /// bucket count would go negative).
    pub fn subtract(&mut self, earlier: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(earlier.counts.iter()) {
            *a = a
                .checked_sub(*b)
                .expect("subtract: not an earlier snapshot of this stream");
        }
        self.count = self
            .count
            .checked_sub(earlier.count)
            .expect("subtract: not an earlier snapshot of this stream");
        self.sum = self.sum.saturating_sub(earlier.sum);
        let (mut min, mut max) = (u64::MAX, 0);
        for (lo, hi, _) in self.nonzero_buckets() {
            min = min.min(lo);
            max = max.max(hi);
        }
        self.min = min;
        self.max = if self.count == 0 {
            0
        } else {
            max.min(self.max)
        };
    }

    /// Non-empty buckets as `(lower, upper, count)` triples in
    /// ascending value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bounds(i);
                (lo, hi, c)
            })
    }

    /// Wire snapshot: summary percentiles plus the raw non-empty
    /// buckets (`[upper_edge, count]` pairs), enough to reconstruct
    /// the full distribution downstream.
    #[must_use]
    pub fn snapshot_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .nonzero_buckets()
            .map(|(_, hi, c)| Value::Arr(vec![Value::UInt(hi), Value::UInt(c)]))
            .collect();
        Value::obj()
            .field("count", self.count)
            .field("sum", self.sum)
            .field("min", self.min())
            .field("max", self.max)
            .field("mean", self.mean())
            .field("p50", self.value_at_quantile(0.50))
            .field("p90", self.value_at_quantile(0.90))
            .field("p99", self.value_at_quantile(0.99))
            .field("p999", self.value_at_quantile(0.999))
            .field("buckets", buckets)
    }
}

// ---------------------------------------------------------------------
// Stage timing
// ---------------------------------------------------------------------

/// One query's lifetime, partitioned into contiguous stage spans.
///
/// The spans are stamped at the hops a query makes through the stack —
/// submitted (transport / [`Service::submit`]), resolve start, resolve
/// done, group execution done, response slot filled — so by
/// construction `queue + resolve + execute + respond ==`
/// [`total_micros`](StageTimes::total_micros) *exactly*; only the
/// histograms add bucket error on top.
///
/// [`Service::submit`]: crate::Service::submit
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// When the query entered the system (clock micros).
    pub submitted_micros: u64,
    /// Submission → this query's resolve walk began (queue wait,
    /// including the linger window under the background drain loop).
    pub queue_micros: u64,
    /// Registry resolution + cache lookup for this query.
    pub resolve_micros: u64,
    /// Resolve done → this query's group pass applied (engine time
    /// plus any wait on sibling groups; 0 for cache hits).
    pub execute_micros: u64,
    /// Pass applied → response slot filled (cache insert + render).
    pub respond_micros: u64,
}

impl StageTimes {
    /// End-to-end latency: the exact sum of the four stage spans.
    #[must_use]
    pub fn total_micros(&self) -> u64 {
        self.queue_micros + self.resolve_micros + self.execute_micros + self.respond_micros
    }
}

// ---------------------------------------------------------------------
// Wake reasons
// ---------------------------------------------------------------------

/// Why a drain-loop cycle fired (see
/// [`SubmissionQueue::wait_cycle`](crate::SubmissionQueue)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// Queue depth reached `--wake-depth`.
    Depth,
    /// The oldest pending submission's linger window expired.
    Linger,
    /// A non-coalescable submission (control op, malformed frame) was
    /// pending.
    Control,
    /// Shutdown flush.
    Shutdown,
    /// Submissions collected *during* an overlapped engine pass (the
    /// pipelined drain loop resolving cycle N+1 under cycle N's
    /// execute stage).
    Pipeline,
}

/// The number of [`WakeReason`] variants (the length of every wake
/// counter array).
pub const WAKE_REASONS: usize = 5;

impl WakeReason {
    /// Wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WakeReason::Depth => "depth",
            WakeReason::Linger => "linger",
            WakeReason::Control => "control",
            WakeReason::Shutdown => "shutdown",
            WakeReason::Pipeline => "pipeline",
        }
    }

    fn slot(self) -> usize {
        match self {
            WakeReason::Depth => 0,
            WakeReason::Linger => 1,
            WakeReason::Control => 2,
            WakeReason::Shutdown => 3,
            WakeReason::Pipeline => 4,
        }
    }
}

/// Which serving path answered a query: the pipelined fast path
/// (warm/certificate hits enqueued to their connection's writer at
/// resolve time, never waiting on an execute barrier) or the full
/// drain cycle. Latency cells are keyed by route so the µs/ms split
/// the one-sided cache creates is directly observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Route {
    /// Answered at resolve time, ahead of the cycle's execute barrier
    /// (the pipelined server's hit fast path).
    Fast,
    /// Answered by a full resolve → group → execute → respond cycle
    /// (engine misses, and every query in lib-embedded drains).
    Cycle,
}

impl Route {
    /// Wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Route::Fast => "fast",
            Route::Cycle => "cycle",
        }
    }
}

// ---------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------

/// Aggregated metrics behind the [`Telemetry`] mutex.
#[derive(Debug, Default)]
struct Metrics {
    /// Per-stage latency distributions across all queries.
    stage_queue: Histogram,
    stage_resolve: Histogram,
    stage_execute: Histogram,
    stage_respond: Histogram,
    /// Per-connection response write time (the respond half the drain
    /// loop spends inside `Connections::send`).
    write: Histogram,
    /// End-to-end latency per `(property, cache outcome, route)`:
    /// cold engine passes vs. certificate replays vs. warm accepts,
    /// split by which serving path answered.
    latency: BTreeMap<(Property, CacheStatus, Route), Histogram>,
    /// Wake reason counts, indexed by [`WakeReason::slot`].
    wake: [u64; WAKE_REASONS],
    /// Drain cycles executed (lib `drain()` and server cycles alike).
    cycles: u64,
    /// Submissions (or pending queries) per cycle.
    cycle_width: Histogram,
    /// Engine groups per cycle (the fan-out occupancy of the group
    /// execution pool).
    cycle_groups: Histogram,
    /// Queries that required engine work (the coalescing numerator;
    /// the denominator is the pass count in `engine`).
    engine_queries: u64,
    /// Cumulative engine-pass `SimStats` rollup.
    engine: PassRollup,
}

/// The shared telemetry sink: one per [`Service`](crate::Service),
/// shared by the server drain loop and every transport.
pub struct Telemetry {
    clock: Clock,
    started_micros: u64,
    inner: Mutex<Metrics>,
    trace: Mutex<Option<Box<dyn Write + Send>>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(Clock::wall())
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("clock", &self.clock)
            .field("started_micros", &self.started_micros)
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// A telemetry sink on the given clock.
    #[must_use]
    pub fn new(clock: Clock) -> Telemetry {
        let started_micros = clock.now_micros();
        Telemetry {
            clock,
            started_micros,
            inner: Mutex::new(Metrics::default()),
            trace: Mutex::new(None),
        }
    }

    /// The injected clock (cheap to clone; all stack components stamp
    /// through it).
    #[must_use]
    pub fn clock(&self) -> Clock {
        self.clock.clone()
    }

    /// Current clock reading.
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }

    /// Microseconds since this telemetry object was created.
    #[must_use]
    pub fn uptime_micros(&self) -> u64 {
        self.clock.now_micros().saturating_sub(self.started_micros)
    }

    /// Attaches an LDJSON trace writer (`--trace FILE`): every served
    /// query emits `submit`/`resolve`/`execute`/`respond` records.
    pub fn set_trace_writer(&self, writer: Box<dyn Write + Send>) {
        *self.trace.lock().expect("trace lock") = Some(writer);
    }

    /// Whether a trace writer is attached.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.trace.lock().expect("trace lock").is_some()
    }

    /// Records one served query: stage histograms, the `(property,
    /// cache outcome)` end-to-end distribution, and — when tracing is
    /// on — the four per-query trace records.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_query(
        &self,
        conn: Option<ConnectionId>,
        query: u64,
        property: Property,
        cache: CacheStatus,
        route: Route,
        stages: StageTimes,
        coalesced: usize,
        engine_micros: u64,
    ) {
        {
            let mut m = self.inner.lock().expect("telemetry lock");
            m.stage_queue.record(stages.queue_micros);
            m.stage_resolve.record(stages.resolve_micros);
            m.stage_execute.record(stages.execute_micros);
            m.stage_respond.record(stages.respond_micros);
            m.latency
                .entry((property, cache, route))
                .or_default()
                .record(stages.total_micros());
        }
        self.trace_query(
            conn,
            query,
            property,
            cache,
            stages,
            coalesced,
            engine_micros,
        );
    }

    /// Records a failed query's stage timings (no outcome to
    /// attribute; stage histograms still see it).
    pub(crate) fn record_failed_query(&self, stages: StageTimes) {
        let mut m = self.inner.lock().expect("telemetry lock");
        m.stage_queue.record(stages.queue_micros);
        m.stage_resolve.record(stages.resolve_micros);
        m.stage_execute.record(stages.execute_micros);
        m.stage_respond.record(stages.respond_micros);
    }

    #[allow(clippy::too_many_arguments)]
    fn trace_query(
        &self,
        conn: Option<ConnectionId>,
        query: u64,
        property: Property,
        cache: CacheStatus,
        stages: StageTimes,
        coalesced: usize,
        engine_micros: u64,
    ) {
        let mut guard = self.trace.lock().expect("trace lock");
        let Some(writer) = guard.as_mut() else { return };
        let conn_value = match conn {
            Some(c) => Value::UInt(c),
            None => Value::Null,
        };
        let base = |event: &str, at: u64| {
            Value::obj()
                .field("event", event)
                .field("query", query)
                .field("conn", conn_value.clone())
                .field("at_micros", at)
        };
        let t_submit = stages.submitted_micros;
        let t_resolve = t_submit + stages.queue_micros;
        let t_execute = t_resolve + stages.resolve_micros;
        let t_respond = t_execute + stages.execute_micros;
        let records = [
            base("submit", t_submit),
            base("resolve", t_resolve)
                .field("micros", stages.resolve_micros)
                .field("queue_micros", stages.queue_micros)
                .field("property", property.name())
                .field("cache", cache.name()),
            base("execute", t_execute)
                .field("micros", stages.execute_micros)
                .field("engine_micros", engine_micros)
                .field("coalesced", coalesced),
            base("respond", t_respond)
                .field("micros", stages.respond_micros)
                .field("total_micros", stages.total_micros()),
        ];
        for record in records {
            if writeln!(writer, "{record}").is_err() {
                // A dead trace sink must not take queries down with it.
                *guard = None;
                return;
            }
        }
        let _ = writer.flush();
    }

    /// Records one drain-loop cycle: its wake reason, width
    /// (submissions taken) and group fan-out.
    pub(crate) fn record_cycle(&self, reason: WakeReason, width: usize, groups: usize) {
        let mut m = self.inner.lock().expect("telemetry lock");
        m.wake[reason.slot()] += 1;
        m.cycles += 1;
        m.cycle_width.record(width as u64);
        m.cycle_groups.record(groups as u64);
    }

    /// Folds one engine pass's statistics into the rollup, crediting
    /// the queries it served (the coalescing numerator).
    pub(crate) fn record_pass(&self, stats: &SimStats, queries: usize) {
        let mut m = self.inner.lock().expect("telemetry lock");
        m.engine.record(stats);
        m.engine_queries += queries as u64;
    }

    /// Records one per-connection response write duration.
    pub(crate) fn record_write(&self, micros: u64) {
        let mut m = self.inner.lock().expect("telemetry lock");
        m.write.record(micros);
    }

    /// Wake reason counters as `[depth, linger, control, shutdown,
    /// pipeline]`.
    #[must_use]
    pub fn wake_counts(&self) -> [u64; WAKE_REASONS] {
        self.inner.lock().expect("telemetry lock").wake
    }

    /// Drain cycles executed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.inner.lock().expect("telemetry lock").cycles
    }

    /// The end-to-end latency histogram for one `(property, cache)`
    /// cell, merged across serving routes, if any query landed there.
    #[must_use]
    pub fn latency_histogram(&self, property: Property, cache: CacheStatus) -> Option<Histogram> {
        let m = self.inner.lock().expect("telemetry lock");
        let mut merged: Option<Histogram> = None;
        for route in [Route::Fast, Route::Cycle] {
            if let Some(h) = m.latency.get(&(property, cache, route)) {
                match merged.as_mut() {
                    Some(acc) => acc.merge(h),
                    None => merged = Some(h.clone()),
                }
            }
        }
        merged
    }

    /// The end-to-end latency histogram for one `(property, cache,
    /// route)` cell, if any query landed there.
    #[must_use]
    pub fn latency_histogram_for(
        &self,
        property: Property,
        cache: CacheStatus,
        route: Route,
    ) -> Option<Histogram> {
        self.inner
            .lock()
            .expect("telemetry lock")
            .latency
            .get(&(property, cache, route))
            .cloned()
    }

    /// The full `metrics` snapshot (the JSON wire op's body; the
    /// protocol layer adds registry/cache fields on top).
    #[must_use]
    pub fn metrics_value(&self) -> Value {
        let m = self.inner.lock().expect("telemetry lock");
        let latency: Vec<Value> = m
            .latency
            .iter()
            .map(|((property, cache, route), h)| {
                Value::obj()
                    .field("property", property.name())
                    .field("cache", cache.name())
                    .field("route", route.name())
                    .field("latency_micros", h.snapshot_value())
            })
            .collect();
        let coalesce_ratio = if m.engine.passes == 0 {
            0.0
        } else {
            m.engine_queries as f64 / m.engine.passes as f64
        };
        Value::obj()
            .field("uptime_micros", self.uptime_micros())
            .field(
                "cycles",
                Value::obj()
                    .field("count", m.cycles)
                    .field(
                        "wake",
                        Value::obj()
                            .field("depth", m.wake[0])
                            .field("linger", m.wake[1])
                            .field("control", m.wake[2])
                            .field("shutdown", m.wake[3])
                            .field("pipeline", m.wake[4]),
                    )
                    .field("width", m.cycle_width.snapshot_value())
                    .field("groups", m.cycle_groups.snapshot_value()),
            )
            .field(
                "stages",
                Value::obj()
                    .field("queue_micros", m.stage_queue.snapshot_value())
                    .field("resolve_micros", m.stage_resolve.snapshot_value())
                    .field("execute_micros", m.stage_execute.snapshot_value())
                    .field("respond_micros", m.stage_respond.snapshot_value())
                    .field("write_micros", m.write.snapshot_value()),
            )
            .field("latency", latency)
            .field(
                "engine",
                Value::obj()
                    .field("passes", m.engine.passes)
                    .field("queries", m.engine_queries)
                    .field("coalesce_ratio", coalesce_ratio)
                    .field("rounds", m.engine.stats.rounds)
                    .field("charged_rounds", m.engine.stats.charged_rounds)
                    .field("messages", m.engine.stats.messages)
                    .field("words", m.engine.stats.words)
                    .field("phases", m.engine.stats.runs),
            )
    }

    /// Prometheus-style text exposition (format 0.0.4) of the same
    /// metrics, for scrapers and the `planartest metrics` one-shot.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let m = self.inner.lock().expect("telemetry lock");
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE planartest_uptime_micros gauge");
        let _ = writeln!(out, "planartest_uptime_micros {}", self.uptime_micros());
        let _ = writeln!(out, "# TYPE planartest_drain_cycles_total counter");
        let _ = writeln!(out, "planartest_drain_cycles_total {}", m.cycles);
        let _ = writeln!(out, "# TYPE planartest_drain_wake_total counter");
        for reason in [
            WakeReason::Depth,
            WakeReason::Linger,
            WakeReason::Control,
            WakeReason::Shutdown,
            WakeReason::Pipeline,
        ] {
            let _ = writeln!(
                out,
                "planartest_drain_wake_total{{reason=\"{}\"}} {}",
                reason.name(),
                m.wake[reason.slot()]
            );
        }
        let _ = writeln!(out, "# TYPE planartest_engine_passes_total counter");
        let _ = writeln!(out, "planartest_engine_passes_total {}", m.engine.passes);
        let _ = writeln!(out, "# TYPE planartest_engine_queries_total counter");
        let _ = writeln!(out, "planartest_engine_queries_total {}", m.engine_queries);
        for (name, v) in [
            ("rounds", m.engine.stats.rounds),
            ("charged_rounds", m.engine.stats.charged_rounds),
            ("messages", m.engine.stats.messages),
            ("words", m.engine.stats.words),
        ] {
            let _ = writeln!(out, "# TYPE planartest_engine_{name}_total counter");
            let _ = writeln!(out, "planartest_engine_{name}_total {v}");
        }
        for (name, h) in [
            ("stage_queue_micros", &m.stage_queue),
            ("stage_resolve_micros", &m.stage_resolve),
            ("stage_execute_micros", &m.stage_execute),
            ("stage_respond_micros", &m.stage_respond),
            ("write_micros", &m.write),
            ("cycle_width", &m.cycle_width),
            ("cycle_groups", &m.cycle_groups),
        ] {
            write_prometheus_histogram(&mut out, &format!("planartest_{name}"), "", h);
        }
        for ((property, cache, route), h) in &m.latency {
            write_prometheus_histogram(
                &mut out,
                "planartest_query_latency_micros",
                &format!(
                    "property=\"{}\",cache=\"{}\",route=\"{}\"",
                    property.name(),
                    cache.name(),
                    route.name()
                ),
                h,
            );
        }
        out
    }
}

/// Writes one histogram in Prometheus exposition format: cumulative
/// `_bucket{le=...}` series over the non-empty buckets, `+Inf`, `_sum`
/// and `_count`.
fn write_prometheus_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    use std::fmt::Write as _;
    let sep = if labels.is_empty() { "" } else { "," };
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (_, upper, count) in h.nonzero_buckets() {
        cumulative += count;
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{upper}\"}} {cumulative}"
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
        h.count()
    );
    let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum());
    let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_roundtrips_bounds() {
        for v in (0..4096u64).chain([
            1 << 20,
            (1 << 20) + 37,
            u64::MAX / 3,
            u64::MAX - 1,
            u64::MAX,
        ]) {
            let i = Histogram::index(v);
            let (lo, hi) = Histogram::bounds(i);
            assert!(lo <= v && v <= hi, "value {v} outside bucket [{lo}, {hi}]");
            // One-bucket relative error: width <= max(1, v/16).
            assert!(hi - lo <= v / SUB || v < SUB, "bucket too wide for {v}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        for (i, (lo, hi, c)) in h.nonzero_buckets().enumerate() {
            assert_eq!((lo, hi, c), (i as u64, i as u64, 1));
        }
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), SUB - 1);
    }

    #[test]
    fn quantiles_never_under_report() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (0..1000u64).map(|i| i * i).collect();
        for &v in &values {
            h.record(v);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let rank = (q * (values.len() - 1) as f64).round() as usize;
            let exact = values[rank];
            let est = h.value_at_quantile(q);
            assert!(est >= exact, "q={q}: {est} < exact {exact}");
            assert!(
                est <= exact + exact / SUB + 1,
                "q={q}: {est} beyond one-bucket error of {exact}"
            );
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 999 * 999);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn subtract_windows_a_cumulative_stream() {
        let mut h = Histogram::new();
        for v in [3u64, 900, 17] {
            h.record(v); // the "warmup" prefix
        }
        let snapshot = h.clone();
        for v in [5u64, 5, 40, 2000] {
            h.record(v); // the measured window
        }
        h.subtract(&snapshot);
        assert_eq!(h.count(), 4);
        let mut exact = Histogram::new();
        for v in [5u64, 5, 40, 2000] {
            exact.record(v);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.value_at_quantile(q), exact.value_at_quantile(q));
        }
        assert_eq!(h.min(), exact.min());
        // Max is re-derived from bucket bounds: upper edge, never under.
        assert!(h.max() >= 2000 && h.max() <= 2000 + 2000 / SUB + 1);

        // Subtracting everything leaves a well-formed empty histogram.
        let full = h.clone();
        h.subtract(&full);
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    #[should_panic(expected = "not an earlier snapshot")]
    fn subtract_rejects_a_non_prefix() {
        let mut a = Histogram::new();
        a.record(7);
        let mut b = Histogram::new();
        b.record(9);
        a.subtract(&b);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [3u64, 17, 170, 1700] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 500, 50000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.1, 0.5, 0.9] {
            assert_eq!(a.value_at_quantile(q), all.value_at_quantile(q));
        }
    }

    #[test]
    fn mock_clock_is_deterministic() {
        let (clock, handle) = Clock::mock(0);
        assert_eq!(clock.now_micros(), 0);
        handle.advance(250);
        assert_eq!(clock.now_micros(), 250);
        assert_eq!(handle.now_micros(), 250);

        let (ticking, _) = Clock::mock(10);
        assert_eq!(ticking.now_micros(), 0);
        assert_eq!(ticking.now_micros(), 10);
        assert_eq!(ticking.now_micros(), 20);
    }

    #[test]
    fn stage_times_sum_exactly() {
        let stages = StageTimes {
            submitted_micros: 100,
            queue_micros: 7,
            resolve_micros: 3,
            execute_micros: 40,
            respond_micros: 2,
        };
        assert_eq!(stages.total_micros(), 52);
    }

    #[test]
    fn trace_writer_emits_four_records_per_query() {
        use std::sync::{Arc as StdArc, Mutex as StdMutex};
        #[derive(Clone, Default)]
        struct Sink(StdArc<StdMutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (clock, _) = Clock::mock(0);
        let telemetry = Telemetry::new(clock);
        let sink = Sink::default();
        telemetry.set_trace_writer(Box::new(sink.clone()));
        assert!(telemetry.trace_enabled());
        telemetry.record_query(
            Some(4),
            9,
            Property::Planarity,
            CacheStatus::Cold,
            Route::Cycle,
            StageTimes {
                submitted_micros: 1000,
                queue_micros: 10,
                resolve_micros: 5,
                execute_micros: 100,
                respond_micros: 1,
            },
            3,
            300,
        );
        let bytes = sink.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let events: Vec<Value> = text
            .lines()
            .map(|l| Value::parse(l).expect("trace line parses"))
            .collect();
        assert_eq!(events.len(), 4);
        let names: Vec<&str> = events
            .iter()
            .map(|e| e.get("event").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, ["submit", "resolve", "execute", "respond"]);
        for e in &events {
            assert_eq!(e.get("query").unwrap().as_u64(), Some(9));
            assert_eq!(e.get("conn").unwrap().as_u64(), Some(4));
        }
        assert_eq!(events[0].get("at_micros").unwrap().as_u64(), Some(1000));
        assert_eq!(events[1].get("at_micros").unwrap().as_u64(), Some(1010));
        assert_eq!(events[2].get("at_micros").unwrap().as_u64(), Some(1015));
        assert_eq!(events[3].get("at_micros").unwrap().as_u64(), Some(1115));
        assert_eq!(events[3].get("total_micros").unwrap().as_u64(), Some(116));
        assert_eq!(events[2].get("coalesced").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn prometheus_text_shape() {
        let (clock, handle) = Clock::mock(0);
        let telemetry = Telemetry::new(clock);
        handle.advance(5000);
        telemetry.record_cycle(WakeReason::Depth, 4, 1);
        telemetry.record_cycle(WakeReason::Control, 1, 0);
        telemetry.record_query(
            None,
            0,
            Property::Planarity,
            CacheStatus::Cold,
            Route::Cycle,
            StageTimes {
                submitted_micros: 0,
                queue_micros: 2,
                resolve_micros: 1,
                execute_micros: 90,
                respond_micros: 1,
            },
            1,
            90,
        );
        telemetry.record_pass(
            &SimStats {
                rounds: 100,
                charged_rounds: 5,
                messages: 40,
                words: 80,
                runs: 3,
            },
            4,
        );
        let text = telemetry.prometheus_text();
        assert!(text.contains("planartest_uptime_micros 5000"));
        assert!(text.contains("planartest_drain_cycles_total 2"));
        assert!(text.contains("planartest_drain_wake_total{reason=\"depth\"} 1"));
        assert!(text.contains("planartest_drain_wake_total{reason=\"control\"} 1"));
        assert!(text.contains("planartest_drain_wake_total{reason=\"linger\"} 0"));
        assert!(text.contains("planartest_engine_rounds_total 100"));
        assert!(text.contains("planartest_engine_charged_rounds_total 5"));
        assert!(text.contains("planartest_drain_wake_total{reason=\"pipeline\"} 0"));
        assert!(text.contains(
            "planartest_query_latency_micros_bucket{property=\"planarity\",cache=\"cold\",route=\"cycle\",le="
        ));
        assert!(text.contains(
            "planartest_query_latency_micros_count{property=\"planarity\",cache=\"cold\",route=\"cycle\"} 1"
        ));
        assert!(text.contains("planartest_stage_queue_micros_bucket{le=\"2\"} 1"));
        // Every histogram closes with +Inf at the total count.
        assert!(text.contains("planartest_stage_execute_micros_bucket{le=\"+Inf\"} 1"));

        let snapshot = telemetry.metrics_value();
        assert_eq!(snapshot.get("uptime_micros").unwrap().as_u64(), Some(5000));
        let engine = snapshot.get("engine").unwrap();
        assert_eq!(engine.get("passes").unwrap().as_u64(), Some(1));
        assert_eq!(engine.get("rounds").unwrap().as_u64(), Some(100));
        let latency = snapshot.get("latency").unwrap().as_arr().unwrap();
        assert_eq!(latency.len(), 1);
        assert_eq!(latency[0].get("cache").unwrap().as_str(), Some("cold"),);
        assert_eq!(latency[0].get("route").unwrap().as_str(), Some("cycle"),);
    }
}
