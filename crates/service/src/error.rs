//! Error type of the service layer.

use std::fmt;

use planartest_core::CoreError;
use planartest_graph::generators::spec::SpecError;
use planartest_graph::io::ParseGraphError;

/// Errors surfaced by the service layer.
///
/// Reject verdicts are *results*, never errors — this type covers ingest
/// failures, unresolvable references and engine infrastructure errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A query referenced a graph that is not resident.
    UnknownGraph {
        /// The name or fingerprint that failed to resolve.
        graph: String,
    },
    /// An ingest tried to rebind an existing name to different content.
    NameTaken {
        /// The contested name.
        name: String,
    },
    /// An edge-list document failed to parse.
    EdgeList(ParseGraphError),
    /// A generator spec failed to parse or instantiate.
    Spec(SpecError),
    /// The underlying engine pass failed (infrastructure, not verdict).
    Engine(CoreError),
    /// The persistence tier failed (CSR spill, certificate log).
    Persist(crate::persist::PersistError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownGraph { graph } => {
                write!(f, "graph `{graph}` is not in the registry")
            }
            ServiceError::NameTaken { name } => {
                write!(f, "name `{name}` is already bound to a different graph")
            }
            ServiceError::EdgeList(e) => write!(f, "edge list: {e}"),
            ServiceError::Spec(e) => write!(f, "generator spec: {e}"),
            ServiceError::Engine(e) => write!(f, "engine: {e}"),
            ServiceError::Persist(e) => write!(f, "persistence: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::EdgeList(e) => Some(e),
            ServiceError::Spec(e) => Some(e),
            ServiceError::Engine(e) => Some(e),
            ServiceError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Engine(e)
    }
}

impl From<crate::persist::PersistError> for ServiceError {
    fn from(e: crate::persist::PersistError) -> Self {
        ServiceError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServiceError::UnknownGraph { graph: "g9".into() };
        assert!(e.to_string().contains("g9"));
        assert!(std::error::Error::source(&e).is_none());
        let e = ServiceError::Spec(SpecError::Malformed);
        assert!(std::error::Error::source(&e).is_some());
        let e = ServiceError::NameTaken { name: "a".into() };
        assert!(e.to_string().contains("already bound"));
    }
}
