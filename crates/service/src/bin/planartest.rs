//! The `planartest` CLI: a line-delimited JSON query service.
//!
//! ```text
//! planartest serve                 # LDJSON protocol on stdin/stdout
//! planartest query [FLAGS]         # one-shot: ingest + query + print
//! planartest families              # list the generator corpus
//! ```
//!
//! `query` flags: `--spec SPEC` or `--graph-file PATH` (edge list),
//! `--property P`, `--epsilon E`, `--seed S`, `--phases T`,
//! `--backend B` (`serial|parallel[:k]|auto`), `--embedding strict|paper`.

use std::io::{BufRead, Write};
use std::process::ExitCode;

use planartest_service::protocol::{handle_line, handle_request};
use planartest_service::wire::Value;
use planartest_service::Service;

const USAGE: &str = "\
planartest — query service for distributed planarity testing

USAGE:
  planartest serve
      Read one JSON request per line on stdin, write one JSON response
      per line on stdout (ops: ingest, query, batch, stats, families).
  planartest query (--spec SPEC | --graph-file PATH) [--property P]
      [--epsilon E] [--seed S] [--phases T] [--backend B]
      [--embedding strict|paper]
      One-shot: ingest the graph, run one query, print the response.
      Exit code: 0 = accept, 1 = reject, 2 = error.
  planartest families
      Print the spec-addressable generator corpus.
";

fn serve() -> ExitCode {
    let mut service = Service::new();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // stdin closed
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(&mut service, &line);
        if writeln!(out, "{response}")
            .and_then(|()| out.flush())
            .is_err()
        {
            break; // stdout closed
        }
    }
    ExitCode::SUCCESS
}

/// Parses `--flag value` pairs; returns `None` (with a message) on
/// unknown or dangling flags.
fn parse_flags(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument `{flag}`"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag `--{name}` needs a value"));
        };
        flags.push((name.to_string(), value.clone()));
    }
    Ok(flags)
}

fn one_shot(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut service = Service::new();
    let mut ingest = Value::obj().field("op", "ingest").field("name", "g");
    let mut query = Value::obj().field("op", "query").field("graph", "g");
    let mut have_graph = false;
    for (name, value) in flags {
        match name.as_str() {
            "spec" => {
                ingest = ingest.field("spec", value.as_str());
                have_graph = true;
            }
            "graph-file" => {
                let text = match std::fs::read_to_string(&value) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: cannot read `{value}`: {e}");
                        return ExitCode::from(2);
                    }
                };
                ingest = ingest.field("edge_list", text);
                have_graph = true;
            }
            "property" => query = query.field("property", value.as_str()),
            "backend" => query = query.field("backend", value.as_str()),
            "embedding" => query = query.field("embedding", value.as_str()),
            "epsilon" => match value.parse::<f64>() {
                Ok(e) => query = query.field("epsilon", e),
                Err(_) => {
                    eprintln!("error: `--epsilon` must be a number");
                    return ExitCode::from(2);
                }
            },
            "seed" | "phases" => match value.parse::<u64>() {
                Ok(x) => query = query.field(name.as_str(), x),
                Err(_) => {
                    eprintln!("error: `--{name}` must be a non-negative integer");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown flag `--{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !have_graph {
        eprintln!("error: `query` needs --spec or --graph-file\n\n{USAGE}");
        return ExitCode::from(2);
    }
    let ingested = handle_request(&mut service, &ingest);
    if ingested.get("ok").and_then(Value::as_bool) != Some(true) {
        println!("{ingested}");
        return ExitCode::from(2);
    }
    let response = handle_request(&mut service, &query);
    println!("{response}");
    match (
        response.get("ok").and_then(Value::as_bool),
        response.get("verdict").and_then(Value::as_str),
    ) {
        (Some(true), Some("accept")) => ExitCode::SUCCESS,
        (Some(true), _) => ExitCode::from(1),
        _ => ExitCode::from(2),
    }
}

fn families() -> ExitCode {
    let mut service = Service::new();
    let r = handle_request(&mut service, &Value::obj().field("op", "families"));
    println!("{r}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") if args.len() == 1 => serve(),
        Some("query") => one_shot(&args[1..]),
        Some("families") if args.len() == 1 => families(),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
