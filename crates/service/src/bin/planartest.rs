//! The `planartest` CLI: a line-delimited JSON query service.
//!
//! ```text
//! planartest serve [FLAGS]         # LDJSON server: stdio + sockets
//! planartest query [FLAGS]         # one-shot: ingest + query + print
//! planartest metrics [FLAGS]       # scrape a running server's metrics
//! planartest families              # list the generator corpus
//! ```
//!
//! `serve` flags: `--unix PATH`, `--tcp ADDR` (listeners beyond the
//! default stdio transport), `--no-stdio` (daemon mode), `--state-dir
//! DIR` (durable tier: CSR spills + certificate WAL, restored on
//! start), `--resident-graphs N` (heap-tier cap before LRU demotion
//! to mmap), `--linger-ms N` (coalescing window), `--wake-depth N`,
//! `--group-threads N`, `--cache-accepts N`, `--max-frame-bytes N`,
//! `--outbound-depth N` / `--max-in-flight N` (per-connection
//! backpressure bounds), `--trace FILE` (per-query LDJSON event log).
//!
//! `metrics` flags: `--unix PATH` or `--tcp ADDR` (the running
//! server's listener), `--json` (the `metrics` snapshot instead of
//! Prometheus text).
//!
//! `query` flags: `--spec SPEC` or `--graph-file PATH` (edge list),
//! `--property P`, `--epsilon E`, `--seed S`, `--phases T`,
//! `--backend B` (`serial|parallel[:k]|auto`), `--embedding strict|paper`.

use std::process::ExitCode;
use std::time::Duration;

use planartest_service::protocol::handle_request;
use planartest_service::wire::Value;
use planartest_service::{ServeOptions, Server, Service};

const USAGE: &str = "\
planartest — query service for distributed planarity testing

USAGE:
  planartest serve [--unix PATH] [--tcp ADDR] [--no-stdio]
      [--state-dir DIR] [--resident-graphs N]
      [--linger-ms N] [--wake-depth N] [--group-threads N]
      [--cache-accepts N] [--max-frame-bytes N]
      [--outbound-depth N] [--max-in-flight N] [--trace FILE]
      Serve one JSON request per line, one JSON response per line
      (ops: ingest, query, batch, stats, metrics, metrics-text,
      families), multiplexing
      stdio plus any configured unix-socket / TCP listeners through
      one scheduler: same-graph queries from *different* clients
      coalesce into shared engine passes. --linger-ms (default 0)
      is the coalescing window lone queries may wait; --wake-depth
      fires a cycle early once that many requests are pending;
      --group-threads (default: all cores) fans independent query
      groups across workers; --cache-accepts bounds the per-seed
      result-cache stripes (LRU; reject certificates are permanent);
      --max-frame-bytes caps a request line (oversized frames get an
      error response, not a dead server); --outbound-depth (default
      1024, 0 = unbounded) bounds each connection's outbound response
      queue — a client that stops reading has further responses shed
      (counted in stats.responses_shed) instead of blocking anyone;
      --max-in-flight (default 1024, 0 = unbounded) caps a
      connection's unanswered submissions, pausing its reader so one
      firehose cannot starve the shared queue; --trace FILE appends one
      LDJSON record per query stage (submit/resolve/execute/respond)
      for offline latency analysis and load replay. EOF on stdin or
      SIGTERM shuts down gracefully, answering everything already
      queued; --no-stdio (daemon mode, needs --unix/--tcp) skips the
      stdin transport so a detached server is stopped by SIGTERM only.
      --state-dir DIR makes the server durable: graphs write through
      to relocatable on-disk CSR spills (re-mapped zero-copy on the
      next start) and reject certificates append to a crash-tolerant
      log replayed into the cache on start, so a restarted server
      answers certified queries without any engine pass;
      --resident-graphs caps the heap CSR tier (least-recently-used
      graphs demote to their mmap spill).
  planartest query (--spec SPEC | --graph-file PATH) [--property P]
      [--epsilon E] [--seed S] [--phases T] [--backend B]
      [--embedding strict|paper] [--state-dir DIR] [--to-disk]
      One-shot: ingest the graph, run one query, print the response.
      Exit code: 0 = accept, 1 = reject, 2 = error. With --state-dir
      the one-shot reads/writes the same durable state a server would
      (certified queries answer from the log, no engine pass);
      --to-disk streams the ingest straight to the CSR spill.
  planartest compact --state-dir DIR
      Offline certificate-log compaction: replay DIR, rewrite one
      record per live certificate (atomic temp-file + rename), and
      report how many records the rewrite kept. Run while no server
      owns DIR; an append-only log otherwise accretes duplicate
      records across cache clears and torn tails.
  planartest metrics (--unix PATH | --tcp ADDR) [--json]
      Scrape a running server: print its latency/stage histograms as
      Prometheus exposition text (default) or the full JSON snapshot
      (--json).
  planartest families
      Print the spec-addressable generator corpus.
";

/// SIGTERM/SIGINT → a flag the serve loop's watcher thread polls.
/// `std` has no signal API and the workspace is offline, so the
/// handler is registered through libc's `signal`, which every unix
/// target already links.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERMINATED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: set the flag, nothing else.
        TERMINATED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

fn serve(args: &[String]) -> ExitCode {
    // `--no-stdio` is the one valueless flag (daemon mode: don't read
    // stdin, don't shut down on its EOF — SIGTERM/SIGINT still work).
    let stdio = !args.iter().any(|a| a == "--no-stdio");
    let args: Vec<String> = args
        .iter()
        .filter(|a| *a != "--no-stdio")
        .cloned()
        .collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut opts = ServeOptions::default();
    let mut unix_path: Option<String> = None;
    let mut tcp_addr: Option<String> = None;
    let mut group_threads = 0usize; // serve default: all cores
    let mut cache_accepts: Option<usize> = None;
    let mut trace_path: Option<String> = None;
    let mut state_dir: Option<String> = None;
    let mut resident_graphs: Option<usize> = None;
    for (name, value) in flags {
        let parse_u64 = || -> Result<u64, ExitCode> {
            value.parse::<u64>().map_err(|_| {
                eprintln!("error: `--{name}` must be a non-negative integer");
                ExitCode::from(2)
            })
        };
        match name.as_str() {
            "unix" => unix_path = Some(value.clone()),
            "tcp" => tcp_addr = Some(value.clone()),
            "linger-ms" => match parse_u64() {
                Ok(ms) => opts.linger = Duration::from_millis(ms),
                Err(code) => return code,
            },
            "wake-depth" => match parse_u64() {
                // 0 = "never by depth", same as the default.
                Ok(0) => opts.wake_depth = usize::MAX,
                Ok(d) => opts.wake_depth = d as usize,
                Err(code) => return code,
            },
            "group-threads" => match parse_u64() {
                Ok(t) => group_threads = t as usize,
                Err(code) => return code,
            },
            "cache-accepts" => match parse_u64() {
                Ok(c) => cache_accepts = Some(c as usize),
                Err(code) => return code,
            },
            "max-frame-bytes" => match parse_u64() {
                Ok(b) => opts.max_frame = b as usize,
                Err(code) => return code,
            },
            "outbound-depth" => match parse_u64() {
                Ok(d) => opts.outbound_depth = d as usize,
                Err(code) => return code,
            },
            "max-in-flight" => match parse_u64() {
                Ok(n) => opts.max_in_flight = n as usize,
                Err(code) => return code,
            },
            "trace" => trace_path = Some(value.clone()),
            "state-dir" => state_dir = Some(value.clone()),
            "resident-graphs" => match parse_u64() {
                Ok(n) => resident_graphs = Some(n as usize),
                Err(code) => return code,
            },
            other => {
                eprintln!("error: unknown serve flag `--{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let mut service = Service::new().with_group_threads(group_threads);
    if let Some(capacity) = cache_accepts {
        service.set_cache_accepts(capacity);
    }
    if let Some(n) = resident_graphs {
        service.registry_mut().set_resident_capacity(n);
    }
    if let Some(dir) = &state_dir {
        match service.set_state_dir(std::path::Path::new(dir)) {
            Ok(summary) => eprintln!(
                "state {dir}: restored {} graphs, {} certificates ({} log lines skipped)",
                summary.graphs_restored, summary.certificates_replayed, summary.tail_skipped
            ),
            Err(e) => {
                eprintln!("error: cannot open state dir `{dir}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = &trace_path {
        match std::fs::File::create(path) {
            Ok(file) => service
                .telemetry()
                .set_trace_writer(Box::new(std::io::BufWriter::new(file))),
            Err(e) => {
                eprintln!("error: cannot open trace file `{path}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if !stdio && unix_path.is_none() && tcp_addr.is_none() {
        eprintln!("error: `--no-stdio` needs at least one of `--unix` / `--tcp`");
        return ExitCode::from(2);
    }
    let server = Server::start(service, opts);
    // Stdio is the compatibility transport and the default shutdown
    // control (EOF = graceful stop), matching the old synchronous
    // loop's lifetime even when sockets carry the load. `--no-stdio`
    // skips it for daemonized socket-only servers, whose stdin is
    // typically /dev/null and would otherwise EOF — and exit —
    // immediately; they stop on SIGTERM/SIGINT instead.
    if stdio {
        server.attach_stdio();
    }
    if let Some(path) = &unix_path {
        if let Err(e) = server.listen_unix(std::path::Path::new(path)) {
            eprintln!("error: cannot listen on unix socket `{path}`: {e}");
            return ExitCode::from(2);
        }
        eprintln!("listening unix {path}");
    }
    if let Some(addr) = &tcp_addr {
        match server.listen_tcp(addr) {
            Ok(bound) => eprintln!("listening tcp {bound}"),
            Err(e) => {
                eprintln!("error: cannot listen on tcp `{addr}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    #[cfg(unix)]
    {
        sig::install();
        let queue = server.submission_queue();
        std::thread::Builder::new()
            .name("planartest-signals".into())
            .spawn(move || loop {
                if sig::TERMINATED.load(std::sync::atomic::Ordering::SeqCst) {
                    queue.request_shutdown();
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            })
            .expect("spawn signal watcher");
    }
    let _ = server.join();
    if let Some(path) = &unix_path {
        let _ = std::fs::remove_file(path);
    }
    ExitCode::SUCCESS
}

/// Parses `--flag value` pairs; returns `None` (with a message) on
/// unknown or dangling flags.
fn parse_flags(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument `{flag}`"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag `--{name}` needs a value"));
        };
        flags.push((name.to_string(), value.clone()));
    }
    Ok(flags)
}

/// Stable binding name for an edge-list one-shot: FNV-1a over the
/// bytes, so identical content re-binds the same alias and different
/// content never collides with a previous run's manifest entry.
fn content_name(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("edge-list:{h:016x}")
}

fn one_shot(args: &[String]) -> ExitCode {
    // `--to-disk` is valueless: stream the ingest straight to the
    // `--state-dir` CSR spill instead of building a heap CSR.
    let to_disk = args.iter().any(|a| a == "--to-disk");
    let args: Vec<String> = args.iter().filter(|a| *a != "--to-disk").cloned().collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut service = Service::new();
    // The binding name must be content-derived, not fixed: with
    // `--state-dir` the manifest outlives the process, and a fixed name
    // would make the second one-shot with a different graph fail with
    // `NameTaken`. Specs bind under their own text; edge lists under a
    // hash of their bytes — re-running the same one-shot re-binds the
    // same alias idempotently.
    let mut graph_name = None;
    let mut ingest = Value::obj().field("op", "ingest");
    if to_disk {
        ingest = ingest.field("to_disk", true);
    }
    let mut query = Value::obj().field("op", "query");
    for (name, value) in flags {
        match name.as_str() {
            "state-dir" => match service.set_state_dir(std::path::Path::new(&value)) {
                Ok(summary) => eprintln!(
                    "state {value}: restored {} graphs, {} certificates ({} log lines skipped)",
                    summary.graphs_restored, summary.certificates_replayed, summary.tail_skipped
                ),
                Err(e) => {
                    eprintln!("error: cannot open state dir `{value}`: {e}");
                    return ExitCode::from(2);
                }
            },
            "spec" => {
                graph_name = Some(value.clone());
                ingest = ingest.field("spec", value.as_str());
            }
            "graph-file" => {
                let text = match std::fs::read_to_string(&value) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: cannot read `{value}`: {e}");
                        return ExitCode::from(2);
                    }
                };
                graph_name = Some(content_name(&text));
                ingest = ingest.field("edge_list", text);
            }
            "property" => query = query.field("property", value.as_str()),
            "backend" => query = query.field("backend", value.as_str()),
            "embedding" => query = query.field("embedding", value.as_str()),
            "epsilon" => match value.parse::<f64>() {
                Ok(e) => query = query.field("epsilon", e),
                Err(_) => {
                    eprintln!("error: `--epsilon` must be a number");
                    return ExitCode::from(2);
                }
            },
            "seed" | "phases" => match value.parse::<u64>() {
                Ok(x) => query = query.field(name.as_str(), x),
                Err(_) => {
                    eprintln!("error: `--{name}` must be a non-negative integer");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown flag `--{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(graph_name) = graph_name else {
        eprintln!("error: `query` needs --spec or --graph-file\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let ingest = ingest.field("name", graph_name.as_str());
    let query = query.field("graph", graph_name.as_str());
    let ingested = handle_request(&mut service, &ingest);
    if ingested.get("ok").and_then(Value::as_bool) != Some(true) {
        println!("{ingested}");
        return ExitCode::from(2);
    }
    let response = handle_request(&mut service, &query);
    println!("{response}");
    match (
        response.get("ok").and_then(Value::as_bool),
        response.get("verdict").and_then(Value::as_str),
    ) {
        (Some(true), Some("accept")) => ExitCode::SUCCESS,
        (Some(true), _) => ExitCode::from(1),
        _ => ExitCode::from(2),
    }
}

/// One-shot metrics scrape against a running server's socket: sends a
/// single `metrics` / `metrics-text` request and prints the answer —
/// Prometheus text by default (unescaped from the one-line JSON
/// envelope), or the raw JSON snapshot with `--json`.
fn metrics(args: &[String]) -> ExitCode {
    use std::io::{BufRead, BufReader, Write};

    let json = args.iter().any(|a| a == "--json");
    let args: Vec<String> = args.iter().filter(|a| *a != "--json").cloned().collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut unix_path: Option<String> = None;
    let mut tcp_addr: Option<String> = None;
    for (name, value) in flags {
        match name.as_str() {
            "unix" => unix_path = Some(value),
            "tcp" => tcp_addr = Some(value),
            other => {
                eprintln!("error: unknown metrics flag `--{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let op = if json { "metrics" } else { "metrics-text" };
    let request = Value::obj().field("op", op).to_string();
    type Exchange = Box<dyn FnMut(&str) -> std::io::Result<String>>;
    let scrape = |mut stream: Exchange| -> ExitCode {
        match stream(&request) {
            Ok(line) => match Value::parse(line.trim()) {
                Ok(response) if json => {
                    println!("{}", response.pretty());
                    ExitCode::SUCCESS
                }
                Ok(response) => match response.get("text").and_then(Value::as_str) {
                    Some(text) => {
                        print!("{text}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!("error: server answered without a `text` field: {response}");
                        ExitCode::from(2)
                    }
                },
                Err(e) => {
                    eprintln!("error: bad response: {e}");
                    ExitCode::from(2)
                }
            },
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        }
    };
    // One round trip: write the request line, read the response line.
    fn round_trip<S: std::io::Read + Write>(
        mut stream: S,
        request: &str,
    ) -> std::io::Result<String> {
        writeln!(stream, "{request}")?;
        stream.flush()?;
        let mut line = String::new();
        BufReader::new(&mut stream).read_line(&mut line)?;
        Ok(line)
    }
    match (unix_path, tcp_addr) {
        (Some(path), None) => {
            #[cfg(unix)]
            {
                let path2 = path.clone();
                scrape(Box::new(move |req| {
                    let stream = std::os::unix::net::UnixStream::connect(&path2)?;
                    round_trip(stream, req)
                }))
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                eprintln!("error: unix sockets are not available on this platform");
                ExitCode::from(2)
            }
        }
        (None, Some(addr)) => scrape(Box::new(move |req| {
            let stream = std::net::TcpStream::connect(&addr)?;
            round_trip(stream, req)
        })),
        _ => {
            eprintln!("error: `metrics` needs exactly one of `--unix PATH` / `--tcp ADDR`");
            ExitCode::from(2)
        }
    }
}

fn compact(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut dir: Option<String> = None;
    for (name, value) in flags {
        match name.as_str() {
            "state-dir" => dir = Some(value),
            other => {
                eprintln!("error: unknown compact flag `--{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("error: `compact` needs --state-dir DIR\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let mut service = Service::new();
    let summary = match service.set_state_dir(std::path::Path::new(&dir)) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("error: cannot open state dir `{dir}`: {e}");
            return ExitCode::from(2);
        }
    };
    match service.compact_certificates() {
        Ok(kept) => {
            println!(
                "state {dir}: compacted to {kept} certificates \
                 ({} replayed, {} log lines skipped)",
                summary.certificates_replayed, summary.tail_skipped
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: compaction failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn families() -> ExitCode {
    let mut service = Service::new();
    let r = handle_request(&mut service, &Value::obj().field("op", "families"));
    println!("{r}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("query") => one_shot(&args[1..]),
        Some("compact") => compact(&args[1..]),
        Some("metrics") => metrics(&args[1..]),
        Some("families") if args.len() == 1 => families(),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
