//! The service front object: submit queries, drain them coalesced.
//!
//! [`Service`] owns the [`GraphRegistry`], the [`ResultCache`] and a
//! queue of pending queries. [`Service::drain`] is the batch-coalescing
//! scheduler: it answers cache hits immediately, groups the remaining
//! queries by `(graph, config, property)`, and feeds each planarity
//! group through **one** instance-multiplexed
//! [`PlanarityTester::run_many`] pass — independent users querying the
//! same graph under different seeds amortize a single Stage-I partition
//! and a single batched Stage-II — while deterministic Corollary 16
//! groups collapse to one run each. Every response carries cache
//! provenance, the wall-clock of its engine pass, and a per-query
//! latency attribution proportional to its simulated rounds (which the
//! batched drivers account per instance via
//! [`SimStats::delta_since`](planartest_sim::SimStats::delta_since)).

use std::collections::HashMap;
use std::time::Instant;

use planartest_core::applications::{test_bipartiteness, test_cycle_freeness, HereditaryOutcome};
use planartest_core::{CoreError, EmbeddingMode, PlanarityTester, TesterConfig};
use planartest_graph::Graph;
use planartest_sim::{Backend, Engine, EngineCore, ParallelEngine, SimConfig, SimStats};

use crate::cache::{CacheKey, ResultCache};
use crate::error::ServiceError;
use crate::query::{CacheStatus, GraphRef, Outcome, Property, Query, QueryId, QueryResponse};
use crate::registry::GraphRegistry;

/// One drained query: the id [`Service::submit`] handed out plus the
/// response or the per-query failure.
pub type DrainedQuery = (QueryId, Result<QueryResponse, ServiceError>);

/// Aggregate service telemetry (the `stats` wire op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Distinct resident graphs.
    pub graphs: usize,
    /// `(graph, config, property)` cache slots.
    pub cache_slots: usize,
    /// Stored per-seed outcomes across all slots.
    pub cached_outcomes: usize,
    /// Cache hit/miss counters.
    pub cache: crate::cache::CacheStats,
    /// Engine passes executed (each pass may serve many queries).
    pub engine_passes: u64,
    /// Queries answered (from cache or engine).
    pub queries_served: u64,
}

/// A pending query as the scheduler sees it after resolution.
struct Resolved {
    id: QueryId,
    key: CacheKey,
    seed: u64,
    query: Query,
}

/// The long-running query service (see the crate-level docs for the
/// full picture: registry + cache + coalescing scheduler).
#[derive(Debug, Default)]
pub struct Service {
    registry: GraphRegistry,
    cache: ResultCache,
    queue: Vec<(QueryId, Query)>,
    next_id: QueryId,
    engine_passes: u64,
    queries_served: u64,
}

impl Service {
    /// An empty service.
    #[must_use]
    pub fn new() -> Self {
        Service::default()
    }

    /// The graph registry (immutable view).
    #[must_use]
    pub fn registry(&self) -> &GraphRegistry {
        &self.registry
    }

    /// The graph registry, for ingestion.
    pub fn registry_mut(&mut self) -> &mut GraphRegistry {
        &mut self.registry
    }

    /// Engine passes executed so far. A warm or certificate hit does not
    /// advance this counter — that is how tests *prove* a cached reject
    /// replays its witness without re-running the partition.
    #[must_use]
    pub fn engine_passes(&self) -> u64 {
        self.engine_passes
    }

    /// Aggregate telemetry.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            graphs: self.registry.len(),
            cache_slots: self.cache.len(),
            cached_outcomes: self.cache.stored_outcomes(),
            cache: self.cache.stats(),
            engine_passes: self.engine_passes,
            queries_served: self.queries_served,
        }
    }

    /// Drops all cached results (cold-path measurement hook for load
    /// drivers; the registry stays resident).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Enqueues a query for the next [`drain`](Self::drain); returns its id.
    pub fn submit(&mut self, query: Query) -> QueryId {
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push((id, query));
        id
    }

    /// Number of queries waiting for the next drain.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Serves one query immediately (a drain of one). Queries already
    /// [`submit`](Self::submit)ted stay queued for the next
    /// [`drain`](Self::drain) — this serves *only* the given query.
    ///
    /// # Errors
    ///
    /// Resolution or engine failures for this query.
    pub fn query(&mut self, query: Query) -> Result<QueryResponse, ServiceError> {
        let pending = std::mem::take(&mut self.queue);
        let id = self.submit(query);
        let mut drained = self.drain();
        self.queue = pending;
        debug_assert_eq!(drained.len(), 1);
        let (got, result) = drained.pop().expect("one pending query");
        debug_assert_eq!(got, id);
        result
    }

    /// Drains the queue: the batch-coalescing scheduler.
    ///
    /// Responses come back in submission order. Per-query failures
    /// (unknown graph, engine error) fail that query alone, not the
    /// drain; an engine failure fails every query of its group (they
    /// shared the pass).
    pub fn drain(&mut self) -> Vec<DrainedQuery> {
        let pending = std::mem::take(&mut self.queue);
        let mut results: Vec<Option<DrainedQuery>> = Vec::new();
        results.resize_with(pending.len(), || None);
        self.queries_served += pending.len() as u64;

        // Resolve + cache pass: answer hits immediately, keep misses.
        let mut misses: Vec<(usize, Resolved)> = Vec::new();
        for (slot, (id, query)) in pending.into_iter().enumerate() {
            let entry = match self.registry.resolve(&query.graph) {
                Ok(e) => e,
                Err(err) => {
                    results[slot] = Some((id, Err(err)));
                    continue;
                }
            };
            let key = CacheKey {
                graph: entry.fingerprint,
                config: query.cfg.fingerprint(),
                property: query.property,
            };
            let seed = query.cfg.seed;
            if let Some((outcome, status, stored_seed)) = self.cache.lookup(&key, seed) {
                results[slot] = Some((
                    id,
                    Ok(QueryResponse {
                        id,
                        graph: key.graph,
                        property: query.property,
                        seed: stored_seed,
                        outcome,
                        cache: status,
                        coalesced: 0,
                        engine_micros: 0,
                        attributed_micros: 0,
                    }),
                ));
                continue;
            }
            misses.push((
                slot,
                Resolved {
                    id,
                    key,
                    seed,
                    query,
                },
            ));
        }

        // Group misses by cache key, preserving first-seen order.
        let mut group_index: HashMap<(u128, u128, Property), usize> = HashMap::new();
        let mut groups: Vec<Vec<(usize, Resolved)>> = Vec::new();
        for (slot, resolved) in misses {
            let gk = (
                resolved.key.graph.0,
                resolved.key.config.0,
                resolved.key.property,
            );
            match group_index.get(&gk) {
                Some(&g) => groups[g].push((slot, resolved)),
                None => {
                    group_index.insert(gk, groups.len());
                    groups.push(vec![(slot, resolved)]);
                }
            }
        }

        for group in groups {
            run_group(
                &self.registry,
                &mut self.cache,
                &mut self.engine_passes,
                group,
                &mut results,
            );
        }

        results
            .into_iter()
            .map(|r| r.expect("every pending query answered"))
            .collect()
    }
}

/// Executes one coalesced group through a single engine pass and fills
/// the group's response slots. A free function so the registry stays
/// borrowed immutably (the pass runs on the *resident* CSR — no clone)
/// while the cache and counters update.
fn run_group(
    registry: &GraphRegistry,
    cache: &mut ResultCache,
    engine_passes: &mut u64,
    group: Vec<(usize, Resolved)>,
    results: &mut [Option<DrainedQuery>],
) {
    let first = &group[0].1;
    let key = first.key;
    let property = key.property;
    // The group shares one pass; the pass runs on the first query's
    // backend (identical outcomes on every backend, so this is a
    // wall-clock choice only).
    let backend = first.query.backend;
    let cfg = first.query.cfg.clone();
    // Resolution already succeeded during the drain's cache pass (that
    // is where `key.graph` came from) and the registry is immutable for
    // the whole drain, so the lookup cannot fail here.
    let graph = &registry
        .resolve(&GraphRef::Fingerprint(key.graph))
        .expect("resolved during the drain's cache pass")
        .graph;

    // Distinct seeds in first-seen order become the batch lanes
    // (seed-independent properties collapse to a single lane).
    let mut seeds: Vec<u64> = Vec::new();
    for (_, r) in &group {
        let lane = if property.seed_dependent() { r.seed } else { 0 };
        if !seeds.contains(&lane) {
            seeds.push(lane);
        }
    }

    *engine_passes += 1;
    let started = Instant::now();
    let by_seed: Result<Vec<(u64, Outcome)>, CoreError> = match property {
        Property::Planarity => PlanarityTester::new(cfg.clone())
            .with_backend(backend)
            .run_many(graph, &seeds)
            .map(|outs| {
                seeds
                    .iter()
                    .copied()
                    .zip(outs.into_iter().map(Outcome::Planarity))
                    .collect()
            }),
        Property::CycleFreeness | Property::Bipartiteness => {
            run_hereditary(graph, &cfg, property, backend)
                .map(|(outcome, stats)| vec![(0, Outcome::Hereditary { outcome, stats })])
        }
    };
    let engine_micros = started.elapsed().as_micros() as u64;

    let by_seed = match by_seed {
        Ok(v) => v,
        Err(e) => {
            for (slot, r) in group {
                results[slot] = Some((r.id, Err(ServiceError::Engine(e.clone()))));
            }
            return;
        }
    };

    let coalesced = seeds.len();
    let total_rounds: u64 = by_seed
        .iter()
        .map(|(_, o)| o.stats().total_rounds())
        .sum::<u64>()
        .max(1);
    // The paper-faithful Demoucron mode is not one-sided (it can
    // reject planar graphs — the Claim 10 refutation), so its
    // rejects must not become seed-universal certificates.
    let certifiable = !matches!(cfg.embedding, EmbeddingMode::Demoucron);
    for (seed, outcome) in &by_seed {
        cache.insert(&key, *seed, outcome, certifiable);
    }
    let outcome_of = |seed: u64| -> &Outcome {
        by_seed
            .iter()
            .find(|(s, _)| *s == seed)
            .map(|(_, o)| o)
            .expect("every lane ran")
    };
    for (slot, r) in group {
        let lane = if property.seed_dependent() { r.seed } else { 0 };
        let outcome = outcome_of(lane).clone();
        let attributed =
            engine_micros.saturating_mul(outcome.stats().total_rounds()) / total_rounds;
        results[slot] = Some((
            r.id,
            Ok(QueryResponse {
                id: r.id,
                graph: key.graph,
                property,
                seed: lane,
                outcome,
                cache: CacheStatus::Cold,
                coalesced,
                engine_micros,
                attributed_micros: attributed,
            }),
        ));
    }
}

/// Runs a Corollary 16 tester on the requested backend, returning the
/// outcome plus the pass's statistics (accounted via
/// [`SimStats::delta_since`] so engine reuse cannot double-charge).
fn run_hereditary(
    graph: &Graph,
    cfg: &TesterConfig,
    property: Property,
    backend: Backend,
) -> Result<(HereditaryOutcome, SimStats), CoreError> {
    let sim = SimConfig::default().with_backend(backend);
    match backend {
        Backend::Serial => {
            let mut engine = Engine::new(graph, sim);
            run_hereditary_on(&mut engine, cfg, property)
        }
        Backend::Parallel { .. } | Backend::Auto => {
            let mut engine = ParallelEngine::new(graph, sim);
            run_hereditary_on(&mut engine, cfg, property)
        }
    }
}

fn run_hereditary_on<'g, E: EngineCore<'g>>(
    engine: &mut E,
    cfg: &TesterConfig,
    property: Property,
) -> Result<(HereditaryOutcome, SimStats), CoreError> {
    let baseline = *engine.stats();
    let outcome = match property {
        Property::CycleFreeness => test_cycle_freeness(engine, cfg)?,
        Property::Bipartiteness => test_bipartiteness(engine, cfg)?,
        Property::Planarity => unreachable!("planarity rides run_many"),
    };
    let stats = engine.stats().delta_since(&baseline);
    Ok((outcome, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::GraphRef;

    fn cfg(eps: f64) -> TesterConfig {
        TesterConfig::new(eps).with_phases(5)
    }

    fn service_with(name: &str, spec: &str) -> Service {
        let mut s = Service::new();
        s.registry_mut().ingest_spec(name, spec).unwrap();
        s
    }

    #[test]
    fn cold_then_warm_then_certificate() {
        let mut s = service_with("far", "k5_chain(6)");
        let q =
            |seed: u64| Query::planarity(GraphRef::Name("far".into()), cfg(0.05).with_seed(seed));
        let cold = s.query(q(1)).unwrap();
        assert_eq!(cold.cache, CacheStatus::Cold);
        assert!(!cold.outcome.accepted());
        assert_eq!(s.engine_passes(), 1);

        let warm = s.query(q(1)).unwrap();
        assert_eq!(warm.cache, CacheStatus::Warm);
        assert_eq!(s.engine_passes(), 1, "warm hit must not run the engine");
        assert_eq!(
            warm.outcome.rejecting_nodes(),
            cold.outcome.rejecting_nodes()
        );
        assert_eq!(warm.outcome.stats(), cold.outcome.stats());

        // Unseen seed on a known-rejected graph: certificate replay,
        // stamped with the certifying seed, no engine pass.
        let cert = s.query(q(2)).unwrap();
        assert_eq!(cert.cache, CacheStatus::Certificate);
        assert_eq!(cert.seed, 1);
        assert!(!cert.outcome.accepted());
        assert_eq!(s.engine_passes(), 1);
    }

    #[test]
    fn accepts_do_not_transfer_across_seeds() {
        let mut s = service_with("p", "tri_grid(5,5)");
        let q = |seed: u64| Query::planarity(GraphRef::Name("p".into()), cfg(0.2).with_seed(seed));
        assert!(s.query(q(1)).unwrap().outcome.accepted());
        assert_eq!(s.engine_passes(), 1);
        let other = s.query(q(2)).unwrap();
        assert_eq!(other.cache, CacheStatus::Cold, "fresh seed, fresh run");
        assert_eq!(s.engine_passes(), 2);
    }

    #[test]
    fn same_graph_queries_coalesce_into_one_pass() {
        let mut s = service_with("p", "tri_grid(5,5)");
        let ids: Vec<QueryId> = (0..4)
            .map(|seed| {
                s.submit(Query::planarity(
                    GraphRef::Name("p".into()),
                    cfg(0.2).with_seed(seed),
                ))
            })
            .collect();
        assert_eq!(s.pending(), 4);
        let drained = s.drain();
        assert_eq!(s.engine_passes(), 1, "four seeds, one engine pass");
        assert_eq!(drained.len(), 4);
        for ((id, result), want) in drained.iter().zip(&ids) {
            assert_eq!(id, want, "submission order preserved");
            let r = result.as_ref().unwrap();
            assert_eq!(r.coalesced, 4);
            assert!(r.attributed_micros <= r.engine_micros);
        }
        // Attribution splits the pass: shares sum to ~the pass wall.
        let total: u64 = drained
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().attributed_micros)
            .sum();
        let pass = drained[0].1.as_ref().unwrap().engine_micros;
        assert!(total <= pass + 4);
    }

    #[test]
    fn coalesced_outcomes_match_solo_runs_bit_for_bit() {
        let mut s = service_with("p", "tri_grid(5,5)");
        for seed in 0..3 {
            s.submit(Query::planarity(
                GraphRef::Name("p".into()),
                cfg(0.2).with_seed(seed),
            ));
        }
        let drained = s.drain();
        let graph = planartest_graph::generators::spec::parse("tri_grid(5,5)")
            .unwrap()
            .graph;
        for (seed, (_, result)) in (0..3u64).zip(&drained) {
            let solo = PlanarityTester::new(cfg(0.2).with_seed(seed))
                .run(&graph)
                .unwrap();
            match &result.as_ref().unwrap().outcome {
                Outcome::Planarity(o) => {
                    assert_eq!(o.rejections, solo.rejections, "seed {seed}");
                    assert_eq!(o.stats, solo.stats, "seed {seed}");
                    assert_eq!(o.violation_witnesses, solo.violation_witnesses);
                }
                other => panic!("wrong outcome shape {other:?}"),
            }
        }
    }

    #[test]
    fn hereditary_properties_are_seed_free_and_cached() {
        let mut s = service_with("g", "grid(5,5)");
        let q = |seed: u64, p: Property| {
            Query::planarity(GraphRef::Name("g".into()), cfg(0.2).with_seed(seed)).with_property(p)
        };
        let a = s.query(q(1, Property::Bipartiteness)).unwrap();
        assert!(a.outcome.accepted(), "grids are bipartite");
        assert_eq!(s.engine_passes(), 1);
        // Different seed, same property: warm (verdict is seed-free).
        let b = s.query(q(2, Property::Bipartiteness)).unwrap();
        assert_eq!(b.cache, CacheStatus::Warm);
        assert_eq!(s.engine_passes(), 1);
        // Different property: its own pass.
        let c = s.query(q(1, Property::CycleFreeness)).unwrap();
        assert!(!c.outcome.accepted(), "grids have cycles");
        assert_eq!(s.engine_passes(), 2);
    }

    #[test]
    fn paper_mode_rejects_never_become_certificates() {
        // Demoucron (paper) mode is not one-sided — the Claim 10
        // refutation shows it can reject planar graphs — so a reject
        // under one seed proves nothing about other seeds and must not
        // be replayed for them.
        let mut s = service_with("k33", "complete_bipartite(3,3)");
        let q = |seed: u64| {
            Query::planarity(
                GraphRef::Name("k33".into()),
                cfg(0.1)
                    .with_seed(seed)
                    .with_embedding(planartest_core::EmbeddingMode::Demoucron),
            )
        };
        let first = s.query(q(1)).unwrap();
        assert!(!first.outcome.accepted());
        // Fresh seed: its own engine pass, not a certificate replay.
        let second = s.query(q(2)).unwrap();
        assert_eq!(second.cache, CacheStatus::Cold);
        assert_eq!(s.engine_passes(), 2);
        // Exact-seed replay still works (it is an observation, and the
        // observation is deterministic per seed).
        assert_eq!(s.query(q(1)).unwrap().cache, CacheStatus::Warm);
        assert_eq!(s.engine_passes(), 2);
    }

    #[test]
    fn query_preserves_previously_submitted_queue() {
        let mut s = service_with("p", "tri_grid(4,4)");
        let pending_id = s.submit(Query::planarity(
            GraphRef::Name("p".into()),
            cfg(0.2).with_seed(11),
        ));
        // A one-shot in between must serve only itself...
        let one_shot = s
            .query(Query::planarity(
                GraphRef::Name("p".into()),
                cfg(0.2).with_seed(22),
            ))
            .unwrap();
        assert_eq!(one_shot.coalesced, 1);
        // ...and the earlier submission is still pending and drainable.
        assert_eq!(s.pending(), 1);
        let drained = s.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, pending_id);
        assert!(drained[0].1.is_ok());
    }

    #[test]
    fn unknown_graph_fails_only_that_query() {
        let mut s = service_with("p", "tri_grid(4,4)");
        s.submit(Query::planarity(GraphRef::Name("missing".into()), cfg(0.2)));
        s.submit(Query::planarity(GraphRef::Name("p".into()), cfg(0.2)));
        let drained = s.drain();
        assert!(matches!(
            drained[0].1,
            Err(ServiceError::UnknownGraph { .. })
        ));
        assert!(drained[1].1.is_ok());
        let stats = s.stats();
        assert_eq!(stats.queries_served, 2);
        assert_eq!(stats.graphs, 1);
        assert_eq!(stats.engine_passes, 1);
    }

    #[test]
    fn queries_by_fingerprint_resolve() {
        let mut s = Service::new();
        let fp = s
            .registry_mut()
            .ingest_spec("p", "tri_grid(4,4)")
            .unwrap()
            .fingerprint;
        let r = s
            .query(Query::planarity(GraphRef::Fingerprint(fp), cfg(0.2)))
            .unwrap();
        assert_eq!(r.graph, fp);
    }
}
