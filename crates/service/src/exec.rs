//! The execution layer: run coalesced groups, possibly in parallel.
//!
//! A *group* is the scheduler's unit of engine work — every pending
//! query that shares a `(graph, config, property)` cache key rides one
//! instance-multiplexed engine pass. Groups are mutually independent
//! (distinct keys, disjoint outputs) and [`execute_groups`] fans them
//! across a [`TrialRunner`] pool: group execution is **pure** — it
//! reads the resident CSR through an immutable registry borrow and
//! returns a [`GroupPass`] — so the only ordered state (cache inserts,
//! the engine-pass counter, response slots) is applied afterwards by
//! the scheduler, sequentially, in group order. That split is what
//! makes parallel group drains bit-for-bit equal to sequential ones
//! (proven by `tests/drain_proptests.rs`) no matter how the pool
//! schedules the work — and what lets the pipelined server run this
//! stage on a scoped thread while the drain thread resolves the *next*
//! cycle's arrivals against the cache: [`execute_groups`] only ever
//! holds shared borrows of the registry and runner.

use planartest_core::applications::{test_bipartiteness, test_cycle_freeness, HereditaryOutcome};
use planartest_core::{CoreError, PlanarityTester, TesterConfig};
use planartest_graph::Graph;
use planartest_sim::{
    Backend, Engine, EngineCore, ParallelEngine, SimConfig, SimStats, TrialRunner,
};

use crate::cache::CacheKey;
use crate::query::{GraphRef, Outcome, Property};
use crate::registry::GraphRegistry;
use crate::scheduler::Resolved;
use crate::telemetry::Clock;

/// One coalesced group: the shared key and pass parameters, the batch
/// lanes (distinct seeds, first-seen order), and the member queries
/// with their response-slot indices.
#[derive(Debug)]
pub(crate) struct Group {
    /// The shared cache key (graph fingerprint × config × property).
    pub key: CacheKey,
    /// The first member's full config (fingerprint-equal for all).
    pub cfg: TesterConfig,
    /// The first member's backend (a wall-clock choice only — outcomes
    /// are backend-invariant).
    pub backend: Backend,
    /// Distinct seed lanes in first-seen order (seed-independent
    /// properties collapse onto lane 0).
    pub seeds: Vec<u64>,
    /// `(response slot, resolved query)` pairs, submission order.
    pub members: Vec<(usize, Resolved)>,
}

impl Group {
    /// The seed lane a member occupies.
    pub(crate) fn lane(&self, member: &Resolved) -> u64 {
        if self.key.property.seed_dependent() {
            member.seed
        } else {
            0
        }
    }
}

/// The result of one group's engine pass, before any state is applied.
#[derive(Debug)]
pub(crate) struct GroupPass {
    /// Per-lane outcomes, or the pass-wide engine failure.
    pub by_seed: Result<Vec<(u64, Outcome)>, CoreError>,
    /// Wall-clock of the pass (split per member by the scheduler).
    pub engine_micros: u64,
}

/// Runs every group, fanning independent groups across the runner's
/// worker pool (`sim::runtime::trials` machinery; 1 thread = today's
/// sequential drain). Results come back in group order regardless of
/// scheduling.
pub(crate) fn execute_groups(
    registry: &GraphRegistry,
    groups: &[Group],
    runner: &TrialRunner,
    clock: &Clock,
) -> Vec<GroupPass> {
    runner.map_ref(groups, |group| run_group_pass(registry, group, clock))
}

/// Executes one group through a single engine pass. Pure with respect
/// to the service: reads the resident CSR, touches no cache or
/// counter state. Pass wall time is stamped on the injected service
/// clock, so engine timings are deterministic under a mock clock.
fn run_group_pass(registry: &GraphRegistry, group: &Group, clock: &Clock) -> GroupPass {
    // Resolution already succeeded during the scheduler's resolve
    // stage (that is where `key.graph` came from) and the registry is
    // immutable for the whole cycle, so the lookup cannot fail here.
    let graph = &registry
        .resolve(&GraphRef::Fingerprint(group.key.graph))
        .expect("resolved during the cycle's resolve stage")
        .graph;

    let started = clock.now_micros();
    let by_seed: Result<Vec<(u64, Outcome)>, CoreError> = match group.key.property {
        Property::Planarity => PlanarityTester::new(group.cfg.clone())
            .with_backend(group.backend)
            .run_many(graph, &group.seeds)
            .map(|outs| {
                group
                    .seeds
                    .iter()
                    .copied()
                    .zip(outs.into_iter().map(Outcome::Planarity))
                    .collect()
            }),
        Property::CycleFreeness | Property::Bipartiteness => {
            run_hereditary(graph, &group.cfg, group.key.property, group.backend)
                .map(|(outcome, stats)| vec![(0, Outcome::Hereditary { outcome, stats })])
        }
    };
    GroupPass {
        by_seed,
        engine_micros: clock.now_micros().saturating_sub(started),
    }
}

/// Runs a Corollary 16 tester on the requested backend, returning the
/// outcome plus the pass's statistics (accounted via
/// [`SimStats::delta_since`] so engine reuse cannot double-charge).
fn run_hereditary(
    graph: &Graph,
    cfg: &TesterConfig,
    property: Property,
    backend: Backend,
) -> Result<(HereditaryOutcome, SimStats), CoreError> {
    let sim = SimConfig::default().with_backend(backend);
    match backend {
        Backend::Serial => {
            let mut engine = Engine::new(graph, sim);
            run_hereditary_on(&mut engine, cfg, property)
        }
        Backend::Parallel { .. } | Backend::Auto => {
            let mut engine = ParallelEngine::new(graph, sim);
            run_hereditary_on(&mut engine, cfg, property)
        }
    }
}

fn run_hereditary_on<'g, E: EngineCore<'g>>(
    engine: &mut E,
    cfg: &TesterConfig,
    property: Property,
) -> Result<(HereditaryOutcome, SimStats), CoreError> {
    let baseline = *engine.stats();
    let outcome = match property {
        Property::CycleFreeness => test_cycle_freeness(engine, cfg)?,
        Property::Bipartiteness => test_bipartiteness(engine, cfg)?,
        Property::Planarity => unreachable!("planarity rides run_many"),
    };
    let stats = engine.stats().delta_since(&baseline);
    Ok((outcome, stats))
}
