//! The graph registry: ingest once, keep the built CSR resident —
//! or *mapped*, when a state directory makes graphs durable.
//!
//! Every caller used to pay full graph construction per query; the
//! registry makes ingestion a one-time cost. Graphs arrive as edge-list
//! documents ([`planartest_graph::io`]) or generator specs
//! ([`planartest_graph::generators::spec`]), are fingerprinted by
//! content, and stay resident in CSR form. Ingesting the same content
//! twice — under any name, via either route — lands on the same entry:
//! names are aliases, the fingerprint is the identity.
//!
//! # Tiering
//!
//! With a state directory ([`GraphRegistry::set_state_dir`]) every
//! graph lives in one of two tiers behind the *same* [`Graph`] API, so
//! the engine, batch lanes and testers run unchanged over either:
//!
//! * **Resident** — the hot `Vec`-backed CSR, built in RAM.
//! * **Mapped** — a zero-copy `mmap` view of the relocatable on-disk
//!   CSR spill at `<state>/csr/<fingerprint>.csr`
//!   ([`planartest_graph::disk`]).
//!
//! Ingests write through: the CSR is spilled once per content and the
//! binding appended to `<state>/manifest.ldjson`, so a restart
//! re-maps every graph by name or fingerprint without re-building
//! anything. When the resident tier exceeds
//! [`GraphRegistry::resident_capacity`], the least-recently-resolved
//! resident entry is **demoted**: its heap CSR is dropped and the
//! entry re-pointed at the mmap view — `n ≫ 10^6` graphs stay
//! queryable far past RAM. The streaming ingest routes
//! ([`ingest_spec_to_disk`](GraphRegistry::ingest_spec_to_disk),
//! [`ingest_edge_list_to_disk`](GraphRegistry::ingest_edge_list_to_disk))
//! never materialize the heap CSR at all: edges stream through the
//! two-pass counting-sort builder straight onto disk and the entry is
//! born mapped.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use planartest_graph::disk;
use planartest_graph::fingerprint::Fingerprint;
use planartest_graph::generators::{spec, PlanarityStatus};
use planartest_graph::{io, Graph};

use crate::error::ServiceError;
use crate::persist::PersistError;
use crate::query::GraphRef;
use crate::wire::Value;

/// Default resident-tier cap: plenty for interactive workloads while
/// bounding heap CSR bytes on a server mapping thousands of graphs.
pub const DEFAULT_RESIDENT_CAPACITY: usize = 64;

/// One registered graph: the CSR (resident or mapped) plus ingest
/// metadata.
#[derive(Debug, Clone)]
pub struct GraphEntry {
    /// The graph, in CSR form, built once at ingest. May be backed by
    /// a heap `Vec` (resident) or an mmap view (mapped) — see
    /// [`Graph::is_mapped`].
    pub graph: Graph,
    /// Content fingerprint (the registry key).
    pub fingerprint: Fingerprint,
    /// Aliases this entry was ingested under, in first-seen order.
    pub names: Vec<String>,
    /// Human-readable provenance (`edge_list` or the generator spec).
    pub source: String,
    /// What the generator certified, when the graph came from a spec
    /// (`None` for raw edge lists — nothing is known by construction).
    pub certified: Option<PlanarityStatus>,
}

/// The graph registry (see the [module docs](self)).
#[derive(Debug)]
pub struct GraphRegistry {
    entries: Vec<GraphEntry>,
    by_fingerprint: HashMap<Fingerprint, usize>,
    by_name: HashMap<String, usize>,
    /// The durable state directory (CSR spills + manifest), when set.
    state_dir: Option<PathBuf>,
    /// Per-entry recency stamps, parallel to `entries`. Atomic so the
    /// read-side [`resolve`](Self::resolve) (`&self`) can touch them.
    recency: Vec<AtomicU64>,
    /// Monotone logical clock driving the demotion LRU order.
    clock: AtomicU64,
    resident_capacity: usize,
}

impl Default for GraphRegistry {
    fn default() -> Self {
        GraphRegistry {
            entries: Vec::new(),
            by_fingerprint: HashMap::new(),
            by_name: HashMap::new(),
            state_dir: None,
            recency: Vec::new(),
            clock: AtomicU64::new(0),
            resident_capacity: DEFAULT_RESIDENT_CAPACITY,
        }
    }
}

fn persist_io(context: &str, e: std::io::Error) -> ServiceError {
    ServiceError::Persist(PersistError::Io(format!("{context}: {e}")))
}

fn csr_path(dir: &Path, fingerprint: Fingerprint) -> PathBuf {
    dir.join("csr").join(format!("{fingerprint}.csr"))
}

fn certified_to_value(certified: Option<PlanarityStatus>) -> Value {
    match certified {
        None => Value::Null,
        Some(PlanarityStatus::Planar) => Value::Str("planar".into()),
        Some(PlanarityStatus::Unknown) => Value::Str("unknown".into()),
        Some(PlanarityStatus::FarFromPlanar { min_removals }) => {
            Value::obj().field("min_removals", min_removals)
        }
    }
}

fn certified_from_value(v: &Value) -> Option<PlanarityStatus> {
    match v {
        Value::Str(s) if s == "planar" => Some(PlanarityStatus::Planar),
        Value::Str(s) if s == "unknown" => Some(PlanarityStatus::Unknown),
        Value::Obj(_) => {
            let min_removals = usize::try_from(v.get("min_removals")?.as_u64()?).ok()?;
            Some(PlanarityStatus::FarFromPlanar { min_removals })
        }
        _ => None,
    }
}

impl GraphRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        GraphRegistry::default()
    }

    /// Number of distinct registered graphs (both tiers).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no graph is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the registered entries in ingest order.
    pub fn entries(&self) -> impl Iterator<Item = &GraphEntry> {
        self.entries.iter()
    }

    /// Graphs currently in the hot `Vec`-backed tier.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.entries.iter().filter(|e| !e.graph.is_mapped()).count()
    }

    /// Graphs currently served from the mmap-backed spill tier.
    #[must_use]
    pub fn mapped(&self) -> usize {
        self.entries.iter().filter(|e| e.graph.is_mapped()).count()
    }

    /// The durable state directory, if one is attached.
    #[must_use]
    pub fn state_dir(&self) -> Option<&Path> {
        self.state_dir.as_deref()
    }

    /// The resident-tier cap the demotion policy enforces.
    #[must_use]
    pub fn resident_capacity(&self) -> usize {
        self.resident_capacity
    }

    /// Replaces the resident-tier cap, demoting immediately if the
    /// resident tier already exceeds it (no-op without a state dir —
    /// there is nowhere to demote to).
    pub fn set_resident_capacity(&mut self, capacity: usize) {
        self.resident_capacity = capacity.max(1);
        self.demote_over_capacity();
    }

    /// Attaches the durable state directory: creates its layout,
    /// re-maps every graph recorded in `manifest.ldjson` (zero-copy,
    /// no rebuild), and write-through-spills any graph already
    /// resident. Returns how many graphs were restored from disk.
    /// Malformed manifest lines and missing/corrupt spill files are
    /// skipped, never fatal — a half-written manifest line is the
    /// crash-tolerance twin of the certificate log's torn tail.
    ///
    /// # Errors
    ///
    /// I/O failures creating the directory layout or spilling the
    /// already-resident entries.
    pub fn set_state_dir(&mut self, dir: &Path) -> Result<usize, ServiceError> {
        std::fs::create_dir_all(dir.join("csr")).map_err(|e| persist_io("create state dir", e))?;
        let mut restored = 0usize;
        let manifest = dir.join("manifest.ldjson");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let Ok(v) = Value::parse(line) else { continue };
                let Some(fp) = v
                    .get("fingerprint")
                    .and_then(Value::as_str)
                    .and_then(|s| s.parse::<Fingerprint>().ok())
                else {
                    continue;
                };
                let Some(name) = v.get("name").and_then(Value::as_str) else {
                    continue;
                };
                let index = match self.by_fingerprint.get(&fp) {
                    Some(&i) => i,
                    None => {
                        let Ok(graph) = disk::load_mapped(&csr_path(dir, fp)) else {
                            continue; // spill missing or corrupt: skip
                        };
                        let source = v
                            .get("source")
                            .and_then(Value::as_str)
                            .unwrap_or("unknown")
                            .to_string();
                        let certified = v.get("certified").and_then(certified_from_value);
                        self.push_entry(GraphEntry {
                            graph,
                            fingerprint: fp,
                            names: Vec::new(),
                            source,
                            certified,
                        });
                        restored += 1;
                        self.entries.len() - 1
                    }
                };
                // Bind the alias unless a live entry with different
                // content already owns the name.
                if self.by_name.get(name).is_none_or(|&i| i == index) {
                    let entry = &mut self.entries[index];
                    if !entry.names.iter().any(|n| n == name) {
                        entry.names.push(name.to_string());
                        self.by_name.insert(name.to_string(), index);
                    }
                }
            }
        }
        self.state_dir = Some(dir.to_path_buf());
        // Write-through for anything ingested before the dir attached.
        for i in 0..self.entries.len() {
            if !self.entries[i].graph.is_mapped() {
                self.spill(i)?;
            }
        }
        self.demote_over_capacity();
        Ok(restored)
    }

    fn push_entry(&mut self, entry: GraphEntry) {
        self.by_fingerprint
            .insert(entry.fingerprint, self.entries.len());
        self.entries.push(entry);
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.recency.push(AtomicU64::new(tick));
    }

    /// Writes entry `i`'s CSR spill (if absent) and appends its bindings
    /// to the manifest.
    fn spill(&mut self, index: usize) -> Result<(), ServiceError> {
        let Some(dir) = self.state_dir.clone() else {
            return Ok(());
        };
        let entry = &self.entries[index];
        let path = csr_path(&dir, entry.fingerprint);
        if !path.exists() {
            disk::save(&entry.graph, &path).map_err(|e| ServiceError::Persist(e.into()))?;
        }
        for name in entry.names.clone() {
            self.append_manifest(&dir, index, &name)?;
        }
        Ok(())
    }

    fn append_manifest(&self, dir: &Path, index: usize, name: &str) -> Result<(), ServiceError> {
        use std::io::Write;
        let entry = &self.entries[index];
        let mut line = Value::obj()
            .field("fingerprint", entry.fingerprint.to_string())
            .field("name", name)
            .field("source", entry.source.as_str())
            .field("certified", certified_to_value(entry.certified))
            .to_string();
        line.push('\n');
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("manifest.ldjson"))
            .map_err(|e| persist_io("open manifest", e))?;
        file.write_all(line.as_bytes())
            .map_err(|e| persist_io("append manifest", e))?;
        Ok(())
    }

    /// Demotes least-recently-resolved resident entries to the mapped
    /// tier until the resident count fits the cap. Requires a state
    /// dir (the spill is the demotion target).
    fn demote_over_capacity(&mut self) {
        let Some(dir) = self.state_dir.clone() else {
            return;
        };
        loop {
            let mut resident: Vec<(usize, u64)> = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.graph.is_mapped())
                .map(|(i, _)| (i, self.recency[i].load(Ordering::Relaxed)))
                .collect();
            if resident.len() <= self.resident_capacity {
                return;
            }
            resident.sort_by_key(|&(_, tick)| tick);
            let (victim, _) = resident[0];
            let path = csr_path(&dir, self.entries[victim].fingerprint);
            match disk::load_mapped(&path) {
                Ok(mapped) => self.entries[victim].graph = mapped,
                // Spill unexpectedly missing: keep the entry resident
                // rather than losing it.
                Err(_) => return,
            }
        }
    }

    /// Ingests an already-built graph under `name`.
    ///
    /// If a graph with the same fingerprint is already registered, the
    /// name is attached as an alias and the existing entry is returned —
    /// the build cost is paid at most once per content. With a state
    /// dir, new content is write-through-spilled to disk and every new
    /// binding appended to the manifest before the entry is visible.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NameTaken`] if `name` is already bound to a graph
    /// with *different* content (silently rebinding an alias would make
    /// subsequent queries answer about a different graph than the client
    /// believes); [`ServiceError::Persist`] if the write-through spill
    /// fails.
    pub fn ingest_graph(
        &mut self,
        name: &str,
        graph: Graph,
        source: String,
        certified: Option<PlanarityStatus>,
    ) -> Result<&GraphEntry, ServiceError> {
        let fingerprint = graph.fingerprint();
        if let Some(&existing) = self.by_name.get(name) {
            if self.entries[existing].fingerprint != fingerprint {
                return Err(ServiceError::NameTaken {
                    name: name.to_string(),
                });
            }
        }
        // Spill new content before registering: a persistence failure
        // leaves the registry unchanged.
        let is_new = !self.by_fingerprint.contains_key(&fingerprint);
        if is_new {
            if let Some(dir) = self.state_dir.clone() {
                let path = csr_path(&dir, fingerprint);
                if !path.exists() {
                    disk::save(&graph, &path).map_err(|e| ServiceError::Persist(e.into()))?;
                }
            }
        }
        let index = match self.by_fingerprint.get(&fingerprint) {
            Some(&i) => i,
            None => {
                self.push_entry(GraphEntry {
                    graph,
                    fingerprint,
                    names: Vec::new(),
                    source,
                    certified,
                });
                self.entries.len() - 1
            }
        };
        let entry = &mut self.entries[index];
        let new_alias = !entry.names.iter().any(|n| n == name);
        if new_alias {
            entry.names.push(name.to_string());
            self.by_name.insert(name.to_string(), index);
        }
        if new_alias {
            if let Some(dir) = self.state_dir.clone() {
                self.append_manifest(&dir, index, name)?;
            }
        }
        self.touch(index);
        self.demote_over_capacity();
        Ok(&self.entries[index])
    }

    /// Ingests an edge-list document (see [`io::from_edge_list`]).
    ///
    /// # Errors
    ///
    /// Propagates parse failures and name conflicts.
    pub fn ingest_edge_list(
        &mut self,
        name: &str,
        text: &str,
    ) -> Result<&GraphEntry, ServiceError> {
        let graph = io::from_edge_list(text).map_err(ServiceError::EdgeList)?;
        self.ingest_graph(name, graph, "edge_list".to_string(), None)
    }

    /// Ingests a generator spec (see [`spec::parse`]), keeping the
    /// generator's certification alongside the graph.
    ///
    /// # Errors
    ///
    /// Propagates spec failures and name conflicts.
    pub fn ingest_spec(&mut self, name: &str, text: &str) -> Result<&GraphEntry, ServiceError> {
        let certified = spec::parse(text).map_err(ServiceError::Spec)?;
        self.ingest_graph(
            name,
            certified.graph,
            text.trim().to_string(),
            Some(certified.status),
        )
    }

    /// Ingests a generator spec **out-of-core**: closed-form families
    /// stream their edges through the two-pass counting-sort builder
    /// straight to the CSR spill — the full edge vector and the heap
    /// CSR are never materialized — and the entry is registered mapped.
    /// Randomized families (which must materialize to be generated at
    /// all) fall back to [`ingest_spec`](Self::ingest_spec) and are
    /// write-through-spilled like any resident ingest.
    ///
    /// # Errors
    ///
    /// Requires a state dir ([`PersistError::NoStateDir`]); propagates
    /// spec/stream/name failures.
    pub fn ingest_spec_to_disk(
        &mut self,
        name: &str,
        text: &str,
    ) -> Result<&GraphEntry, ServiceError> {
        let Some(dir) = self.state_dir.clone() else {
            return Err(ServiceError::Persist(PersistError::NoStateDir));
        };
        let Some(mut streamable) = spec::streamable(text).map_err(ServiceError::Spec)? else {
            return self.ingest_spec(name, text);
        };
        let tmp = dir.join("csr").join("ingest.tmp.csr");
        let stats = disk::stream_to_disk(&mut streamable, &tmp)
            .map_err(|e| ServiceError::Persist(e.into()))?;
        self.register_streamed(
            name,
            &dir,
            &tmp,
            stats.fingerprint,
            text.trim().to_string(),
            Some(streamable.status()),
        )
    }

    /// Ingests an edge-list document out-of-core (see
    /// [`ingest_spec_to_disk`](Self::ingest_spec_to_disk)): the text is
    /// staged to disk and streamed through the counting-sort builder,
    /// so only O(n) counters — never the edge vector — live in RAM.
    ///
    /// # Errors
    ///
    /// Requires a state dir; propagates parse/stream/name failures.
    pub fn ingest_edge_list_to_disk(
        &mut self,
        name: &str,
        text: &str,
    ) -> Result<&GraphEntry, ServiceError> {
        let Some(dir) = self.state_dir.clone() else {
            return Err(ServiceError::Persist(PersistError::NoStateDir));
        };
        let staged = dir.join("ingest.tmp.edges");
        std::fs::write(&staged, text).map_err(|e| persist_io("stage edge list", e))?;
        let result = (|| {
            let mut source =
                disk::EdgeListSource::open(&staged).map_err(|e| ServiceError::Persist(e.into()))?;
            let tmp = dir.join("csr").join("ingest.tmp.csr");
            let stats = disk::stream_to_disk(&mut source, &tmp)
                .map_err(|e| ServiceError::Persist(e.into()))?;
            Ok::<_, ServiceError>((tmp, stats))
        })();
        let _ = std::fs::remove_file(&staged);
        let (tmp, stats) = result?;
        self.register_streamed(
            name,
            &dir,
            &tmp,
            stats.fingerprint,
            "edge_list".to_string(),
            None,
        )
    }

    /// Moves a freshly streamed spill into place and registers it as a
    /// mapped entry.
    fn register_streamed(
        &mut self,
        name: &str,
        dir: &Path,
        tmp: &Path,
        fingerprint: Fingerprint,
        source: String,
        certified: Option<PlanarityStatus>,
    ) -> Result<&GraphEntry, ServiceError> {
        let path = csr_path(dir, fingerprint);
        if path.exists() {
            let _ = std::fs::remove_file(tmp);
        } else {
            std::fs::rename(tmp, &path).map_err(|e| persist_io("place csr spill", e))?;
        }
        let graph = disk::load_mapped(&path).map_err(|e| ServiceError::Persist(e.into()))?;
        self.ingest_graph(name, graph, source, certified)
    }

    fn touch(&self, index: usize) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.recency[index].store(tick, Ordering::Relaxed);
    }

    /// Resolves a query's graph reference to a registered entry,
    /// stamping its recency (the demotion policy's LRU signal).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownGraph`] when nothing matches.
    pub fn resolve(&self, graph: &GraphRef) -> Result<&GraphEntry, ServiceError> {
        let index = match graph {
            GraphRef::Name(name) => self.by_name.get(name.as_str()),
            GraphRef::Fingerprint(fp) => self.by_fingerprint.get(fp),
        };
        index
            .map(|&i| {
                self.touch(i);
                &self.entries[i]
            })
            .ok_or_else(|| ServiceError::UnknownGraph {
                graph: graph.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_state(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pt_reg_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spec_and_edge_list_routes_collide_on_content() {
        let mut reg = GraphRegistry::new();
        let fp1 = reg.ingest_spec("a", "grid(3,3)").unwrap().fingerprint;
        let text = io::to_edge_list(&spec::parse("grid(3,3)").unwrap().graph);
        let fp2 = reg.ingest_edge_list("b", &text).unwrap().fingerprint;
        assert_eq!(fp1, fp2);
        assert_eq!(reg.len(), 1, "one resident CSR serves both aliases");
        let entry = reg.resolve(&GraphRef::Name("b".into())).unwrap();
        assert_eq!(entry.names, vec!["a".to_string(), "b".to_string()]);
        // Certification survives from the spec route.
        assert_eq!(entry.certified, Some(PlanarityStatus::Planar));
        assert_eq!(
            reg.resolve(&GraphRef::Fingerprint(fp1))
                .unwrap()
                .fingerprint,
            fp1
        );
    }

    #[test]
    fn rebinding_a_name_to_other_content_errors() {
        let mut reg = GraphRegistry::new();
        reg.ingest_spec("g", "grid(3,3)").unwrap();
        // Same name, same content: fine (idempotent re-ingest).
        reg.ingest_spec("g", "grid(3,3)").unwrap();
        let err = reg.ingest_spec("g", "grid(4,4)").unwrap_err();
        assert!(matches!(err, ServiceError::NameTaken { .. }));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn unknown_graphs_and_bad_input_error() {
        let mut reg = GraphRegistry::new();
        assert!(matches!(
            reg.resolve(&GraphRef::Name("missing".into())),
            Err(ServiceError::UnknownGraph { .. })
        ));
        assert!(matches!(
            reg.ingest_edge_list("x", "not a graph"),
            Err(ServiceError::EdgeList(_))
        ));
        assert!(matches!(
            reg.ingest_spec("x", "nope(1)"),
            Err(ServiceError::Spec(_))
        ));
        assert!(reg.is_empty());
    }

    #[test]
    fn state_dir_spills_and_restores_bindings() {
        let dir = temp_state("restore");
        let fp;
        {
            let mut reg = GraphRegistry::new();
            reg.set_state_dir(&dir).unwrap();
            fp = reg
                .ingest_spec("city", "tri_grid(5,5)")
                .unwrap()
                .fingerprint;
            reg.ingest_spec("alias", "tri_grid(5,5)").unwrap();
            reg.ingest_edge_list("raw", "2 1\n0 1\n").unwrap();
            assert!(csr_path(&dir, fp).exists(), "write-through spill");
        }
        // Cold restart: a fresh registry restores both graphs mapped.
        let mut reg = GraphRegistry::new();
        let restored = reg.set_state_dir(&dir).unwrap();
        assert_eq!(restored, 2);
        assert_eq!(reg.mapped(), 2);
        assert_eq!(reg.resident(), 0);
        let entry = reg.resolve(&GraphRef::Name("alias".into())).unwrap();
        assert_eq!(entry.fingerprint, fp);
        assert!(entry.graph.is_mapped());
        assert_eq!(entry.names, vec!["city".to_string(), "alias".to_string()]);
        assert_eq!(entry.certified, Some(PlanarityStatus::Planar));
        assert_eq!(entry.source, "tri_grid(5,5)");
        assert!(reg.resolve(&GraphRef::Name("raw".into())).is_ok());
        assert!(reg.resolve(&GraphRef::Fingerprint(fp)).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_demotion_keeps_recently_resolved_graphs_resident() {
        let dir = temp_state("demote");
        let mut reg = GraphRegistry::new();
        reg.set_state_dir(&dir).unwrap();
        reg.set_resident_capacity(2);
        reg.ingest_spec("a", "grid(3,3)").unwrap();
        reg.ingest_spec("b", "grid(4,4)").unwrap();
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        reg.resolve(&GraphRef::Name("a".into())).unwrap();
        reg.ingest_spec("c", "grid(5,5)").unwrap();
        assert_eq!(reg.resident(), 2);
        assert_eq!(reg.mapped(), 1);
        let b = reg.resolve(&GraphRef::Name("b".into())).unwrap();
        assert!(b.graph.is_mapped(), "LRU entry demoted to the mmap tier");
        let a = reg.resolve(&GraphRef::Name("a".into())).unwrap();
        assert!(!a.graph.is_mapped(), "recently used entry stays resident");
        // Demoted entries answer the same queries: content is identical.
        let resident = spec::parse("grid(4,4)").unwrap().graph;
        let b = reg.resolve(&GraphRef::Name("b".into())).unwrap();
        assert_eq!(b.graph, resident);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_ingest_is_born_mapped_and_matches_materialized() {
        let dir = temp_state("stream");
        let mut reg = GraphRegistry::new();
        reg.set_state_dir(&dir).unwrap();
        let entry = reg.ingest_spec_to_disk("g", "tri_grid(6,6)").unwrap();
        assert!(entry.graph.is_mapped(), "streamed ingest never resides");
        assert_eq!(entry.certified, Some(PlanarityStatus::Planar));
        let fp = entry.fingerprint;
        assert_eq!(
            fp,
            spec::parse("tri_grid(6,6)").unwrap().graph.fingerprint()
        );
        // Re-ingesting the same content via the resident route lands on
        // the same (mapped) entry.
        let again = reg.ingest_spec("g2", "tri_grid(6,6)").unwrap();
        assert_eq!(again.fingerprint, fp);
        assert_eq!(reg.len(), 1);
        // Edge-list route, and the no-state-dir error.
        let e = reg
            .ingest_edge_list_to_disk("el", "3 2\n0 1\n1 2\n")
            .unwrap();
        assert!(e.graph.is_mapped());
        let mut bare = GraphRegistry::new();
        assert!(matches!(
            bare.ingest_spec_to_disk("x", "grid(3,3)"),
            Err(ServiceError::Persist(PersistError::NoStateDir))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
