//! The graph registry: ingest once, keep the built CSR resident.
//!
//! Every caller used to pay full graph construction per query; the
//! registry makes ingestion a one-time cost. Graphs arrive as edge-list
//! documents ([`planartest_graph::io`]) or generator specs
//! ([`planartest_graph::generators::spec`]), are fingerprinted by
//! content, and stay resident in CSR form. Ingesting the same content
//! twice — under any name, via either route — lands on the same entry:
//! names are aliases, the fingerprint is the identity.

use std::collections::HashMap;

use planartest_graph::fingerprint::Fingerprint;
use planartest_graph::generators::{spec, PlanarityStatus};
use planartest_graph::{io, Graph};

use crate::error::ServiceError;
use crate::query::GraphRef;

/// One resident graph: the built CSR plus ingest metadata.
#[derive(Debug, Clone)]
pub struct GraphEntry {
    /// The graph, in CSR form, built once at ingest.
    pub graph: Graph,
    /// Content fingerprint (the registry key).
    pub fingerprint: Fingerprint,
    /// Aliases this entry was ingested under, in first-seen order.
    pub names: Vec<String>,
    /// Human-readable provenance (`edge_list` or the generator spec).
    pub source: String,
    /// What the generator certified, when the graph came from a spec
    /// (`None` for raw edge lists — nothing is known by construction).
    pub certified: Option<PlanarityStatus>,
}

/// The graph registry (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct GraphRegistry {
    entries: Vec<GraphEntry>,
    by_fingerprint: HashMap<Fingerprint, usize>,
    by_name: HashMap<String, usize>,
}

impl GraphRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        GraphRegistry::default()
    }

    /// Number of distinct resident graphs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no graph is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the resident entries in ingest order.
    pub fn entries(&self) -> impl Iterator<Item = &GraphEntry> {
        self.entries.iter()
    }

    /// Ingests an already-built graph under `name`.
    ///
    /// If a graph with the same fingerprint is already resident, the
    /// name is attached as an alias and the existing entry is returned —
    /// the build cost is paid at most once per content.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NameTaken`] if `name` is already bound to a graph
    /// with *different* content (silently rebinding an alias would make
    /// subsequent queries answer about a different graph than the client
    /// believes).
    pub fn ingest_graph(
        &mut self,
        name: &str,
        graph: Graph,
        source: String,
        certified: Option<PlanarityStatus>,
    ) -> Result<&GraphEntry, ServiceError> {
        let fingerprint = graph.fingerprint();
        if let Some(&existing) = self.by_name.get(name) {
            if self.entries[existing].fingerprint != fingerprint {
                return Err(ServiceError::NameTaken {
                    name: name.to_string(),
                });
            }
        }
        let index = match self.by_fingerprint.get(&fingerprint) {
            Some(&i) => i,
            None => {
                self.entries.push(GraphEntry {
                    graph,
                    fingerprint,
                    names: Vec::new(),
                    source,
                    certified,
                });
                let i = self.entries.len() - 1;
                self.by_fingerprint.insert(fingerprint, i);
                i
            }
        };
        let entry = &mut self.entries[index];
        if !entry.names.iter().any(|n| n == name) {
            entry.names.push(name.to_string());
            self.by_name.insert(name.to_string(), index);
        }
        Ok(&self.entries[index])
    }

    /// Ingests an edge-list document (see [`io::from_edge_list`]).
    ///
    /// # Errors
    ///
    /// Propagates parse failures and name conflicts.
    pub fn ingest_edge_list(
        &mut self,
        name: &str,
        text: &str,
    ) -> Result<&GraphEntry, ServiceError> {
        let graph = io::from_edge_list(text).map_err(ServiceError::EdgeList)?;
        self.ingest_graph(name, graph, "edge_list".to_string(), None)
    }

    /// Ingests a generator spec (see [`spec::parse`]), keeping the
    /// generator's certification alongside the graph.
    ///
    /// # Errors
    ///
    /// Propagates spec failures and name conflicts.
    pub fn ingest_spec(&mut self, name: &str, text: &str) -> Result<&GraphEntry, ServiceError> {
        let certified = spec::parse(text).map_err(ServiceError::Spec)?;
        self.ingest_graph(
            name,
            certified.graph,
            text.trim().to_string(),
            Some(certified.status),
        )
    }

    /// Resolves a query's graph reference to a resident entry.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownGraph`] when nothing matches.
    pub fn resolve(&self, graph: &GraphRef) -> Result<&GraphEntry, ServiceError> {
        let index = match graph {
            GraphRef::Name(name) => self.by_name.get(name.as_str()),
            GraphRef::Fingerprint(fp) => self.by_fingerprint.get(fp),
        };
        index
            .map(|&i| &self.entries[i])
            .ok_or_else(|| ServiceError::UnknownGraph {
                graph: graph.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_and_edge_list_routes_collide_on_content() {
        let mut reg = GraphRegistry::new();
        let fp1 = reg.ingest_spec("a", "grid(3,3)").unwrap().fingerprint;
        let text = io::to_edge_list(&spec::parse("grid(3,3)").unwrap().graph);
        let fp2 = reg.ingest_edge_list("b", &text).unwrap().fingerprint;
        assert_eq!(fp1, fp2);
        assert_eq!(reg.len(), 1, "one resident CSR serves both aliases");
        let entry = reg.resolve(&GraphRef::Name("b".into())).unwrap();
        assert_eq!(entry.names, vec!["a".to_string(), "b".to_string()]);
        // Certification survives from the spec route.
        assert_eq!(entry.certified, Some(PlanarityStatus::Planar));
        assert_eq!(
            reg.resolve(&GraphRef::Fingerprint(fp1))
                .unwrap()
                .fingerprint,
            fp1
        );
    }

    #[test]
    fn rebinding_a_name_to_other_content_errors() {
        let mut reg = GraphRegistry::new();
        reg.ingest_spec("g", "grid(3,3)").unwrap();
        // Same name, same content: fine (idempotent re-ingest).
        reg.ingest_spec("g", "grid(3,3)").unwrap();
        let err = reg.ingest_spec("g", "grid(4,4)").unwrap_err();
        assert!(matches!(err, ServiceError::NameTaken { .. }));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn unknown_graphs_and_bad_input_error() {
        let mut reg = GraphRegistry::new();
        assert!(matches!(
            reg.resolve(&GraphRef::Name("missing".into())),
            Err(ServiceError::UnknownGraph { .. })
        ));
        assert!(matches!(
            reg.ingest_edge_list("x", "not a graph"),
            Err(ServiceError::EdgeList(_))
        ));
        assert!(matches!(
            reg.ingest_spec("x", "nope(1)"),
            Err(ServiceError::Spec(_))
        ));
        assert!(reg.is_empty());
    }
}
