//! Line-delimited JSON wire format for the service protocol.
//!
//! The workspace is offline (no serde), so this module carries its own
//! small JSON value type with a recursive-descent parser and a writer.
//! It covers exactly what the protocol needs: objects, arrays, strings
//! with the standard escapes, `true`/`false`/`null`, and numbers with
//! full `u64`/`i64` integer fidelity (seeds are 64-bit; round counts
//! would drown in an `f64`-only representation).
//!
//! [`FrameReader`] is the framing half: it splits a byte stream into
//! newline-delimited frames under a hard size cap, so a single hostile
//! or corrupted connection can neither exhaust server memory with an
//! unbounded line nor poison the frames that follow it — an oversized
//! or non-UTF-8 frame is reported as a per-frame [`FrameError`] and the
//! reader resynchronises on the next newline.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Negative integer (stored exactly).
    Int(i64),
    /// Non-negative integer (stored exactly, full `u64` range).
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Adds/overwrites `key` in an object.
    ///
    /// # Panics
    ///
    /// Panics on non-objects (builder misuse, not data-dependent).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Value {
        match &mut self {
            Value::Obj(fields) => {
                fields.retain(|(k, _)| k != key);
                fields.push((key.to_string(), value.into()));
                self
            }
            other => panic!("field() on non-object {other:?}"),
        }
    }

    /// Looks a key up in an object (`None` for absent keys or
    /// non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String view.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `u64` view (integral floats included when exact).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(x) => Some(x),
            Value::Int(x) => u64::try_from(x).ok(),
            // Strict `<`: `u64::MAX as f64` rounds up to 2^64, which is
            // not representable — saturating it to u64::MAX would hand
            // the caller a value the client never sent.
            Value::Float(x) if x >= 0.0 && x.fract() == 0.0 && x < u64::MAX as f64 => {
                Some(x as u64)
            }
            _ => None,
        }
    }

    /// `f64` view of any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(x) => Some(x as f64),
            Value::Int(x) => Some(x as f64),
            Value::Float(x) => Some(x),
            _ => None,
        }
    }

    /// Array view.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline (the
    /// benchmark-artifact format; the wire protocol uses the compact
    /// [`Display`](fmt::Display) form instead).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        use fmt::Write as _;
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Value::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    let _ = write!(out, "{}: ", Value::Str(k.clone()));
                    v.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
            // Scalars and empty collections print as in the compact form.
            leaf => {
                let _ = write!(out, "{leaf}");
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else).
    ///
    /// # Errors
    ///
    /// [`WireError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Value, WireError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    /// Compact single-line serialization (the line-delimited protocol
    /// requires responses without raw newlines; `\n` in strings is
    /// escaped).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(x) => write!(f, "{x}"),
            Value::UInt(x) => write!(f, "{x}"),
            Value::Float(x) if x.is_finite() => write!(f, "{x}"),
            Value::Float(_) => f.write_str("null"),
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<u64> for Value {
    fn from(x: u64) -> Value {
        Value::UInt(x)
    }
}
impl From<usize> for Value {
    fn from(x: usize) -> Value {
        Value::UInt(x as u64)
    }
}
impl From<i64> for Value {
    fn from(x: i64) -> Value {
        if x >= 0 {
            Value::UInt(x as u64)
        } else {
            Value::Int(x)
        }
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Arr(items)
    }
}

/// A JSON parse error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for WireError {}

/// Recursion depth cap: the protocol nests requests two or three levels
/// deep; anything deeper is garbage (or an attack on the stack).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> WireError {
        WireError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), WireError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &'static str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("bad literal"))
                }
            }
            Some(b't') => {
                if self.literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("bad literal"))
                }
            }
            Some(b'f') => {
                if self.literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("bad literal"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    if self.eat(b']') {
                        return Ok(Value::Arr(items));
                    }
                    self.expect(b',', "expected `,` or `]`")?;
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':', "expected `:`")?;
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    if self.eat(b'}') {
                        return Ok(Value::Obj(fields));
                    }
                    self.expect(b',', "expected `,` or `}`")?;
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are replaced, not paired — the
                            // protocol never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, WireError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.eat(b'.') {
            integral = false;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        if integral {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::UInt(x));
            }
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::Int(x));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| WireError {
                offset: start,
                message: "invalid number",
            })
    }
}

/// Default frame-size cap: generous enough for large `edge_list`
/// ingest documents, small enough that one connection cannot buffer
/// unbounded garbage (16 MiB).
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;

/// An error while reading one frame off a connection.
///
/// [`Oversized`](FrameError::Oversized) and
/// [`Encoding`](FrameError::Encoding) are *per-frame*: the offending
/// line has been consumed and the reader keeps working, so the caller
/// can answer an in-band error and read the next frame.
/// [`Io`](FrameError::Io) ends the connection.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed; the connection is dead.
    Io(io::Error),
    /// A line exceeded the frame cap. The whole line (up to and
    /// including its newline) was consumed and discarded.
    Oversized {
        /// The configured cap the frame blew through, in bytes.
        limit: usize,
    },
    /// A line was not valid UTF-8. The line was consumed.
    Encoding,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "connection error: {e}"),
            FrameError::Oversized { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            FrameError::Encoding => f.write_str("frame is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Reads newline-delimited frames off a byte stream under a size cap.
///
/// This is the framing layer every transport shares (stdin, unix
/// sockets, TCP): one frame per line, `\r\n` tolerated, empty frames
/// passed through (the protocol layer skips them), and a final
/// unterminated line treated as a frame so `printf '%s' '{...}'`
/// clients work.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: BufReader<R>,
    max_frame: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `reader` with a `max_frame`-byte cap per line.
    pub fn new(reader: R, max_frame: usize) -> Self {
        FrameReader {
            inner: BufReader::new(reader),
            max_frame,
        }
    }

    /// Reads the next frame. `Ok(None)` is end-of-stream.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] / [`FrameError::Encoding`] for a bad
    /// frame (recoverable — keep calling), [`FrameError::Io`] when the
    /// stream itself fails (stop).
    pub fn next_frame(&mut self) -> Result<Option<String>, FrameError> {
        // The cap applies to the frame *payload* — the line with its
        // `\r\n`/`\n` terminator stripped — so a CRLF client's
        // exactly-at-the-cap frame is as valid as an LF client's. Up
        // to `max_frame + 1` bytes are buffered (the +1 holding a
        // possible trailing `\r`); anything beyond is provably
        // oversized and only consumed.
        let mut buf: Vec<u8> = Vec::new();
        let mut truncated = false;
        loop {
            let chunk = self.inner.fill_buf().map_err(FrameError::Io)?;
            if chunk.is_empty() {
                // EOF: an unterminated final line is still a frame.
                if buf.is_empty() && !truncated {
                    return Ok(None);
                }
                return self.complete(buf, truncated);
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !truncated {
                        if buf.len() + pos <= self.max_frame + 1 {
                            buf.extend_from_slice(&chunk[..pos]);
                        } else {
                            truncated = true;
                        }
                    }
                    self.inner.consume(pos + 1);
                    return self.complete(buf, truncated);
                }
                None => {
                    let len = chunk.len();
                    if !truncated {
                        if buf.len() + len <= self.max_frame + 1 {
                            buf.extend_from_slice(chunk);
                        } else {
                            // Stop buffering; keep consuming until the
                            // newline so the *next* frame starts clean.
                            truncated = true;
                            buf.clear();
                        }
                    }
                    self.inner.consume(len);
                }
            }
        }
    }

    /// Finalises one line: strips the optional `\r`, then applies the
    /// payload cap and the UTF-8 check.
    fn complete(&self, mut buf: Vec<u8>, truncated: bool) -> Result<Option<String>, FrameError> {
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        if truncated || buf.len() > self.max_frame {
            return Err(FrameError::Oversized {
                limit: self.max_frame,
            });
        }
        String::from_utf8(buf)
            .map(Some)
            .map_err(|_| FrameError::Encoding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Value::obj()
            .field("op", "query")
            .field("seed", u64::MAX)
            .field("neg", -3i64)
            .field("eps", 0.125)
            .field("ok", true)
            .field("none", Value::Null)
            .field("items", vec![Value::UInt(1), Value::Str("x\n\"".into())]);
        let text = doc.to_string();
        assert!(!text.contains('\n'), "line protocol: no raw newlines");
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(back.get("eps").unwrap().as_f64(), Some(0.125));
        assert_eq!(back.get("op").unwrap().as_str(), Some("query"));
        assert_eq!(back.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(back.get("items").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Value::parse(" { \"a\" : [ 1 , 2.5, \"\\u0041\\t\" ] } ").unwrap();
        let items = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("A\t"));
    }

    #[test]
    fn errors_carry_offsets() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "1 2"] {
            let err = Value::parse(bad).unwrap_err();
            assert!(err.offset <= bad.len(), "{bad}: {err}");
            assert!(!err.to_string().is_empty());
        }
        // Deep nesting is rejected, not a stack overflow.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn integer_fidelity() {
        assert_eq!(
            Value::parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::from(-7i64), Value::Int(-7));
        assert_eq!(Value::from(7i64), Value::UInt(7));
        // Too big for u64/i64 falls back to float — and the float view
        // rejects 2^64 instead of saturating to u64::MAX.
        assert!(matches!(
            Value::parse("99999999999999999999999").unwrap(),
            Value::Float(_)
        ));
        assert_eq!(Value::parse("18446744073709551616").unwrap().as_u64(), None);
        assert_eq!(Value::Float(f64::NAN).to_string(), "null");
    }

    /// A reader that hands out one byte per `read` call, forcing the
    /// frame reader to reassemble lines across many fills.
    struct Trickle<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl std::io::Read for Trickle<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.pos == self.bytes.len() || out.is_empty() {
                return Ok(0);
            }
            out[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    fn frames_of(input: &[u8], max: usize) -> Vec<Result<Option<String>, String>> {
        let mut reader = FrameReader::new(
            Trickle {
                bytes: input,
                pos: 0,
            },
            max,
        );
        let mut out = Vec::new();
        loop {
            match reader.next_frame() {
                Ok(None) => break,
                Ok(Some(line)) => out.push(Ok(Some(line))),
                Err(e) => out.push(Err(e.to_string())),
            }
        }
        out
    }

    #[test]
    fn frames_split_lines_and_tolerate_crlf() {
        let got = frames_of(b"{\"a\":1}\r\nplain\n\nlast-no-newline", 64);
        assert_eq!(
            got,
            vec![
                Ok(Some("{\"a\":1}".to_string())),
                Ok(Some("plain".to_string())),
                Ok(Some(String::new())),
                Ok(Some("last-no-newline".to_string())),
            ]
        );
    }

    #[test]
    fn oversized_frame_is_skipped_and_reader_recovers() {
        let mut input = vec![b'x'; 100];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let got = frames_of(&input, 16);
        assert_eq!(got.len(), 2);
        assert!(got[0].as_ref().unwrap_err().contains("16-byte limit"));
        assert_eq!(got[1], Ok(Some("ok".to_string())));

        // A frame of exactly the cap is allowed; cap + 1 is not.
        let exact = frames_of(b"abcd\nabcde\nz\n", 4);
        assert_eq!(exact[0], Ok(Some("abcd".to_string())));
        assert!(exact[1].is_err());
        assert_eq!(exact[2], Ok(Some("z".to_string())));

        // An unterminated oversized tail still errors (nothing silently
        // truncated), and the stream then ends cleanly.
        let tail = frames_of(&[b'y'; 40], 8);
        assert_eq!(tail.len(), 1);
        assert!(tail[0].is_err());
    }

    #[test]
    fn the_cap_applies_to_the_payload_not_the_line_terminator() {
        // A CRLF client's exactly-at-the-cap frame is as valid as an
        // LF client's: the `\r` does not count against the cap.
        let got = frames_of(b"abcd\r\nabcde\r\nok\r\n", 4);
        assert_eq!(got[0], Ok(Some("abcd".to_string())));
        assert!(got[1].is_err(), "5-byte CRLF payload over a 4-byte cap");
        assert_eq!(got[2], Ok(Some("ok".to_string())));
        // Unterminated final CRLF-less line at the cap + a stray `\r`.
        assert_eq!(frames_of(b"abcd\r", 4), vec![Ok(Some("abcd".to_string()))]);
        assert!(frames_of(b"abcde\r", 4)[0].is_err());
    }

    #[test]
    fn invalid_utf8_is_a_recoverable_frame_error() {
        let got = frames_of(b"\xff\xfe\nok\n", 64);
        assert_eq!(got.len(), 2);
        assert!(got[0].as_ref().unwrap_err().contains("UTF-8"));
        assert_eq!(got[1], Ok(Some("ok".to_string())));
    }

    #[test]
    fn frame_error_display_and_source() {
        let e = FrameError::Io(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&FrameError::Encoding).is_none());
    }

    #[test]
    fn non_objects_get_none() {
        let v = Value::parse("[1]").unwrap();
        assert!(v.get("a").is_none());
        assert!(v.as_str().is_none());
        assert!(Value::Null.as_u64().is_none());
        assert_eq!(Value::Float(3.0).as_u64(), Some(3));
        assert_eq!(Value::Float(3.5).as_u64(), None);
        assert_eq!(Value::Int(-1).as_u64(), None);
    }
}
