//! Durable state: the reject-certificate write-ahead log.
//!
//! The cache's retention policy (see [`crate::cache`]) makes rejects
//! the *permanent* half of the result space: one-sided error turns any
//! reject into a proof that is replayable for every seed, forever.
//! This module makes "forever" outlive the process. Certificates are
//! appended to a write-ahead log — one LDJSON record per certificate,
//! full-fidelity outcome included — and replayed into the cache on
//! startup, so a cold restart answers known-non-planar graphs without
//! a single engine pass. Accept stripes are deliberately *not* logged:
//! they are per-seed Monte-Carlo evidence behind an LRU, and spilling
//! evidence that may be evicted anyway buys nothing.
//!
//! # Record schema
//!
//! ```json
//! {"v":1,"graph":"<32-hex>","config":"<32-hex>","property":"planarity",
//!  "seed":7,"outcome":{"kind":"planarity","rejections":[...],
//!  "stats":{...},"phases":[...],"parts":[...],"witnesses":[...]}}
//! ```
//!
//! The outcome payload round-trips every field of
//! [`Outcome`] — verdicts, witnesses, the statistics ledger, Stage-I
//! phase metrics and Stage-II part reports — so a replayed certificate
//! is bit-identical to the original engine pass, exactly like an
//! in-memory certificate hit.
//!
//! # Crash safety
//!
//! Appends are a single `write` of one newline-terminated line
//! followed by `fdatasync`. A crash mid-append leaves a partial tail
//! record; [`CertificateLog::open`] detects it (no terminating
//! newline), counts it in [`Replay::skipped`], and truncates it away
//! so the next append starts on a clean boundary. Malformed complete
//! lines (e.g. torn by an external editor) are likewise skipped and
//! counted, never panicked on. [`CertificateLog::compact`] rewrites
//! the log from live cache state through a temp-file + rename, so a
//! crash mid-compaction leaves either the old log or the new one,
//! never a mix.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use planartest_core::applications::HereditaryOutcome;
use planartest_core::{RejectReason, TestOutcome};
use planartest_graph::disk::DiskError;
use planartest_graph::fingerprint::Fingerprint;
use planartest_graph::NodeId;
use planartest_sim::SimStats;

use crate::cache::CacheKey;
use crate::query::{Outcome, Property};
use crate::wire::Value;

/// Errors from the persistence tier (certificate log and CSR spill).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An I/O failure, with the failing operation's context.
    Io(String),
    /// A record failed structural validation (`what` names the field).
    Corrupt(&'static str),
    /// A CSR spill or mapped load failed.
    Disk(DiskError),
    /// A persistence operation needs `--state-dir` and none is set.
    NoStateDir,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o: {e}"),
            PersistError::Corrupt(what) => write!(f, "corrupt record: {what}"),
            PersistError::Disk(e) => write!(f, "csr spill: {e}"),
            PersistError::NoStateDir => f.write_str("no --state-dir configured"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Disk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e.to_string())
    }
}

impl From<DiskError> for PersistError {
    fn from(e: DiskError) -> Self {
        PersistError::Disk(e)
    }
}

/// One durable reject certificate: the cache key, the certifying seed
/// and the full-fidelity outcome of the certifying run.
#[derive(Debug, Clone)]
pub struct CertificateRecord {
    /// The `(graph, config, property)` cache key.
    pub key: CacheKey,
    /// The seed of the certifying run (replays are stamped with it).
    pub seed: u64,
    /// The certifying run's outcome, witnesses and statistics included.
    pub outcome: Outcome,
}

// ---------------------------------------------------------------------
// Outcome ⇄ Value codec
// ---------------------------------------------------------------------

fn reason_name(r: RejectReason) -> &'static str {
    match r {
        RejectReason::ArboricityEvidence => "arboricity",
        RejectReason::EulerBound => "euler",
        RejectReason::EmbeddingFailed => "embedding",
        RejectReason::ViolatingEdge => "violating",
    }
}

fn reason_from(name: &str) -> Result<RejectReason, PersistError> {
    match name {
        "arboricity" => Ok(RejectReason::ArboricityEvidence),
        "euler" => Ok(RejectReason::EulerBound),
        "embedding" => Ok(RejectReason::EmbeddingFailed),
        "violating" => Ok(RejectReason::ViolatingEdge),
        _ => Err(PersistError::Corrupt("reject reason")),
    }
}

fn stats_to_value(s: &SimStats) -> Value {
    Value::obj()
        .field("rounds", s.rounds)
        .field("charged_rounds", s.charged_rounds)
        .field("messages", s.messages)
        .field("words", s.words)
        .field("runs", s.runs)
}

fn need<'v>(v: &'v Value, key: &'static str) -> Result<&'v Value, PersistError> {
    v.get(key).ok_or(PersistError::Corrupt(key))
}

fn need_u64(v: &Value, key: &'static str) -> Result<u64, PersistError> {
    need(v, key)?.as_u64().ok_or(PersistError::Corrupt(key))
}

fn need_usize(v: &Value, key: &'static str) -> Result<usize, PersistError> {
    usize::try_from(need_u64(v, key)?).map_err(|_| PersistError::Corrupt(key))
}

fn need_arr<'v>(v: &'v Value, key: &'static str) -> Result<&'v [Value], PersistError> {
    need(v, key)?.as_arr().ok_or(PersistError::Corrupt(key))
}

fn need_str<'v>(v: &'v Value, key: &'static str) -> Result<&'v str, PersistError> {
    need(v, key)?.as_str().ok_or(PersistError::Corrupt(key))
}

fn node_from(v: &Value, what: &'static str) -> Result<NodeId, PersistError> {
    let raw = v.as_u64().ok_or(PersistError::Corrupt(what))?;
    let index = usize::try_from(raw).map_err(|_| PersistError::Corrupt(what))?;
    if index > u32::MAX as usize {
        return Err(PersistError::Corrupt(what));
    }
    Ok(NodeId::new(index))
}

fn stats_from_value(v: &Value) -> Result<SimStats, PersistError> {
    Ok(SimStats {
        rounds: need_u64(v, "rounds")?,
        charged_rounds: need_u64(v, "charged_rounds")?,
        messages: need_u64(v, "messages")?,
        words: need_u64(v, "words")?,
        runs: need_u64(v, "runs")?,
    })
}

/// Serializes an outcome with full fidelity (every field round-trips).
#[must_use]
pub fn outcome_to_value(outcome: &Outcome) -> Value {
    match outcome {
        Outcome::Planarity(o) => Value::obj()
            .field("kind", "planarity")
            .field(
                "rejections",
                o.rejections
                    .iter()
                    .map(|&(node, reason)| {
                        Value::obj()
                            .field("node", node.index())
                            .field("reason", reason_name(reason))
                    })
                    .collect::<Vec<Value>>(),
            )
            .field("stats", stats_to_value(&o.stats))
            .field(
                "phases",
                o.phases
                    .iter()
                    .map(|p| {
                        Value::obj()
                            .field("phase", p.phase)
                            .field("cut_weight", p.cut_weight)
                            .field("parts", p.parts)
                            .field("max_depth", p.max_depth as u64)
                            .field("peel_super_rounds", p.peel_super_rounds as u64)
                    })
                    .collect::<Vec<Value>>(),
            )
            .field(
                "parts",
                o.parts
                    .iter()
                    .map(|p| {
                        Value::obj()
                            .field("root", p.root.index())
                            .field("n", p.n)
                            .field("m", p.m)
                            .field("non_tree", p.non_tree)
                            .field("embedded_planar", p.embedded_planar)
                            .field("sampled", p.sampled)
                    })
                    .collect::<Vec<Value>>(),
            )
            .field(
                "witnesses",
                o.violation_witnesses
                    .iter()
                    .map(|w| Value::UInt(w.index() as u64))
                    .collect::<Vec<Value>>(),
            ),
        Outcome::Hereditary { outcome, stats } => Value::obj()
            .field("kind", "hereditary")
            .field(
                "rejecting",
                outcome
                    .rejecting
                    .iter()
                    .map(|w| Value::UInt(w.index() as u64))
                    .collect::<Vec<Value>>(),
            )
            .field("parts", outcome.parts)
            .field("stats", stats_to_value(stats)),
    }
}

/// Deserializes an outcome; every structural defect is a typed
/// [`PersistError::Corrupt`], never a panic.
pub fn outcome_from_value(v: &Value) -> Result<Outcome, PersistError> {
    match need_str(v, "kind")? {
        "planarity" => {
            let mut rejections = Vec::new();
            for r in need_arr(v, "rejections")? {
                rejections.push((
                    node_from(need(r, "node")?, "node")?,
                    reason_from(need_str(r, "reason")?)?,
                ));
            }
            let stats = stats_from_value(need(v, "stats")?)?;
            let mut phases = Vec::new();
            for p in need_arr(v, "phases")? {
                let depth = need_u64(p, "max_depth")?;
                let peel = need_u64(p, "peel_super_rounds")?;
                phases.push(planartest_core::partition::PhaseMetrics {
                    phase: need_usize(p, "phase")?,
                    cut_weight: need_u64(p, "cut_weight")?,
                    parts: need_usize(p, "parts")?,
                    max_depth: u32::try_from(depth)
                        .map_err(|_| PersistError::Corrupt("max_depth"))?,
                    peel_super_rounds: u32::try_from(peel)
                        .map_err(|_| PersistError::Corrupt("peel_super_rounds"))?,
                });
            }
            let mut parts = Vec::new();
            for p in need_arr(v, "parts")? {
                parts.push(planartest_core::stage2::PartReport {
                    root: node_from(need(p, "root")?, "root")?,
                    n: need_usize(p, "n")?,
                    m: need_usize(p, "m")?,
                    non_tree: need_usize(p, "non_tree")?,
                    embedded_planar: need(p, "embedded_planar")?
                        .as_bool()
                        .ok_or(PersistError::Corrupt("embedded_planar"))?,
                    sampled: need_usize(p, "sampled")?,
                });
            }
            let mut violation_witnesses = Vec::new();
            for w in need_arr(v, "witnesses")? {
                violation_witnesses.push(node_from(w, "witness")?);
            }
            Ok(Outcome::Planarity(TestOutcome {
                rejections,
                stats,
                phases,
                parts,
                violation_witnesses,
            }))
        }
        "hereditary" => {
            let mut rejecting = Vec::new();
            for w in need_arr(v, "rejecting")? {
                rejecting.push(node_from(w, "rejecting")?);
            }
            Ok(Outcome::Hereditary {
                outcome: HereditaryOutcome {
                    rejecting,
                    parts: need_usize(v, "parts")?,
                },
                stats: stats_from_value(need(v, "stats")?)?,
            })
        }
        _ => Err(PersistError::Corrupt("kind")),
    }
}

/// Serializes one log record as a single-line JSON object.
#[must_use]
pub fn record_to_value(record: &CertificateRecord) -> Value {
    Value::obj()
        .field("v", 1u64)
        .field("graph", record.key.graph.to_string())
        .field("config", record.key.config.to_string())
        .field("property", record.key.property.name())
        .field("seed", record.seed)
        .field("outcome", outcome_to_value(&record.outcome))
}

/// Deserializes one log record.
///
/// # Errors
///
/// [`PersistError::Corrupt`] naming the first bad field.
pub fn record_from_value(v: &Value) -> Result<CertificateRecord, PersistError> {
    if need_u64(v, "v")? != 1 {
        return Err(PersistError::Corrupt("v"));
    }
    let graph: Fingerprint = need_str(v, "graph")?
        .parse()
        .map_err(|_| PersistError::Corrupt("graph"))?;
    let config: Fingerprint = need_str(v, "config")?
        .parse()
        .map_err(|_| PersistError::Corrupt("config"))?;
    let property: Property = need_str(v, "property")?
        .parse()
        .map_err(|_| PersistError::Corrupt("property"))?;
    Ok(CertificateRecord {
        key: CacheKey {
            graph,
            config,
            property,
        },
        seed: need_u64(v, "seed")?,
        outcome: outcome_from_value(need(v, "outcome")?)?,
    })
}

// ---------------------------------------------------------------------
// The log
// ---------------------------------------------------------------------

/// What [`CertificateLog::open`] recovered from an existing log.
#[derive(Debug)]
pub struct Replay {
    /// Decoded records in append order (duplicates possible before
    /// compaction; the cache's first-wins rule makes replay idempotent).
    pub records: Vec<CertificateRecord>,
    /// Partial tail records and malformed lines skipped — the counted
    /// warning the crash-safety contract promises.
    pub skipped: usize,
}

/// The append-only reject-certificate write-ahead log.
#[derive(Debug)]
pub struct CertificateLog {
    path: PathBuf,
    file: File,
}

impl CertificateLog {
    /// Opens (creating if absent) the log at `path` and replays it.
    ///
    /// A partial tail record — the signature of a crash mid-append —
    /// is counted in [`Replay::skipped`] and physically truncated so
    /// the next append starts on a record boundary. Malformed complete
    /// lines are skipped and counted, never fatal.
    ///
    /// # Errors
    ///
    /// I/O failures opening or reading the log.
    pub fn open(path: &Path) -> Result<(CertificateLog, Replay), PersistError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        // Everything after the last newline is a torn append.
        let valid_len = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        let mut skipped = usize::from(valid_len < bytes.len());
        let mut records = Vec::new();
        let text = String::from_utf8_lossy(&bytes[..valid_len]);
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match Value::parse(line)
                .map_err(|_| PersistError::Corrupt("json"))
                .and_then(|v| record_from_value(&v))
            {
                Ok(r) => records.push(r),
                Err(_) => skipped += 1,
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        if (valid_len as u64) < file.metadata()?.len() {
            file.set_len(valid_len as u64)?;
        }
        Ok((
            CertificateLog {
                path: path.to_path_buf(),
                file,
            },
            Replay { records, skipped },
        ))
    }

    /// The log's location on disk.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record durably (single write + `fdatasync`).
    ///
    /// # Errors
    ///
    /// I/O failures; the log is safe to keep using (a torn line is
    /// skipped by the next replay).
    pub fn append(&mut self, record: &CertificateRecord) -> Result<(), PersistError> {
        let mut line = record_to_value(record).to_string();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Rewrites the log to exactly `live`, dropping duplicates and torn
    /// garbage. Atomic: temp file + rename, so a crash mid-compaction
    /// leaves the old log intact. Returns the record count written.
    ///
    /// # Errors
    ///
    /// I/O failures (the original log is untouched on error).
    pub fn compact<'a>(
        &mut self,
        live: impl Iterator<Item = CertificateRecord> + 'a,
    ) -> Result<usize, PersistError> {
        let tmp_path = self.path.with_extension("ldjson.tmp");
        let mut written = 0usize;
        {
            let mut tmp = File::create(&tmp_path)?;
            for record in live {
                let mut line = record_to_value(&record).to_string();
                line.push('\n');
                tmp.write_all(line.as_bytes())?;
                written += 1;
            }
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)?;
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planarity_outcome() -> Outcome {
        Outcome::Planarity(TestOutcome {
            rejections: vec![
                (NodeId::new(3), RejectReason::EulerBound),
                (NodeId::new(9), RejectReason::ViolatingEdge),
            ],
            stats: SimStats {
                rounds: 41,
                charged_rounds: 7,
                messages: 1234,
                words: 5678,
                runs: 3,
            },
            phases: vec![planartest_core::partition::PhaseMetrics {
                phase: 1,
                cut_weight: 99,
                parts: 4,
                max_depth: 6,
                peel_super_rounds: 2,
            }],
            parts: vec![planartest_core::stage2::PartReport {
                root: NodeId::new(0),
                n: 10,
                m: 22,
                non_tree: 13,
                embedded_planar: false,
                sampled: 5,
            }],
            violation_witnesses: vec![NodeId::new(2), NodeId::new(8)],
        })
    }

    fn hereditary_outcome() -> Outcome {
        Outcome::Hereditary {
            outcome: HereditaryOutcome {
                rejecting: vec![NodeId::new(1)],
                parts: 7,
            },
            stats: SimStats {
                rounds: 5,
                charged_rounds: 0,
                messages: 10,
                words: 20,
                runs: 1,
            },
        }
    }

    fn record(seed: u64, outcome: Outcome) -> CertificateRecord {
        CertificateRecord {
            key: CacheKey {
                graph: Fingerprint(0xDEAD_BEEF),
                config: Fingerprint(0xCAFE),
                property: Property::Planarity,
            },
            seed,
            outcome,
        }
    }

    #[test]
    fn records_roundtrip_bit_identically() {
        for outcome in [planarity_outcome(), hereditary_outcome()] {
            let rec = record(7, outcome);
            let encoded = record_to_value(&rec);
            let decoded = record_from_value(&encoded).expect("decode");
            assert_eq!(decoded.key, rec.key);
            assert_eq!(decoded.seed, rec.seed);
            // Outcome carries no PartialEq; re-encoding proves fidelity.
            assert_eq!(
                outcome_to_value(&decoded.outcome),
                encoded.get("outcome").cloned().unwrap()
            );
        }
    }

    #[test]
    fn corrupt_fields_are_typed_errors() {
        let good = record_to_value(&record(1, hereditary_outcome()));
        // Wrong version, bad fingerprint, bad property, bad kind.
        for (mutate, what) in [
            (good.clone().field("v", 9u64), "v"),
            (good.clone().field("graph", "zz"), "graph"),
            (good.clone().field("property", "girth"), "property"),
            (
                good.clone()
                    .field("outcome", Value::obj().field("kind", "warp")),
                "kind",
            ),
        ] {
            let err = record_from_value(&mutate).map(|_| ()).unwrap_err();
            assert_eq!(err, PersistError::Corrupt(what), "{what}");
        }
        assert!(record_from_value(&Value::obj()).is_err());
    }

    #[test]
    fn log_appends_and_replays() {
        let dir = std::env::temp_dir().join(format!("pt_wal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("certificates.ldjson");
        let _ = std::fs::remove_file(&path);
        {
            let (mut log, replay) = CertificateLog::open(&path).unwrap();
            assert!(replay.records.is_empty());
            assert_eq!(replay.skipped, 0);
            log.append(&record(1, planarity_outcome())).unwrap();
            log.append(&record(2, hereditary_outcome())).unwrap();
        }
        let (_, replay) = CertificateLog::open(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.records[0].seed, 1);
        assert_eq!(replay.records[1].seed, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_skipped_counted_and_truncated() {
        let dir = std::env::temp_dir().join(format!("pt_wal_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("certificates.ldjson");
        let _ = std::fs::remove_file(&path);
        {
            let (mut log, _) = CertificateLog::open(&path).unwrap();
            log.append(&record(1, hereditary_outcome())).unwrap();
            log.append(&record(2, hereditary_outcome())).unwrap();
        }
        // Simulate a crash mid-append: chop the file mid-record.
        let bytes = std::fs::read(&path).unwrap();
        let cut = bytes.len() - 10;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let (mut log, replay) = CertificateLog::open(&path).unwrap();
        assert_eq!(replay.records.len(), 1, "only the intact record survives");
        assert_eq!(replay.skipped, 1, "the torn tail is a counted warning");
        // The torn bytes are gone: a new append lands on a clean line.
        log.append(&record(3, hereditary_outcome())).unwrap();
        let (_, replay) = CertificateLog::open(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.records[1].seed, 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_drops_duplicates_atomically() {
        let dir = std::env::temp_dir().join(format!("pt_wal_compact_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("certificates.ldjson");
        let _ = std::fs::remove_file(&path);
        let (mut log, _) = CertificateLog::open(&path).unwrap();
        for _ in 0..5 {
            log.append(&record(1, hereditary_outcome())).unwrap();
        }
        let written = log
            .compact(std::iter::once(record(1, hereditary_outcome())))
            .unwrap();
        assert_eq!(written, 1);
        let (mut log, replay) = CertificateLog::open(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        // The append handle survived compaction.
        log.append(&record(9, hereditary_outcome())).unwrap();
        let (_, replay) = CertificateLog::open(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
