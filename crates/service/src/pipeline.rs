//! Per-connection response sequencing for the pipelined drain loop.
//!
//! The pipelined server answers submissions out of order — warm hits
//! at resolve time, engine misses after the execute barrier, carried
//! work a cycle later — but every connection is promised its responses
//! in submission order. The [`ResponseRouter`] restores that order:
//! each submission is [`admit`](ResponseRouter::admit)ted in arrival
//! order and handed a [`Token`]; fulfilling a token buffers its
//! response until the connection's contiguous prefix is complete, then
//! flushes the prefix to the connection's outbound writer queue
//! ([`Connections::enqueue`]).

use std::collections::{BTreeMap, HashMap};

use crate::transport::{ConnectionId, Connections};
use crate::wire::Value;

/// An admission ticket: one response owed to a connection, delivered
/// in sequence order relative to the connection's other tickets.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Token {
    conn: ConnectionId,
    seq: u64,
}

/// One connection's sequencing state.
#[derive(Debug, Default)]
struct Lane {
    /// Next sequence number to hand out at admission.
    next_assign: u64,
    /// Next sequence number the wire is waiting on.
    next_flush: u64,
    /// Fulfilled responses still ahead of `next_flush`.
    buffered: BTreeMap<u64, String>,
}

/// Sequences out-of-order fulfilments back into per-connection
/// submission order (see the module docs).
#[derive(Debug, Default)]
pub(crate) struct ResponseRouter {
    lanes: HashMap<ConnectionId, Lane>,
}

impl ResponseRouter {
    /// Reserves the next response slot for `conn`, in call order.
    pub(crate) fn admit(&mut self, conn: ConnectionId) -> Token {
        let lane = self.lanes.entry(conn).or_default();
        let seq = lane.next_assign;
        lane.next_assign += 1;
        Token { conn, seq }
    }

    /// Delivers `value` for an admitted token: buffers it, then
    /// flushes the connection's complete prefix to its outbound
    /// writer queue.
    pub(crate) fn fulfill(&mut self, token: Token, value: &Value, connections: &Connections) {
        let lane = self
            .lanes
            .get_mut(&token.conn)
            .expect("fulfilled token was admitted");
        lane.buffered.insert(token.seq, value.to_string());
        while let Some(line) = lane.buffered.remove(&lane.next_flush) {
            lane.next_flush += 1;
            connections.enqueue(token.conn, &line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;
    use std::io::Write;
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    #[derive(Clone, Default)]
    struct Sink(Arc<Mutex<Vec<u8>>>);
    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn lines_of(sink: &Sink) -> Vec<String> {
        String::from_utf8(sink.0.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    fn await_lines(sink: &Sink, want: usize) -> Vec<String> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let lines = lines_of(sink);
            if lines.len() >= want || Instant::now() > deadline {
                return lines;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn out_of_order_fulfilment_flushes_in_admission_order() {
        let connections = Connections::new();
        let sink = Sink::default();
        let conn = connections.register(Box::new(sink.clone()));
        let mut router = ResponseRouter::default();
        let t0 = router.admit(conn);
        let t1 = router.admit(conn);
        let t2 = router.admit(conn);
        router.fulfill(t2, &Value::obj().field("i", 2u64), &connections);
        router.fulfill(t0, &Value::obj().field("i", 0u64), &connections);
        assert_eq!(await_lines(&sink, 1).len(), 1, "prefix [0] flushes alone");
        router.fulfill(t1, &Value::obj().field("i", 1u64), &connections);
        let lines = await_lines(&sink, 3);
        let order: Vec<u64> = lines
            .iter()
            .map(|l| Value::parse(l).unwrap().get("i").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(order, [0, 1, 2]);
        connections.finish_shutdown_flush();
    }

    #[test]
    fn lanes_are_independent_across_connections() {
        let connections = Connections::new();
        let (a_sink, b_sink) = (Sink::default(), Sink::default());
        let a = connections.register(Box::new(a_sink.clone()));
        let b = connections.register(Box::new(b_sink.clone()));
        let mut router = ResponseRouter::default();
        let ta = router.admit(a);
        let tb = router.admit(b);
        // B's first response is not gated on A's.
        router.fulfill(tb, &Value::obj().field("who", "b"), &connections);
        assert_eq!(await_lines(&b_sink, 1).len(), 1);
        assert!(lines_of(&a_sink).is_empty());
        router.fulfill(ta, &Value::obj().field("who", "a"), &connections);
        assert_eq!(await_lines(&a_sink, 1).len(), 1);
        connections.finish_shutdown_flush();
    }
}
