//! Query service layer for the planarity tester: ingest graphs once,
//! serve many property-testing queries cheaply.
//!
//! PRs 1–3 built an engine fit for heavy traffic — a parallel
//! deterministic CONGEST runtime, flat CSR/arena memory, and
//! instance-multiplexed batching — but every caller still paid full
//! graph construction and Stage-I partition cost per query. This crate
//! is the front door that amortizes all of it:
//!
//! * [`registry::GraphRegistry`] — ingests graphs (edge lists via
//!   [`planartest_graph::io`], or generator specs via
//!   [`planartest_graph::generators::spec`]), fingerprints them by
//!   content, and keeps the built CSR resident. Names are aliases; the
//!   fingerprint is the identity, so duplicate ingests cost nothing.
//! * [`cache::ResultCache`] — keyed by `(graph fingerprint, config
//!   fingerprint, property)`. The retention policy is the tester's
//!   one-sided error model: **rejects are certificates** (stored
//!   permanently, witness included, replayed for any seed), **accepts
//!   are per-seed Monte-Carlo evidence** (warm hits only for seeds that
//!   ran). Replays are bit-identical to the original engine pass.
//! * [`service::Service`] — the batch-coalescing scheduler.
//!   [`Service::drain`] groups concurrent same-graph queries and feeds
//!   each group through **one**
//!   [`PlanarityTester::run_many`](planartest_core::PlanarityTester::run_many)
//!   pass, so independent users share a single Stage-I partition and one
//!   batched Stage-II; responses attribute per-query latency from the
//!   per-instance round accounting.
//! * [`protocol`] / [`wire`] — a line-delimited JSON protocol served by
//!   the `planartest` binary (`serve` over stdin/stdout, `query`
//!   one-shots).
//!
//! # Example
//!
//! ```
//! use planartest_core::TesterConfig;
//! use planartest_service::{CacheStatus, GraphRef, Query, Service};
//!
//! let mut service = Service::new();
//! service.registry_mut().ingest_spec("city", "tri_grid(5,5)")?;
//!
//! let cfg = TesterConfig::new(0.2).with_phases(5);
//! let q = Query::planarity(GraphRef::Name("city".into()), cfg);
//! let cold = service.query(q.clone())?;
//! assert!(cold.outcome.accepted());
//! assert_eq!(cold.cache, CacheStatus::Cold);
//!
//! // Same graph, config and seed: served from cache, bit-identical.
//! let warm = service.query(q)?;
//! assert_eq!(warm.cache, CacheStatus::Warm);
//! assert_eq!(warm.outcome.stats(), cold.outcome.stats());
//! assert_eq!(service.engine_passes(), 1);
//! # Ok::<(), planartest_service::ServiceError>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
mod error;
pub mod protocol;
mod query;
pub mod registry;
mod service;
pub mod wire;

pub use crate::cache::{CacheKey, CacheStats, ResultCache};
pub use crate::error::ServiceError;
pub use crate::query::{
    CacheStatus, GraphRef, Outcome, ParsePropertyError, Property, Query, QueryId, QueryResponse,
};
pub use crate::registry::{GraphEntry, GraphRegistry};
pub use crate::service::{DrainedQuery, Service, ServiceStats};
