//! Query service layer for the planarity tester: ingest graphs once,
//! serve many property-testing queries cheaply.
//!
//! PRs 1–3 built an engine fit for heavy traffic — a parallel
//! deterministic CONGEST runtime, flat CSR/arena memory, and
//! instance-multiplexed batching — but every caller still paid full
//! graph construction and Stage-I partition cost per query. This crate
//! is the front door that amortizes all of it:
//!
//! * [`registry::GraphRegistry`] — ingests graphs (edge lists via
//!   [`planartest_graph::io`], or generator specs via
//!   [`planartest_graph::generators::spec`]), fingerprints them by
//!   content, and keeps the built CSR resident. Names are aliases; the
//!   fingerprint is the identity, so duplicate ingests cost nothing.
//! * [`cache::ResultCache`] — keyed by `(graph fingerprint, config
//!   fingerprint, property)`. The retention policy is the tester's
//!   one-sided error model: **rejects are certificates** (stored
//!   permanently, witness included, replayed for any seed), **accepts
//!   are per-seed Monte-Carlo evidence** (warm hits only for seeds that
//!   ran). Replays are bit-identical to the original engine pass.
//! * [`persist::CertificateLog`] — the durability tier (opt-in via
//!   [`Service::set_state_dir`](scheduler::Service::set_state_dir)):
//!   graphs write through to relocatable on-disk CSR spills
//!   ([`planartest_graph::disk`]) and re-map zero-copy on restart,
//!   with LRU demotion bounding the resident heap tier; reject
//!   certificates append to a crash-tolerant write-ahead log and
//!   replay into the cache cold — a restarted server answers every
//!   previously-certified query without an engine pass.
//! * [`scheduler::Service`] — the batch-coalescing scheduler.
//!   [`Service::drain`] resolves, groups, executes and responds in
//!   four decoupled stages: same-key queries ride **one**
//!   [`PlanarityTester::run_many`](planartest_core::PlanarityTester::run_many)
//!   pass (independent users share a single Stage-I partition and one
//!   batched Stage-II), independent groups fan out across a
//!   `TrialRunner` worker pool with bit-for-bit sequential-equal
//!   results, and responses attribute per-query latency from the
//!   per-instance round accounting.
//! * [`scheduler::Server`] — the concurrent form: a dedicated thread
//!   owns the service and drains a shared submission queue on
//!   queue-depth or linger-timer wakeups, so *independent clients'*
//!   same-graph queries coalesce automatically. The server cycle is
//!   *pipelined*: warm/certificate hits are answered at resolve time
//!   (ahead of the execute barrier), next-cycle arrivals resolve while
//!   the engine runs, and graceful shutdown (stdin EOF, SIGTERM)
//!   flushes everything pending first.
//! * [`transport`] — how requests arrive: stdio, unix-socket and TCP
//!   listeners all frame LDJSON requests
//!   ([`wire::FrameReader`]) into that one queue, tagged with a
//!   connection id; responses route back per connection in submission
//!   order through bounded per-connection outbound queues drained by
//!   dedicated writer threads (a stalled reader sheds its own
//!   responses, never anyone else's), and a hostile frame costs its
//!   sender one error response, never the server.
//! * [`protocol`] / [`wire`] — the line-delimited JSON protocol served
//!   by the `planartest` binary (`serve` over any transport, `query`
//!   one-shots).
//!
//! # Example
//!
//! ```
//! use planartest_core::TesterConfig;
//! use planartest_service::{CacheStatus, GraphRef, Query, Service};
//!
//! let mut service = Service::new();
//! service.registry_mut().ingest_spec("city", "tri_grid(5,5)")?;
//!
//! let cfg = TesterConfig::new(0.2).with_phases(5);
//! let q = Query::planarity(GraphRef::Name("city".into()), cfg);
//! let cold = service.query(q.clone())?;
//! assert!(cold.outcome.accepted());
//! assert_eq!(cold.cache, CacheStatus::Cold);
//!
//! // Same graph, config and seed: served from cache, bit-identical.
//! let warm = service.query(q)?;
//! assert_eq!(warm.cache, CacheStatus::Warm);
//! assert_eq!(warm.outcome.stats(), cold.outcome.stats());
//! assert_eq!(service.engine_passes(), 1);
//! # Ok::<(), planartest_service::ServiceError>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
mod error;
mod exec;
pub mod persist;
mod pipeline;
pub mod protocol;
mod query;
pub mod registry;
pub mod scheduler;
pub mod telemetry;
pub mod transport;
pub mod wire;

pub use crate::cache::{CacheKey, CacheStats, ResultCache};
pub use crate::error::ServiceError;
pub use crate::persist::{CertificateLog, CertificateRecord, PersistError, Replay};
pub use crate::query::{
    CacheStatus, GraphRef, Outcome, ParsePropertyError, Property, Query, QueryId, QueryResponse,
};
pub use crate::registry::{GraphEntry, GraphRegistry};
pub use crate::scheduler::{
    DrainedQuery, ServeOptions, Server, Service, ServiceStats, StateSummary, DEFAULT_MAX_IN_FLIGHT,
    DEFAULT_OUTBOUND_DEPTH,
};
pub use crate::telemetry::{
    Clock, Histogram, MockClock, Route, StageTimes, Telemetry, WakeReason, WAKE_REASONS,
};
pub use crate::transport::{ConnectionId, Connections, Submission, SubmissionQueue};
