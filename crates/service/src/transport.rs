//! The transport layer: listeners, connections, and the shared
//! submission queue.
//!
//! `planartest serve` used to be a synchronous loop over one stdin
//! pipe. This module decouples *how requests arrive* from *how they
//! are scheduled*: every transport (stdio, unix socket, TCP) frames
//! its byte stream into LDJSON requests ([`FrameReader`]) and pushes
//! them — tagged with a [`ConnectionId`] — into one shared
//! [`SubmissionQueue`]. The scheduler's background drain loop
//! (`scheduler::Server`) is the only consumer; it routes each response
//! back through [`Connections`] to the connection that asked, in that
//! connection's submission order.
//!
//! Per-connection failures stay per-connection: an oversized or
//! garbage frame becomes an in-band `{"ok":false,...}` response (the
//! reader resynchronises on the next newline), and a dead socket just
//! drops its connection. No *frame* a client sends can take the
//! server down. One known limitation on the output side: the drain
//! loop writes responses inline, so a live client that stops
//! *reading* while responses pile into its full socket buffer can
//! stall the respond stage (per-connection outbound queues are the
//! ROADMAP "backpressure" item).
//!
//! End-of-life: read-side EOF never tears down a connection's write
//! half — a client may close its sending side and still collect its
//! answers (`printf '…' | nc -U sock`, or the stdio pipe itself). A
//! connection is dropped when a *write* to it fails; EOF on *stdin*
//! additionally requests a graceful shutdown of the whole server (the
//! drain loop flushes every pending query before exiting), which is
//! also what the CLI's SIGTERM handler triggers.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::protocol;
use crate::telemetry::{Clock, WakeReason};
use crate::wire::{FrameError, FrameReader, Value};

/// Identifies one client connection for the lifetime of the server.
/// Ids are handed out in registration order with no reserved values;
/// the CLI attaches stdio first (unless `--no-stdio`), so stdio is
/// connection 0 *there*, but embedders that go straight to
/// [`spawn_unix_listener`]/[`spawn_tcp_listener`] hand id 0 to their
/// first socket client.
pub type ConnectionId = u64;

/// How often blocked waits re-check the shutdown flag (accept loops
/// and the empty-queue wait in the drain loop).
const POLL: Duration = Duration::from_millis(25);

/// One framed request as the scheduler sees it: where it came from,
/// and either the parsed JSON document or the per-frame failure to
/// answer in-band.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The connection the response must be routed back to.
    pub conn: ConnectionId,
    /// The parsed request, or the framing/parse error message.
    pub request: Result<Value, String>,
    /// When this submission entered the queue, on the service clock
    /// (stamped by [`SubmissionQueue::push`]; the origin of the
    /// queue-wait stage span).
    pub at_micros: u64,
}

impl Submission {
    /// A submission awaiting its arrival stamp (set by
    /// [`SubmissionQueue::push`]).
    #[must_use]
    pub fn new(conn: ConnectionId, request: Result<Value, String>) -> Submission {
        Submission {
            conn,
            request,
            at_micros: 0,
        }
    }

    /// Whether this submission benefits from waiting in the queue.
    /// Only `query`/`batch` requests coalesce; control ops (ingest,
    /// stats, …) and malformed frames wake the drain loop immediately.
    #[must_use]
    pub fn coalescable(&self) -> bool {
        matches!(&self.request, Ok(req) if protocol::coalescable(req))
    }
}

#[derive(Debug, Default)]
struct QueueState {
    items: Vec<Submission>,
    /// When the oldest pending submission arrived (the linger clock).
    first_at: Option<Instant>,
    /// Whether anything pending is non-coalescable.
    urgent: bool,
}

/// The shared submission queue between all transports and the one
/// drain loop.
///
/// Transports [`push`](SubmissionQueue::push); the scheduler's drain
/// thread takes whole cycles via `wait_cycle`. The queue also carries
/// the server-wide shutdown flag so accept loops, transports and the
/// drain loop agree on one source of truth.
#[derive(Debug)]
pub struct SubmissionQueue {
    state: Mutex<QueueState>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Deepest the queue has ever been (updated by [`push`]
    /// (SubmissionQueue::push), never reset): the after-the-fact
    /// overload witness the `stats` op reports as `queue_depth_hwm`.
    depth_hwm: AtomicUsize,
    /// The clock arrival stamps are taken on. Replaced with the
    /// service's telemetry clock by `Server::start`, so queue-wait
    /// spans and scheduler stage spans share one timebase.
    clock: Mutex<Clock>,
}

impl Default for SubmissionQueue {
    fn default() -> Self {
        SubmissionQueue {
            state: Mutex::default(),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            depth_hwm: AtomicUsize::new(0),
            clock: Mutex::new(Clock::wall()),
        }
    }
}

impl SubmissionQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        SubmissionQueue::default()
    }

    /// Replaces the clock arrival stamps are taken on (the server wires
    /// in the service's telemetry clock so all stage spans share one
    /// timebase).
    pub fn set_clock(&self, clock: Clock) {
        *self.clock.lock().expect("queue clock lock") = clock;
    }

    /// Enqueues one submission — stamping its arrival time — and wakes
    /// the drain loop.
    pub fn push(&self, mut sub: Submission) {
        sub.at_micros = self.clock.lock().expect("queue clock lock").now_micros();
        let mut st = self.state.lock().expect("queue lock");
        if st.items.is_empty() {
            st.first_at = Some(Instant::now());
        }
        st.urgent |= !sub.coalescable();
        st.items.push(sub);
        self.depth_hwm.fetch_max(st.items.len(), Ordering::Relaxed);
        self.wake.notify_all();
    }

    /// Number of submissions waiting for the next cycle.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Deepest the queue has ever been since the server started.
    /// Unlike [`depth`](SubmissionQueue::depth) this survives the
    /// drain, so a past overload episode stays visible in `stats`
    /// after the backlog clears.
    #[must_use]
    pub fn depth_hwm(&self) -> usize {
        self.depth_hwm.load(Ordering::Relaxed)
    }

    /// Flags the server for graceful shutdown: the drain loop flushes
    /// everything pending (answering in-flight queries), then exits;
    /// accept loops stop accepting.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a cycle is due, then takes the whole pending batch
    /// along with the [`WakeReason`] that made it due.
    ///
    /// A cycle fires when any of: something non-coalescable is pending
    /// (control ops don't benefit from lingering), the queue depth
    /// reached `wake_depth`, the oldest pending submission has waited
    /// `linger`, or shutdown was requested (the flush). When several
    /// conditions hold at once the reported reason is the
    /// highest-priority one (shutdown > control > depth > linger).
    /// Returns `None` when shutting down with an empty queue — the
    /// drain loop's exit.
    pub(crate) fn wait_cycle(
        &self,
        linger: Duration,
        wake_depth: usize,
    ) -> Option<(Vec<Submission>, WakeReason)> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            let shutting = self.shutting_down();
            if st.items.is_empty() {
                if shutting {
                    return None;
                }
                st = self.wake.wait_timeout(st, POLL).expect("queue lock").0;
                continue;
            }
            let waited = st.first_at.map_or(Duration::ZERO, |first| first.elapsed());
            let reason = if shutting {
                Some(WakeReason::Shutdown)
            } else if st.urgent {
                Some(WakeReason::Control)
            } else if st.items.len() >= wake_depth {
                Some(WakeReason::Depth)
            } else if waited >= linger {
                Some(WakeReason::Linger)
            } else {
                None
            };
            if let Some(reason) = reason {
                st.first_at = None;
                st.urgent = false;
                return Some((std::mem::take(&mut st.items), reason));
            }
            let remaining = (linger - waited).min(POLL.max(Duration::from_millis(1)));
            st = self.wake.wait_timeout(st, remaining).expect("queue lock").0;
        }
    }
}

type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// The write half of every live connection, keyed by [`ConnectionId`].
///
/// The drain loop is the only writer, so per-connection response
/// order is exactly submission order. A failed write (client went
/// away) drops the connection and is tallied per connection in the
/// response-loss counters, so "how many answers never reached a
/// client" is answerable from the `stats` op after the fact.
#[derive(Default)]
pub struct Connections {
    writers: Mutex<HashMap<ConnectionId, SharedWriter>>,
    next: AtomicU64,
    /// Responses computed but never delivered, keyed by the connection
    /// they were addressed to (gone or mid-write failure). Entries
    /// outlive deregistration — that is the point.
    lost: Mutex<HashMap<ConnectionId, u64>>,
    /// Sum of every count in `lost`, readable without the map lock.
    lost_total: AtomicU64,
}

impl fmt::Debug for Connections {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Connections")
            .field("live", &self.len())
            .finish()
    }
}

impl Connections {
    /// An empty connection table.
    #[must_use]
    pub fn new() -> Self {
        Connections::default()
    }

    /// Registers a connection's write half; returns its id.
    pub fn register(&self, writer: Box<dyn Write + Send>) -> ConnectionId {
        let conn = self.next.fetch_add(1, Ordering::SeqCst);
        self.writers
            .lock()
            .expect("connections lock")
            .insert(conn, Arc::new(Mutex::new(writer)));
        conn
    }

    /// Drops a connection (its reader saw EOF or an error). Responses
    /// already computed for it are discarded at write time.
    pub fn deregister(&self, conn: ConnectionId) {
        self.writers.lock().expect("connections lock").remove(&conn);
    }

    /// Number of live connections.
    #[must_use]
    pub fn len(&self) -> usize {
        self.writers.lock().expect("connections lock").len()
    }

    /// Whether no connection is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes one response line to `conn`, flushing so single-request
    /// clients see their answer immediately. Returns whether the write
    /// succeeded; on failure the connection is dropped.
    pub fn send(&self, conn: ConnectionId, line: &str) -> bool {
        let writer = self
            .writers
            .lock()
            .expect("connections lock")
            .get(&conn)
            .cloned();
        let Some(writer) = writer else {
            self.record_loss(conn);
            return false;
        };
        let mut w = writer.lock().expect("writer lock");
        let ok = writeln!(w, "{line}").and_then(|()| w.flush()).is_ok();
        drop(w);
        if !ok {
            self.deregister(conn);
            self.record_loss(conn);
        }
        ok
    }

    fn record_loss(&self, conn: ConnectionId) {
        *self
            .lost
            .lock()
            .expect("loss lock")
            .entry(conn)
            .or_insert(0) += 1;
        self.lost_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total responses computed but never delivered, across every
    /// connection that ever existed.
    #[must_use]
    pub fn lost_responses(&self) -> u64 {
        self.lost_total.load(Ordering::Relaxed)
    }

    /// Per-connection response-loss counts, sorted by connection id.
    /// Connections with zero losses are absent.
    #[must_use]
    pub fn lost_by_connection(&self) -> Vec<(ConnectionId, u64)> {
        let mut rows: Vec<(ConnectionId, u64)> = self
            .lost
            .lock()
            .expect("loss lock")
            .iter()
            .map(|(&c, &n)| (c, n))
            .collect();
        rows.sort_unstable();
        rows
    }
}

/// Reads frames off `reader` and feeds them into the queue tagged with
/// `conn`, until EOF or a connection-level I/O error. Per-frame
/// failures (oversized, bad UTF-8) are pushed as error submissions so
/// the scheduler answers them in-band, and reading continues.
pub fn pump_frames<R: Read>(
    reader: R,
    conn: ConnectionId,
    queue: &SubmissionQueue,
    max_frame: usize,
) {
    let mut frames = FrameReader::new(reader, max_frame);
    loop {
        match frames.next_frame() {
            Ok(None) => break,
            Ok(Some(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                let request = Value::parse(&line).map_err(|e| format!("bad request: {e}"));
                queue.push(Submission::new(conn, request));
            }
            Err(FrameError::Io(_)) => break,
            Err(recoverable) => {
                queue.push(Submission::new(conn, Err(recoverable.to_string())));
            }
        }
    }
}

/// Attaches the stdio compatibility transport: stdout is registered as
/// a connection and a reader thread pumps stdin into the queue.
/// Returns the stdio connection id (always the first one registered —
/// 0 on a fresh server).
///
/// EOF on stdin requests a graceful server shutdown: stdio is the
/// controlling transport, exactly like the pre-socket serve loop where
/// closing the pipe ended the process (after, now, flushing pending
/// work).
pub fn spawn_stdio(
    connections: &Arc<Connections>,
    queue: &Arc<SubmissionQueue>,
    max_frame: usize,
) -> ConnectionId {
    let conn = connections.register(Box::new(io::stdout()));
    let queue = Arc::clone(queue);
    thread::Builder::new()
        .name("planartest-stdio".into())
        .spawn(move || {
            pump_frames(io::stdin(), conn, &queue, max_frame);
            // EOF on stdin does NOT close stdout: the shutdown flush
            // still answers everything this pipe submitted (the
            // classic `printf '…' | planartest serve` usage).
            queue.request_shutdown();
        })
        .expect("spawn stdio reader");
    conn
}

/// Registers an accepted socket and spawns its reader thread.
fn adopt_stream<S>(
    stream: S,
    writer: Box<dyn Write + Send>,
    connections: &Arc<Connections>,
    queue: &Arc<SubmissionQueue>,
    max_frame: usize,
) where
    S: Read + Send + 'static,
{
    let conn = connections.register(writer);
    let queue = Arc::clone(queue);
    thread::Builder::new()
        .name(format!("planartest-conn-{conn}"))
        .spawn(move || {
            pump_frames(stream, conn, &queue, max_frame);
            // Read-side EOF is NOT deregistration: a client may close
            // its write half and still read its answers (`printf … |
            // nc -U sock`). A fully-gone peer is cleaned up by the
            // first failing write in `Connections::send`.
        })
        .expect("spawn connection reader");
}

/// Starts a unix-socket listener feeding the queue. Any stale socket
/// file at `path` is replaced. The accept loop runs until shutdown.
///
/// # Errors
///
/// Binding failures (permissions, path length, missing directory).
#[cfg(unix)]
pub fn spawn_unix_listener(
    connections: &Arc<Connections>,
    queue: &Arc<SubmissionQueue>,
    path: &Path,
    max_frame: usize,
) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let connections = Arc::clone(connections);
    let queue = Arc::clone(queue);
    thread::Builder::new()
        .name("planartest-unix-accept".into())
        .spawn(move || {
            accept_loop(&listener, &connections, &queue, max_frame, |stream| {
                let stream: UnixStream = stream;
                stream.set_nonblocking(false)?;
                let writer = stream.try_clone()?;
                Ok((stream, Box::new(writer) as Box<dyn Write + Send>))
            });
        })
        .expect("spawn unix accept loop");
    Ok(())
}

/// Starts a TCP listener feeding the queue; returns the bound address
/// (so `--tcp 127.0.0.1:0` callers learn their ephemeral port). The
/// accept loop runs until shutdown.
///
/// # Errors
///
/// Binding failures (address in use, permissions).
pub fn spawn_tcp_listener(
    connections: &Arc<Connections>,
    queue: &Arc<SubmissionQueue>,
    addr: impl ToSocketAddrs,
    max_frame: usize,
) -> io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let connections = Arc::clone(connections);
    let queue = Arc::clone(queue);
    thread::Builder::new()
        .name("planartest-tcp-accept".into())
        .spawn(move || {
            accept_loop(&listener, &connections, &queue, max_frame, |stream| {
                let stream: TcpStream = stream;
                stream.set_nonblocking(false)?;
                let writer = stream.try_clone()?;
                Ok((stream, Box::new(writer) as Box<dyn Write + Send>))
            });
        })
        .expect("spawn tcp accept loop");
    Ok(bound)
}

/// Shared accept loop over any nonblocking listener: polls for new
/// clients, re-checking the shutdown flag between attempts, and adopts
/// each accepted stream. `split` turns the accepted stream into its
/// (read half, boxed write half) pair.
fn accept_loop<L, S, F>(
    listener: &L,
    connections: &Arc<Connections>,
    queue: &Arc<SubmissionQueue>,
    max_frame: usize,
    split: F,
) where
    L: Accept<Stream = S>,
    S: Read + Send + 'static,
    F: Fn(S) -> io::Result<(S, Box<dyn Write + Send>)>,
{
    while !queue.shutting_down() {
        match listener.accept_stream() {
            Ok(stream) => match split(stream) {
                Ok((reader, writer)) => {
                    adopt_stream(reader, writer, connections, queue, max_frame);
                }
                // A client that vanished between accept and setup.
                Err(_) => continue,
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// The tiny listener abstraction the accept loop is generic over.
trait Accept {
    type Stream;
    fn accept_stream(&self) -> io::Result<Self::Stream>;
}

#[cfg(unix)]
impl Accept for UnixListener {
    type Stream = UnixStream;
    fn accept_stream(&self) -> io::Result<UnixStream> {
        self.accept().map(|(s, _)| s)
    }
}

impl Accept for TcpListener {
    type Stream = TcpStream;
    fn accept_stream(&self) -> io::Result<TcpStream> {
        self.accept().map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query_sub(conn: ConnectionId) -> Submission {
        Submission::new(
            conn,
            Ok(Value::obj().field("op", "query").field("graph", "g")),
        )
    }

    fn control_sub(conn: ConnectionId) -> Submission {
        Submission::new(conn, Ok(Value::obj().field("op", "stats")))
    }

    #[test]
    fn coalescable_classification() {
        assert!(query_sub(0).coalescable());
        assert!(Submission::new(0, Ok(Value::obj().field("op", "batch"))).coalescable());
        assert!(!control_sub(0).coalescable());
        assert!(!Submission::new(0, Err("bad".into())).coalescable());
    }

    #[test]
    fn control_ops_fire_a_lingering_cycle_immediately() {
        let q = SubmissionQueue::new();
        q.push(query_sub(1));
        q.push(control_sub(2));
        // Huge linger + depth, yet the control op makes the cycle due.
        let (cycle, reason) = q
            .wait_cycle(Duration::from_secs(3600), usize::MAX)
            .expect("cycle");
        assert_eq!(cycle.len(), 2);
        assert_eq!(cycle[0].conn, 1);
        assert_eq!(reason, WakeReason::Control);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn wake_depth_fires_without_linger_expiry() {
        let q = SubmissionQueue::new();
        q.push(query_sub(1));
        q.push(query_sub(2));
        let (cycle, reason) = q.wait_cycle(Duration::from_secs(3600), 2).expect("cycle");
        assert_eq!(cycle.len(), 2);
        assert_eq!(reason, WakeReason::Depth);
    }

    #[test]
    fn push_stamps_arrival_on_the_injected_clock() {
        let q = SubmissionQueue::new();
        let (clock, handle) = Clock::mock(0);
        q.set_clock(clock);
        handle.advance(111);
        q.push(query_sub(1));
        handle.advance(222);
        q.push(query_sub(2));
        let (cycle, _) = q.wait_cycle(Duration::ZERO, usize::MAX).expect("cycle");
        assert_eq!(cycle[0].at_micros, 111);
        assert_eq!(cycle[1].at_micros, 333);
    }

    #[test]
    fn linger_expiry_fires_and_shutdown_flushes() {
        let q = SubmissionQueue::new();
        q.push(query_sub(1));
        let t = Instant::now();
        let (cycle, reason) = q
            .wait_cycle(Duration::from_millis(40), usize::MAX)
            .expect("cycle");
        assert_eq!(cycle.len(), 1);
        assert_eq!(reason, WakeReason::Linger);
        assert!(t.elapsed() >= Duration::from_millis(40));

        // Shutdown with pending work: the flush cycle fires instantly…
        q.push(query_sub(3));
        q.request_shutdown();
        let (flush, reason) = q
            .wait_cycle(Duration::from_secs(3600), usize::MAX)
            .expect("flush cycle");
        assert_eq!(flush.len(), 1);
        assert_eq!(reason, WakeReason::Shutdown);
        // …and an empty shutdown queue ends the loop.
        assert!(q
            .wait_cycle(Duration::from_secs(3600), usize::MAX)
            .is_none());
        assert!(q.shutting_down());
    }

    #[test]
    fn depth_hwm_survives_the_drain() {
        let q = SubmissionQueue::new();
        assert_eq!(q.depth_hwm(), 0);
        q.push(query_sub(1));
        q.push(query_sub(2));
        q.push(query_sub(3));
        assert_eq!(q.depth_hwm(), 3);
        let (cycle, _) = q.wait_cycle(Duration::ZERO, usize::MAX).expect("cycle");
        assert_eq!(cycle.len(), 3);
        assert_eq!(q.depth(), 0, "instantaneous depth resets on drain");
        assert_eq!(q.depth_hwm(), 3, "high-water mark does not");
        // A shallower refill cannot lower it.
        q.push(query_sub(4));
        assert_eq!(q.depth_hwm(), 3);
    }

    #[test]
    fn undeliverable_responses_are_counted_per_connection() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let conns = Connections::new();
        let ok = conns.register(Box::new(io::sink()));
        let broken = conns.register(Box::new(FailingWriter));
        assert_eq!(conns.lost_responses(), 0);
        assert!(conns.send(ok, "delivered"));
        assert!(!conns.send(broken, "first loss drops the connection"));
        assert!(!conns.send(broken, "second loss hits a gone connection"));
        assert!(!conns.send(777, "never-registered target"));
        assert_eq!(conns.lost_responses(), 3);
        assert_eq!(
            conns.lost_by_connection(),
            vec![(broken, 2), (777, 1)],
            "losses are attributed to the addressed connection"
        );
        assert_eq!(conns.len(), 1, "the broken connection was dropped");
    }

    #[test]
    fn connections_route_and_drop() {
        let conns = Connections::new();
        let sink: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct SharedSink(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedSink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let a = conns.register(Box::new(SharedSink(Arc::clone(&sink))));
        let b = conns.register(Box::new(io::sink()));
        assert_ne!(a, b);
        assert_eq!(conns.len(), 2);
        assert!(conns.send(a, "hello"));
        assert_eq!(
            String::from_utf8(sink.lock().unwrap().clone()).unwrap(),
            "hello\n"
        );
        conns.deregister(b);
        assert!(
            !conns.send(b, "gone"),
            "dropped connections are unreachable"
        );
        assert_eq!(conns.len(), 1);
        assert!(!conns.is_empty());
        assert!(format!("{conns:?}").contains("live"));
    }

    #[test]
    fn pump_reports_bad_frames_in_band_and_keeps_reading() {
        let queue = SubmissionQueue::new();
        let mut input = Vec::new();
        input.extend_from_slice(b"{\"op\":\"stats\"}\n");
        input.extend_from_slice(b"not json\n");
        input.extend_from_slice(&[b'x'; 64]);
        input.push(b'\n');
        input.extend_from_slice(b"\xff\xfe\n");
        input.extend_from_slice(b"  \n"); // blank: skipped entirely
        input.extend_from_slice(b"{\"op\":\"families\"}\n");
        pump_frames(&input[..], 9, &queue, 32);
        let (subs, _) = queue.wait_cycle(Duration::ZERO, usize::MAX).expect("cycle");
        assert_eq!(subs.len(), 5);
        assert!(subs.iter().all(|s| s.conn == 9));
        assert!(subs[0].request.is_ok());
        assert!(subs[1]
            .request
            .as_ref()
            .unwrap_err()
            .contains("bad request"));
        assert!(subs[2].request.as_ref().unwrap_err().contains("32-byte"));
        assert!(subs[3].request.as_ref().unwrap_err().contains("UTF-8"));
        assert!(subs[4].request.is_ok());
    }
}
