//! The transport layer: listeners, connections, outbound writers, and
//! the shared submission queue.
//!
//! `planartest serve` used to be a synchronous loop over one stdin
//! pipe. This module decouples *how requests arrive* from *how they
//! are scheduled*: every transport (stdio, unix socket, TCP) frames
//! its byte stream into LDJSON requests ([`FrameReader`]) and pushes
//! them — tagged with a [`ConnectionId`] — into one shared
//! [`SubmissionQueue`]. The scheduler's background drain loop
//! (`scheduler::Server`) is the only consumer; it routes each response
//! back through [`Connections`] to the connection that asked, in that
//! connection's submission order.
//!
//! Per-connection failures stay per-connection: an oversized or
//! garbage frame becomes an in-band `{"ok":false,...}` response (the
//! reader resynchronises on the next newline), and a dead socket just
//! drops its connection. No *frame* a client sends can take the
//! server down.
//!
//! The output side is decoupled the same way. Each connection owns a
//! bounded **outbound queue** drained by a dedicated writer thread, so
//! a live client that stops *reading* while responses pile into its
//! full socket buffer stalls only its own writer — never the drain
//! loop. When a connection's outbound queue is full the newest
//! response for it is **shed** (counted separately from undeliverable
//! losses): the client asked faster than it reads, so it pays, nobody
//! else. On the inbound side a per-connection **in-flight cap** blocks
//! that connection's reader once too many of its submissions are
//! unanswered, so a firehose cannot starve the shared submission
//! queue either.
//!
//! End-of-life: read-side EOF never tears down a connection's write
//! half — a client may close its sending side and still collect its
//! answers (`printf '…' | nc -U sock`, or the stdio pipe itself). A
//! connection is dropped when a *write* to it fails; EOF on *stdin*
//! additionally requests a graceful shutdown of the whole server (the
//! drain loop flushes every pending query before exiting), which is
//! also what the CLI's SIGTERM handler triggers. The shutdown flush
//! closes every outbound queue, waits a short grace period for the
//! writers to drain, force-closes sockets whose writers are stuck on a
//! non-reading peer, and joins the writer threads — responses that
//! could not be delivered during that window are tallied separately
//! from mid-flight losses.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::protocol;
use crate::telemetry::{Clock, Telemetry, WakeReason};
use crate::wire::{FrameError, FrameReader, Value};

/// Identifies one client connection for the lifetime of the server.
/// Ids are handed out in registration order with no reserved values;
/// the CLI attaches stdio first (unless `--no-stdio`), so stdio is
/// connection 0 *there*, but embedders that go straight to
/// [`spawn_unix_listener`]/[`spawn_tcp_listener`] hand id 0 to their
/// first socket client.
pub type ConnectionId = u64;

/// How often blocked waits re-check the shutdown flag (accept loops,
/// the empty-queue wait in the drain loop, and the in-flight gate).
const POLL: Duration = Duration::from_millis(25);

/// A single response write slower than this counts as a writer stall
/// (a peer that is alive but not keeping up with its socket).
const WRITER_STALL_MICROS: u64 = 5_000;

/// How long the shutdown flush waits for outbound writers to drain
/// before force-closing their sockets.
const FLUSH_GRACE: Duration = Duration::from_secs(2);

/// One framed request as the scheduler sees it: where it came from,
/// and either the parsed JSON document or the per-frame failure to
/// answer in-band.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The connection the response must be routed back to.
    pub conn: ConnectionId,
    /// The parsed request, or the framing/parse error message.
    pub request: Result<Value, String>,
    /// When this submission entered the queue, on the service clock
    /// (stamped by [`SubmissionQueue::push`]; the origin of the
    /// queue-wait stage span).
    pub at_micros: u64,
}

impl Submission {
    /// A submission awaiting its arrival stamp (set by
    /// [`SubmissionQueue::push`]).
    #[must_use]
    pub fn new(conn: ConnectionId, request: Result<Value, String>) -> Submission {
        Submission {
            conn,
            request,
            at_micros: 0,
        }
    }

    /// Whether this submission benefits from waiting in the queue.
    /// Only `query`/`batch` requests coalesce; control ops (ingest,
    /// stats, …) and malformed frames wake the drain loop immediately.
    #[must_use]
    pub fn coalescable(&self) -> bool {
        matches!(&self.request, Ok(req) if protocol::coalescable(req))
    }
}

#[derive(Debug, Default)]
struct QueueState {
    items: Vec<Submission>,
    /// When the oldest pending submission arrived (the linger clock).
    first_at: Option<Instant>,
    /// Whether anything pending is non-coalescable.
    urgent: bool,
    /// Whether the exec pool has finished the overlapped cycle (the
    /// pipelined drain loop's rendezvous; see [`SubmissionQueue::
    /// wait_overlap`]). Lives under the queue mutex so the done signal
    /// and the new-submission signal share one condvar without lost
    /// wakeups.
    exec_done: bool,
}

/// The shared submission queue between all transports and the one
/// drain loop.
///
/// Transports [`push`](SubmissionQueue::push); the scheduler's drain
/// thread takes whole cycles via `wait_cycle`. The queue also carries
/// the server-wide shutdown flag so accept loops, transports and the
/// drain loop agree on one source of truth.
#[derive(Debug)]
pub struct SubmissionQueue {
    state: Mutex<QueueState>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Deepest the queue has ever been (updated by [`push`]
    /// (SubmissionQueue::push), never reset): the after-the-fact
    /// overload witness the `stats` op reports as `queue_depth_hwm`.
    depth_hwm: AtomicUsize,
    /// The clock arrival stamps are taken on. Replaced with the
    /// service's telemetry clock by `Server::start`, so queue-wait
    /// spans and scheduler stage spans share one timebase.
    clock: Mutex<Clock>,
}

impl Default for SubmissionQueue {
    fn default() -> Self {
        SubmissionQueue {
            state: Mutex::default(),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            depth_hwm: AtomicUsize::new(0),
            clock: Mutex::new(Clock::wall()),
        }
    }
}

impl SubmissionQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        SubmissionQueue::default()
    }

    /// Replaces the clock arrival stamps are taken on (the server wires
    /// in the service's telemetry clock so all stage spans share one
    /// timebase).
    pub fn set_clock(&self, clock: Clock) {
        *self.clock.lock().expect("queue clock lock") = clock;
    }

    /// Enqueues one submission — stamping its arrival time — and wakes
    /// the drain loop.
    pub fn push(&self, mut sub: Submission) {
        sub.at_micros = self.clock.lock().expect("queue clock lock").now_micros();
        let mut st = self.state.lock().expect("queue lock");
        if st.items.is_empty() {
            st.first_at = Some(Instant::now());
        }
        st.urgent |= !sub.coalescable();
        st.items.push(sub);
        self.depth_hwm.fetch_max(st.items.len(), Ordering::Relaxed);
        self.wake.notify_all();
    }

    /// Number of submissions waiting for the next cycle.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Deepest the queue has ever been since the server started.
    /// Unlike [`depth`](SubmissionQueue::depth) this survives the
    /// drain, so a past overload episode stays visible in `stats`
    /// after the backlog clears.
    #[must_use]
    pub fn depth_hwm(&self) -> usize {
        self.depth_hwm.load(Ordering::Relaxed)
    }

    /// Flags the server for graceful shutdown: the drain loop flushes
    /// everything pending (answering in-flight queries), then exits;
    /// accept loops stop accepting.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a cycle is due, then takes the whole pending batch
    /// along with the [`WakeReason`] that made it due.
    ///
    /// A cycle fires when any of: something non-coalescable is pending
    /// (control ops don't benefit from lingering), the queue depth
    /// reached `wake_depth`, the oldest pending submission has waited
    /// `linger`, or shutdown was requested (the flush). When several
    /// conditions hold at once the reported reason is the
    /// highest-priority one (shutdown > control > depth > linger).
    /// Returns `None` when shutting down with an empty queue — the
    /// drain loop's exit.
    pub(crate) fn wait_cycle(
        &self,
        linger: Duration,
        wake_depth: usize,
    ) -> Option<(Vec<Submission>, WakeReason)> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            let shutting = self.shutting_down();
            if st.items.is_empty() {
                if shutting {
                    return None;
                }
                st = self.wake.wait_timeout(st, POLL).expect("queue lock").0;
                continue;
            }
            let waited = st.first_at.map_or(Duration::ZERO, |first| first.elapsed());
            let reason = if shutting {
                Some(WakeReason::Shutdown)
            } else if st.urgent {
                Some(WakeReason::Control)
            } else if st.items.len() >= wake_depth {
                Some(WakeReason::Depth)
            } else if waited >= linger {
                Some(WakeReason::Linger)
            } else {
                None
            };
            if let Some(reason) = reason {
                st.first_at = None;
                st.urgent = false;
                return Some((std::mem::take(&mut st.items), reason));
            }
            let remaining = (linger - waited).min(POLL.max(Duration::from_millis(1)));
            st = self.wake.wait_timeout(st, remaining).expect("queue lock").0;
        }
    }

    /// Marks the start of an overlapped engine pass: until
    /// [`pipeline_done`](SubmissionQueue::pipeline_done) the drain
    /// thread collects fresh submissions through
    /// [`wait_overlap`](SubmissionQueue::wait_overlap).
    pub(crate) fn pipeline_begin(&self) {
        self.state.lock().expect("queue lock").exec_done = false;
    }

    /// Signals that the overlapped engine pass finished (called by the
    /// exec thread); wakes the drain thread out of
    /// [`wait_overlap`](SubmissionQueue::wait_overlap).
    pub(crate) fn pipeline_done(&self) {
        self.state.lock().expect("queue lock").exec_done = true;
        self.wake.notify_all();
    }

    /// Waits while an overlapped engine pass runs: returns
    /// `Some(batch)` as soon as fresh submissions arrive (so the drain
    /// thread can resolve them under the exec pass), or `None` once
    /// the pass finished or shutdown was requested — in which case any
    /// pending submissions stay queued for the next
    /// [`wait_cycle`](SubmissionQueue::wait_cycle).
    pub(crate) fn wait_overlap(&self) -> Option<Vec<Submission>> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if st.exec_done || self.shutting_down() {
                return None;
            }
            if !st.items.is_empty() {
                st.first_at = None;
                st.urgent = false;
                return Some(std::mem::take(&mut st.items));
            }
            st = self.wake.wait_timeout(st, POLL).expect("queue lock").0;
        }
    }
}

type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// One connection's bounded outbound queue, drained by its dedicated
/// writer thread.
#[derive(Default)]
struct Outbound {
    state: Mutex<OutboundState>,
    /// Signals the writer thread: new line queued, or queue closed.
    ready: Condvar,
    /// Signals the shutdown flush: queue drained (or writer died).
    drained: Condvar,
}

#[derive(Default)]
struct OutboundState {
    lines: VecDeque<String>,
    /// No further enqueues; the writer drains what is queued and
    /// exits.
    closed: bool,
    /// The writer hit a write failure; the queue is abandoned.
    dead: bool,
    /// The writer popped a line and is mid-write (so "drained" is
    /// `lines.is_empty() && !writing`).
    writing: bool,
}

/// Counters shared between [`Connections`] and every writer thread.
#[derive(Default)]
struct OutboundTotals {
    /// Mid-flight losses (server running, response undeliverable),
    /// keyed by the addressed connection. Entries outlive
    /// deregistration — that is the point.
    lost: Mutex<HashMap<ConnectionId, u64>>,
    /// Sum of every count in `lost`, readable without the map lock.
    lost_total: AtomicU64,
    /// Losses during the shutdown flush window (peer gone or still
    /// not reading when the grace period expired) — deliberately a
    /// separate ledger from mid-flight losses.
    lost_shutdown: AtomicU64,
    /// Responses dropped because the addressed connection's outbound
    /// queue was full: the shed policy, not a delivery failure.
    shed: AtomicU64,
    /// Deepest any single connection's outbound queue has been.
    outbound_hwm: AtomicUsize,
    /// Single response writes slower than [`WRITER_STALL_MICROS`].
    stalls: AtomicU64,
    /// Set once the drain loop enters its shutdown flush; flips loss
    /// attribution from `lost` to `lost_shutdown`.
    flushing: AtomicBool,
    /// Write-span telemetry sink (installed by `Server::start`).
    telemetry: Mutex<Option<Arc<Telemetry>>>,
}

impl OutboundTotals {
    fn record_losses(&self, conn: ConnectionId, count: u64) {
        if count == 0 {
            return;
        }
        if self.flushing.load(Ordering::Relaxed) {
            self.lost_shutdown.fetch_add(count, Ordering::Relaxed);
        } else {
            *self
                .lost
                .lock()
                .expect("loss lock")
                .entry(conn)
                .or_insert(0) += count;
            self.lost_total.fetch_add(count, Ordering::Relaxed);
        }
    }
}

/// The write half of every live connection, keyed by [`ConnectionId`].
///
/// Responses are enqueued onto a bounded per-connection outbound
/// queue and written by that connection's dedicated writer thread, so
/// one stalled client never blocks the drain loop or its neighbours.
/// Per-connection response order is exactly submission order (one
/// queue, one writer). A full queue sheds the newest response for
/// that connection (`responses_shed`); a failed write (client went
/// away) drops the connection and is tallied per connection in the
/// response-loss counters, so "how many answers never reached a
/// client" is answerable from the `stats` op after the fact —
/// mid-flight losses and shutdown-flush losses on separate ledgers.
#[derive(Default)]
pub struct Connections {
    writers: Mutex<HashMap<ConnectionId, SharedWriter>>,
    outbounds: Mutex<HashMap<ConnectionId, Arc<Outbound>>>,
    writer_threads: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Force-close hooks (socket `shutdown(Both)`) used to unstick
    /// writers blocked on a non-reading peer during the flush.
    closers: Mutex<HashMap<ConnectionId, Box<dyn Fn() + Send>>>,
    next: AtomicU64,
    totals: Arc<OutboundTotals>,
    /// Submissions admitted but not yet answered, per connection (the
    /// inbound backpressure gate).
    in_flight: Mutex<HashMap<ConnectionId, usize>>,
    in_flight_wake: Condvar,
    /// Outbound queue capacity per connection; 0 = unbounded.
    outbound_depth: AtomicUsize,
    /// In-flight submission cap per connection; 0 = unbounded.
    max_in_flight: AtomicUsize,
}

impl fmt::Debug for Connections {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Connections")
            .field("live", &self.len())
            .finish()
    }
}

impl Connections {
    /// An empty connection table (unbounded queues until
    /// [`set_limits`](Connections::set_limits)).
    #[must_use]
    pub fn new() -> Self {
        Connections::default()
    }

    /// Sets the per-connection backpressure caps: `outbound_depth`
    /// responses may queue for a slow reader before shedding starts,
    /// and `max_in_flight` submissions may be unanswered before a
    /// connection's reader blocks. 0 means unbounded.
    pub fn set_limits(&self, outbound_depth: usize, max_in_flight: usize) {
        self.outbound_depth.store(outbound_depth, Ordering::Relaxed);
        self.max_in_flight.store(max_in_flight, Ordering::Relaxed);
    }

    /// Installs the telemetry sink writer threads stamp response-write
    /// spans on.
    pub(crate) fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        *self.totals.telemetry.lock().expect("telemetry lock") = Some(telemetry);
    }

    /// Registers a connection's write half; returns its id. A
    /// dedicated writer thread is spawned to drain the connection's
    /// outbound queue.
    pub fn register(&self, writer: Box<dyn Write + Send>) -> ConnectionId {
        let conn = self.next.fetch_add(1, Ordering::SeqCst);
        let writer: SharedWriter = Arc::new(Mutex::new(writer));
        let outbound = Arc::new(Outbound::default());
        self.writers
            .lock()
            .expect("connections lock")
            .insert(conn, Arc::clone(&writer));
        self.outbounds
            .lock()
            .expect("outbounds lock")
            .insert(conn, Arc::clone(&outbound));
        let totals = Arc::clone(&self.totals);
        let handle = thread::Builder::new()
            .name(format!("planartest-writer-{conn}"))
            .spawn(move || writer_loop(conn, &outbound, &writer, &totals))
            .expect("spawn outbound writer");
        self.writer_threads
            .lock()
            .expect("writer threads lock")
            .push(handle);
        conn
    }

    /// Installs the force-close hook for a connection (socket
    /// transports only; used by the shutdown flush to unstick a writer
    /// blocked on a peer that stopped reading).
    fn set_closer(&self, conn: ConnectionId, closer: Box<dyn Fn() + Send>) {
        self.closers
            .lock()
            .expect("closers lock")
            .insert(conn, closer);
    }

    /// Drops a connection (its reader saw EOF or an error). Responses
    /// already computed for it are discarded at write time; responses
    /// already queued outbound are still written by the writer thread
    /// before it exits.
    pub fn deregister(&self, conn: ConnectionId) {
        self.writers.lock().expect("connections lock").remove(&conn);
        let outbound = self.outbounds.lock().expect("outbounds lock").remove(&conn);
        if let Some(outbound) = outbound {
            outbound.state.lock().expect("outbound lock").closed = true;
            outbound.ready.notify_all();
        }
        self.closers.lock().expect("closers lock").remove(&conn);
    }

    /// Number of live connections.
    #[must_use]
    pub fn len(&self) -> usize {
        self.writers.lock().expect("connections lock").len()
    }

    /// Whether no connection is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes one response line to `conn` synchronously, bypassing the
    /// outbound queue (embedders driving [`Connections`] directly;
    /// the server's drain loop uses the queued `enqueue` path).
    /// Returns whether the write succeeded; on failure the connection
    /// is dropped.
    pub fn send(&self, conn: ConnectionId, line: &str) -> bool {
        let writer = self
            .writers
            .lock()
            .expect("connections lock")
            .get(&conn)
            .cloned();
        let Some(writer) = writer else {
            self.totals.record_losses(conn, 1);
            return false;
        };
        let mut w = writer.lock().expect("writer lock");
        let ok = writeln!(w, "{line}").and_then(|()| w.flush()).is_ok();
        drop(w);
        if !ok {
            self.deregister(conn);
            self.totals.record_losses(conn, 1);
        }
        ok
    }

    /// Hands one response line to `conn`'s writer thread, releasing
    /// the submission slot the response answers. Returns `false` when
    /// the response could not be queued: the connection is gone (a
    /// loss) or its outbound queue is full (a shed).
    pub(crate) fn enqueue(&self, conn: ConnectionId, line: &str) -> bool {
        self.release_submission_slot(conn);
        let outbound = self
            .outbounds
            .lock()
            .expect("outbounds lock")
            .get(&conn)
            .cloned();
        let Some(outbound) = outbound else {
            self.totals.record_losses(conn, 1);
            return false;
        };
        let cap = self.outbound_depth.load(Ordering::Relaxed);
        let mut st = outbound.state.lock().expect("outbound lock");
        if st.closed || st.dead {
            drop(st);
            self.totals.record_losses(conn, 1);
            return false;
        }
        if cap > 0 && st.lines.len() >= cap {
            drop(st);
            self.totals.shed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        st.lines.push_back(line.to_string());
        self.totals
            .outbound_hwm
            .fetch_max(st.lines.len(), Ordering::Relaxed);
        drop(st);
        outbound.ready.notify_all();
        true
    }

    /// Blocks until `conn` may have another submission in flight (or
    /// `abort` turns true, e.g. server shutdown). Returns whether the
    /// slot was acquired. Connections under the cap — or an unbounded
    /// (0) cap — acquire immediately.
    pub(crate) fn acquire_submission_slot(
        &self,
        conn: ConnectionId,
        abort: &dyn Fn() -> bool,
    ) -> bool {
        loop {
            if abort() {
                return false;
            }
            let cap = self.max_in_flight.load(Ordering::Relaxed);
            let mut m = self.in_flight.lock().expect("in-flight lock");
            let count = m.entry(conn).or_insert(0);
            if cap == 0 || *count < cap {
                *count += 1;
                return true;
            }
            let _ = self
                .in_flight_wake
                .wait_timeout(m, POLL)
                .expect("in-flight lock");
        }
    }

    /// Releases one in-flight slot for `conn` (its response's fate was
    /// decided: queued, shed or lost). Saturates at zero so responses
    /// to submissions that never went through the gate are harmless.
    fn release_submission_slot(&self, conn: ConnectionId) {
        let mut m = self.in_flight.lock().expect("in-flight lock");
        if let Some(count) = m.get_mut(&conn) {
            *count = count.saturating_sub(1);
        }
        drop(m);
        self.in_flight_wake.notify_all();
    }

    /// Flips loss attribution to the shutdown ledger. Called by the
    /// drain loop the moment it starts its shutdown flush, so
    /// responses that fail delivery from here on are "lost during
    /// shutdown", not mid-flight.
    pub(crate) fn begin_shutdown_flush(&self) {
        self.totals.flushing.store(true, Ordering::Relaxed);
    }

    /// Closes every outbound queue, waits up to a grace period for the
    /// writers to drain, force-closes sockets whose writers are stuck
    /// on a non-reading peer, and joins all writer threads. After this
    /// returns, every deliverable response has been written.
    pub(crate) fn finish_shutdown_flush(&self) {
        self.begin_shutdown_flush();
        let outbounds: Vec<(ConnectionId, Arc<Outbound>)> = self
            .outbounds
            .lock()
            .expect("outbounds lock")
            .iter()
            .map(|(&c, ob)| (c, Arc::clone(ob)))
            .collect();
        for (_, outbound) in &outbounds {
            outbound.state.lock().expect("outbound lock").closed = true;
            outbound.ready.notify_all();
        }
        let deadline = Instant::now() + FLUSH_GRACE;
        for (conn, outbound) in &outbounds {
            let mut st = outbound.state.lock().expect("outbound lock");
            loop {
                if st.dead || (st.lines.is_empty() && !st.writing) {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                st = outbound
                    .drained
                    .wait_timeout(st, deadline - now)
                    .expect("outbound lock")
                    .0;
            }
            let stuck = !st.dead && (!st.lines.is_empty() || st.writing);
            drop(st);
            if stuck {
                if let Some(closer) = self.closers.lock().expect("closers lock").get(conn) {
                    closer();
                }
            }
        }
        let handles =
            std::mem::take(&mut *self.writer_threads.lock().expect("writer threads lock"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Total responses computed but never delivered while the server
    /// was running (shutdown-flush losses are on a separate ledger:
    /// [`lost_shutdown_responses`](Connections::lost_shutdown_responses)).
    #[must_use]
    pub fn lost_responses(&self) -> u64 {
        self.totals.lost_total.load(Ordering::Relaxed)
    }

    /// Responses that could not be delivered during the shutdown
    /// flush (peer gone, or still not reading when the grace period
    /// expired).
    #[must_use]
    pub fn lost_shutdown_responses(&self) -> u64 {
        self.totals.lost_shutdown.load(Ordering::Relaxed)
    }

    /// Responses shed because the addressed connection's outbound
    /// queue was full — the bounded-queue policy working, not a
    /// delivery failure.
    #[must_use]
    pub fn shed_responses(&self) -> u64 {
        self.totals.shed.load(Ordering::Relaxed)
    }

    /// Deepest any single connection's outbound queue has been.
    #[must_use]
    pub fn outbound_depth_hwm(&self) -> usize {
        self.totals.outbound_hwm.load(Ordering::Relaxed)
    }

    /// Single response writes that took suspiciously long (a live peer
    /// not keeping up with its socket).
    #[must_use]
    pub fn writer_stalls(&self) -> u64 {
        self.totals.stalls.load(Ordering::Relaxed)
    }

    /// Per-connection mid-flight response-loss counts, sorted by
    /// connection id. Connections with zero losses are absent.
    #[must_use]
    pub fn lost_by_connection(&self) -> Vec<(ConnectionId, u64)> {
        let mut rows: Vec<(ConnectionId, u64)> = self
            .totals
            .lost
            .lock()
            .expect("loss lock")
            .iter()
            .map(|(&c, &n)| (c, n))
            .collect();
        rows.sort_unstable();
        rows
    }
}

/// One connection's writer thread: takes *everything* queued on the
/// outbound in one gulp and writes it with a single flush — queue
/// depth amortizes straight into fewer syscalls under load — stamping
/// one write span per line on the service telemetry. A failed write
/// marks the queue dead and counts the whole unflushed gulp plus
/// everything still queued as losses (mid-flight or shutdown,
/// depending on the flush flag).
fn writer_loop(
    conn: ConnectionId,
    outbound: &Outbound,
    writer: &SharedWriter,
    totals: &OutboundTotals,
) {
    loop {
        let batch = {
            let mut st = outbound.state.lock().expect("outbound lock");
            loop {
                if !st.lines.is_empty() {
                    st.writing = true;
                    break Some(std::mem::take(&mut st.lines));
                }
                if st.closed || st.dead {
                    break None;
                }
                st = outbound.ready.wait(st).expect("outbound lock");
            }
        };
        let Some(batch) = batch else {
            outbound.drained.notify_all();
            return;
        };
        let telemetry = totals.telemetry.lock().expect("telemetry lock").clone();
        let started_micros = telemetry.as_ref().map(|t| t.now_micros());
        let started = Instant::now();
        let ok = {
            let mut w = writer.lock().expect("writer lock");
            let mut payload = String::with_capacity(batch.iter().map(|l| l.len() + 1).sum());
            for line in &batch {
                payload.push_str(line);
                payload.push('\n');
            }
            w.write_all(payload.as_bytes())
                .and_then(|()| w.flush())
                .is_ok()
        };
        let took_micros = match (&telemetry, started_micros) {
            (Some(t), Some(at)) => {
                let took = t.now_micros().saturating_sub(at);
                // The flush covered the whole batch; attribute the
                // span evenly so per-line write telemetry stays sane.
                let per_line = took / batch.len() as u64;
                for _ in 0..batch.len() {
                    t.record_write(per_line);
                }
                took
            }
            _ => u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
        };
        if took_micros > WRITER_STALL_MICROS {
            totals.stalls.fetch_add(1, Ordering::Relaxed);
        }
        let mut st = outbound.state.lock().expect("outbound lock");
        st.writing = false;
        if !ok {
            st.dead = true;
            let undelivered = batch.len() as u64 + st.lines.len() as u64;
            st.lines.clear();
            drop(st);
            totals.record_losses(conn, undelivered);
            outbound.drained.notify_all();
            return;
        }
        if st.lines.is_empty() {
            outbound.drained.notify_all();
        }
    }
}

/// Reads frames off `reader` and feeds them into the queue tagged with
/// `conn`, until EOF or a connection-level I/O error. Per-frame
/// failures (oversized, bad UTF-8) are pushed as error submissions so
/// the scheduler answers them in-band, and reading continues. Each
/// submission first acquires `conn`'s in-flight slot, so a firehose
/// connection blocks here — in its own reader thread — instead of
/// flooding the shared queue.
pub fn pump_frames<R: Read>(
    reader: R,
    conn: ConnectionId,
    queue: &SubmissionQueue,
    connections: &Connections,
    max_frame: usize,
) {
    let mut frames = FrameReader::new(reader, max_frame);
    let abort = || queue.shutting_down();
    loop {
        match frames.next_frame() {
            Ok(None) => break,
            Ok(Some(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                let request = Value::parse(&line).map_err(|e| format!("bad request: {e}"));
                if !connections.acquire_submission_slot(conn, &abort) {
                    break;
                }
                queue.push(Submission::new(conn, request));
            }
            Err(FrameError::Io(_)) => break,
            Err(recoverable) => {
                if !connections.acquire_submission_slot(conn, &abort) {
                    break;
                }
                queue.push(Submission::new(conn, Err(recoverable.to_string())));
            }
        }
    }
}

/// Attaches the stdio compatibility transport: stdout is registered as
/// a connection and a reader thread pumps stdin into the queue.
/// Returns the stdio connection id (always the first one registered —
/// 0 on a fresh server).
///
/// EOF on stdin requests a graceful server shutdown: stdio is the
/// controlling transport, exactly like the pre-socket serve loop where
/// closing the pipe ended the process (after, now, flushing pending
/// work).
pub fn spawn_stdio(
    connections: &Arc<Connections>,
    queue: &Arc<SubmissionQueue>,
    max_frame: usize,
) -> ConnectionId {
    let conn = connections.register(Box::new(io::stdout()));
    let queue = Arc::clone(queue);
    let connections = Arc::clone(connections);
    thread::Builder::new()
        .name("planartest-stdio".into())
        .spawn(move || {
            pump_frames(io::stdin(), conn, &queue, &connections, max_frame);
            // EOF on stdin does NOT close stdout: the shutdown flush
            // still answers everything this pipe submitted (the
            // classic `printf '…' | planartest serve` usage).
            queue.request_shutdown();
        })
        .expect("spawn stdio reader");
    conn
}

/// Registers an accepted socket and spawns its reader thread. The
/// optional `closer` force-closes the socket (used by the shutdown
/// flush to unstick a writer blocked on a non-reading peer).
fn adopt_stream<S>(
    stream: S,
    writer: Box<dyn Write + Send>,
    closer: Option<Box<dyn Fn() + Send>>,
    connections: &Arc<Connections>,
    queue: &Arc<SubmissionQueue>,
    max_frame: usize,
) where
    S: Read + Send + 'static,
{
    let conn = connections.register(writer);
    if let Some(closer) = closer {
        connections.set_closer(conn, closer);
    }
    let queue = Arc::clone(queue);
    let connections = Arc::clone(connections);
    thread::Builder::new()
        .name(format!("planartest-conn-{conn}"))
        .spawn(move || {
            pump_frames(stream, conn, &queue, &connections, max_frame);
            // Read-side EOF is NOT deregistration: a client may close
            // its write half and still read its answers (`printf … |
            // nc -U sock`). A fully-gone peer is cleaned up by the
            // first failing write in the writer thread.
        })
        .expect("spawn connection reader");
}

/// What a listener's `split` hands to [`adopt_stream`]: the read half,
/// the boxed write half, and an optional force-close hook.
type SplitStream<S> = (S, Box<dyn Write + Send>, Option<Box<dyn Fn() + Send>>);

/// Starts a unix-socket listener feeding the queue. Any stale socket
/// file at `path` is replaced. The accept loop runs until shutdown.
///
/// # Errors
///
/// Binding failures (permissions, path length, missing directory).
#[cfg(unix)]
pub fn spawn_unix_listener(
    connections: &Arc<Connections>,
    queue: &Arc<SubmissionQueue>,
    path: &Path,
    max_frame: usize,
) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let connections = Arc::clone(connections);
    let queue = Arc::clone(queue);
    thread::Builder::new()
        .name("planartest-unix-accept".into())
        .spawn(move || {
            accept_loop(&listener, &connections, &queue, max_frame, |stream| {
                let stream: UnixStream = stream;
                stream.set_nonblocking(false)?;
                let writer = stream.try_clone()?;
                let close_half = stream.try_clone()?;
                let closer = Box::new(move || {
                    let _ = close_half.shutdown(Shutdown::Both);
                });
                Ok((
                    stream,
                    Box::new(writer) as Box<dyn Write + Send>,
                    Some(closer as Box<dyn Fn() + Send>),
                ))
            });
        })
        .expect("spawn unix accept loop");
    Ok(())
}

/// Starts a TCP listener feeding the queue; returns the bound address
/// (so `--tcp 127.0.0.1:0` callers learn their ephemeral port). The
/// accept loop runs until shutdown.
///
/// # Errors
///
/// Binding failures (address in use, permissions).
pub fn spawn_tcp_listener(
    connections: &Arc<Connections>,
    queue: &Arc<SubmissionQueue>,
    addr: impl ToSocketAddrs,
    max_frame: usize,
) -> io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let connections = Arc::clone(connections);
    let queue = Arc::clone(queue);
    thread::Builder::new()
        .name("planartest-tcp-accept".into())
        .spawn(move || {
            accept_loop(&listener, &connections, &queue, max_frame, |stream| {
                let stream: TcpStream = stream;
                stream.set_nonblocking(false)?;
                let writer = stream.try_clone()?;
                let close_half = stream.try_clone()?;
                let closer = Box::new(move || {
                    let _ = close_half.shutdown(Shutdown::Both);
                });
                Ok((
                    stream,
                    Box::new(writer) as Box<dyn Write + Send>,
                    Some(closer as Box<dyn Fn() + Send>),
                ))
            });
        })
        .expect("spawn tcp accept loop");
    Ok(bound)
}

/// Shared accept loop over any nonblocking listener: polls for new
/// clients, re-checking the shutdown flag between attempts, and adopts
/// each accepted stream. `split` turns the accepted stream into its
/// (read half, boxed write half, force-close hook) triple.
fn accept_loop<L, S, F>(
    listener: &L,
    connections: &Arc<Connections>,
    queue: &Arc<SubmissionQueue>,
    max_frame: usize,
    split: F,
) where
    L: Accept<Stream = S>,
    S: Read + Send + 'static,
    F: Fn(S) -> io::Result<SplitStream<S>>,
{
    while !queue.shutting_down() {
        match listener.accept_stream() {
            Ok(stream) => match split(stream) {
                Ok((reader, writer, closer)) => {
                    adopt_stream(reader, writer, closer, connections, queue, max_frame);
                }
                // A client that vanished between accept and setup.
                Err(_) => continue,
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// The tiny listener abstraction the accept loop is generic over.
trait Accept {
    type Stream;
    fn accept_stream(&self) -> io::Result<Self::Stream>;
}

#[cfg(unix)]
impl Accept for UnixListener {
    type Stream = UnixStream;
    fn accept_stream(&self) -> io::Result<UnixStream> {
        self.accept().map(|(s, _)| s)
    }
}

impl Accept for TcpListener {
    type Stream = TcpStream;
    fn accept_stream(&self) -> io::Result<TcpStream> {
        self.accept().map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query_sub(conn: ConnectionId) -> Submission {
        Submission::new(
            conn,
            Ok(Value::obj().field("op", "query").field("graph", "g")),
        )
    }

    fn control_sub(conn: ConnectionId) -> Submission {
        Submission::new(conn, Ok(Value::obj().field("op", "stats")))
    }

    struct SharedSink(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn sink_contents(sink: &Arc<Mutex<Vec<u8>>>) -> String {
        String::from_utf8(sink.lock().unwrap().clone()).unwrap()
    }

    /// Polls until the sink holds `lines` newline-terminated lines
    /// (writer threads deliver asynchronously).
    fn await_lines(sink: &Arc<Mutex<Vec<u8>>>, lines: usize) -> String {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let text = sink_contents(sink);
            if text.matches('\n').count() >= lines {
                return text;
            }
            assert!(
                Instant::now() < deadline,
                "sink never reached {lines} lines"
            );
            thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn coalescable_classification() {
        assert!(query_sub(0).coalescable());
        assert!(Submission::new(0, Ok(Value::obj().field("op", "batch"))).coalescable());
        assert!(!control_sub(0).coalescable());
        assert!(!Submission::new(0, Err("bad".into())).coalescable());
    }

    #[test]
    fn control_ops_fire_a_lingering_cycle_immediately() {
        let q = SubmissionQueue::new();
        q.push(query_sub(1));
        q.push(control_sub(2));
        // Huge linger + depth, yet the control op makes the cycle due.
        let (cycle, reason) = q
            .wait_cycle(Duration::from_secs(3600), usize::MAX)
            .expect("cycle");
        assert_eq!(cycle.len(), 2);
        assert_eq!(cycle[0].conn, 1);
        assert_eq!(reason, WakeReason::Control);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn wake_depth_fires_without_linger_expiry() {
        let q = SubmissionQueue::new();
        q.push(query_sub(1));
        q.push(query_sub(2));
        let (cycle, reason) = q.wait_cycle(Duration::from_secs(3600), 2).expect("cycle");
        assert_eq!(cycle.len(), 2);
        assert_eq!(reason, WakeReason::Depth);
    }

    #[test]
    fn push_stamps_arrival_on_the_injected_clock() {
        let q = SubmissionQueue::new();
        let (clock, handle) = Clock::mock(0);
        q.set_clock(clock);
        handle.advance(111);
        q.push(query_sub(1));
        handle.advance(222);
        q.push(query_sub(2));
        let (cycle, _) = q.wait_cycle(Duration::ZERO, usize::MAX).expect("cycle");
        assert_eq!(cycle[0].at_micros, 111);
        assert_eq!(cycle[1].at_micros, 333);
    }

    #[test]
    fn linger_expiry_fires_and_shutdown_flushes() {
        let q = SubmissionQueue::new();
        q.push(query_sub(1));
        let t = Instant::now();
        let (cycle, reason) = q
            .wait_cycle(Duration::from_millis(40), usize::MAX)
            .expect("cycle");
        assert_eq!(cycle.len(), 1);
        assert_eq!(reason, WakeReason::Linger);
        assert!(t.elapsed() >= Duration::from_millis(40));

        // Shutdown with pending work: the flush cycle fires instantly…
        q.push(query_sub(3));
        q.request_shutdown();
        let (flush, reason) = q
            .wait_cycle(Duration::from_secs(3600), usize::MAX)
            .expect("flush cycle");
        assert_eq!(flush.len(), 1);
        assert_eq!(reason, WakeReason::Shutdown);
        // …and an empty shutdown queue ends the loop.
        assert!(q
            .wait_cycle(Duration::from_secs(3600), usize::MAX)
            .is_none());
        assert!(q.shutting_down());
    }

    #[test]
    fn depth_hwm_survives_the_drain() {
        let q = SubmissionQueue::new();
        assert_eq!(q.depth_hwm(), 0);
        q.push(query_sub(1));
        q.push(query_sub(2));
        q.push(query_sub(3));
        assert_eq!(q.depth_hwm(), 3);
        let (cycle, _) = q.wait_cycle(Duration::ZERO, usize::MAX).expect("cycle");
        assert_eq!(cycle.len(), 3);
        assert_eq!(q.depth(), 0, "instantaneous depth resets on drain");
        assert_eq!(q.depth_hwm(), 3, "high-water mark does not");
        // A shallower refill cannot lower it.
        q.push(query_sub(4));
        assert_eq!(q.depth_hwm(), 3);
    }

    #[test]
    fn wait_overlap_collects_arrivals_until_exec_done() {
        let q = Arc::new(SubmissionQueue::new());
        q.pipeline_begin();
        q.push(query_sub(1));
        // New arrivals come straight out of the overlap wait…
        let batch = q.wait_overlap().expect("overlap batch");
        assert_eq!(batch.len(), 1);
        assert_eq!(q.depth(), 0);
        // …and pipeline_done ends the overlap even with an empty queue.
        let q2 = Arc::clone(&q);
        let done = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            q2.pipeline_done();
        });
        assert!(q.wait_overlap().is_none());
        done.join().unwrap();
        // Items pushed outside an overlap stay queued for wait_cycle.
        q.push(query_sub(2));
        assert_eq!(q.depth(), 1);
        let (cycle, _) = q.wait_cycle(Duration::ZERO, usize::MAX).expect("cycle");
        assert_eq!(cycle.len(), 1);
    }

    #[test]
    fn undeliverable_responses_are_counted_per_connection() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let conns = Connections::new();
        let ok = conns.register(Box::new(io::sink()));
        let broken = conns.register(Box::new(FailingWriter));
        assert_eq!(conns.lost_responses(), 0);
        assert!(conns.send(ok, "delivered"));
        assert!(!conns.send(broken, "first loss drops the connection"));
        assert!(!conns.send(broken, "second loss hits a gone connection"));
        assert!(!conns.send(777, "never-registered target"));
        assert_eq!(conns.lost_responses(), 3);
        assert_eq!(
            conns.lost_by_connection(),
            vec![(broken, 2), (777, 1)],
            "losses are attributed to the addressed connection"
        );
        assert_eq!(conns.len(), 1, "the broken connection was dropped");
    }

    #[test]
    fn connections_route_and_drop() {
        let conns = Connections::new();
        let sink: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let a = conns.register(Box::new(SharedSink(Arc::clone(&sink))));
        let b = conns.register(Box::new(io::sink()));
        assert_ne!(a, b);
        assert_eq!(conns.len(), 2);
        assert!(conns.send(a, "hello"));
        assert_eq!(sink_contents(&sink), "hello\n");
        conns.deregister(b);
        assert!(
            !conns.send(b, "gone"),
            "dropped connections are unreachable"
        );
        assert_eq!(conns.len(), 1);
        assert!(!conns.is_empty());
        assert!(format!("{conns:?}").contains("live"));
    }

    #[test]
    fn enqueue_delivers_in_order_through_the_writer_thread() {
        let conns = Connections::new();
        let sink: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let a = conns.register(Box::new(SharedSink(Arc::clone(&sink))));
        assert!(conns.enqueue(a, "first"));
        assert!(conns.enqueue(a, "second"));
        assert!(conns.enqueue(a, "third"));
        assert_eq!(await_lines(&sink, 3), "first\nsecond\nthird\n");
        assert_eq!(conns.lost_responses(), 0);
        assert_eq!(conns.shed_responses(), 0);
        assert!(conns.outbound_depth_hwm() >= 1);
        // Unknown targets are mid-flight losses, exactly like `send`.
        assert!(!conns.enqueue(777, "never-registered"));
        assert_eq!(conns.lost_responses(), 1);
    }

    #[test]
    fn full_outbound_queues_shed_instead_of_blocking() {
        /// A writer that blocks until allowed, emulating a stuck peer.
        struct GatedWriter {
            allow: Arc<AtomicBool>,
            sink: Arc<Mutex<Vec<u8>>>,
        }
        impl Write for GatedWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                while !self.allow.load(Ordering::Relaxed) {
                    thread::sleep(Duration::from_millis(1));
                }
                self.sink.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let conns = Connections::new();
        conns.set_limits(2, 0);
        let allow = Arc::new(AtomicBool::new(false));
        let sink: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let a = conns.register(Box::new(GatedWriter {
            allow: Arc::clone(&allow),
            sink: Arc::clone(&sink),
        }));
        // The writer thread blocks on line 1; the queue holds 2 more;
        // everything past that is shed, and nothing here blocks.
        let mut queued = 0;
        let mut shed = 0;
        for i in 0..20 {
            if conns.enqueue(a, &format!("line-{i}")) {
                queued += 1;
            } else {
                shed += 1;
            }
            if conns.shed_responses() > 0 && shed >= 3 {
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        assert!(shed > 0, "a full queue must shed");
        assert_eq!(conns.shed_responses(), shed);
        assert_eq!(conns.lost_responses(), 0, "sheds are not losses");
        assert!(conns.outbound_depth_hwm() >= 2);
        // Un-stick the peer: everything queued (not shed) drains.
        allow.store(true, Ordering::Relaxed);
        let text = await_lines(&sink, queued as usize);
        assert!(text.starts_with("line-0\n"), "delivery stays in order");
        conns.finish_shutdown_flush();
    }

    #[test]
    fn shutdown_flush_losses_land_on_their_own_ledger() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let conns = Connections::new();
        let broken = conns.register(Box::new(FailingWriter));
        conns.begin_shutdown_flush();
        conns.enqueue(broken, "flushed into a dead peer");
        conns.finish_shutdown_flush();
        assert_eq!(conns.lost_responses(), 0, "not a mid-flight loss");
        assert_eq!(conns.lost_shutdown_responses(), 1);
        assert!(conns.lost_by_connection().is_empty());
    }

    #[test]
    fn in_flight_gate_blocks_at_the_cap_and_releases_on_enqueue() {
        let conns = Arc::new(Connections::new());
        conns.set_limits(0, 2);
        let sink: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let a = conns.register(Box::new(SharedSink(Arc::clone(&sink))));
        let never = || false;
        assert!(conns.acquire_submission_slot(a, &never));
        assert!(conns.acquire_submission_slot(a, &never));
        // Third acquisition blocks until a response decides a fate.
        let acquired = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&acquired);
        let gated = Arc::clone(&conns);
        let waiter = thread::spawn(move || {
            assert!(gated.acquire_submission_slot(a, &|| false));
            flag.store(true, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(60));
        assert!(!acquired.load(Ordering::SeqCst), "cap must hold the gate");
        assert!(conns.enqueue(a, "answer one"));
        waiter.join().unwrap();
        assert!(acquired.load(Ordering::SeqCst));
        // An aborting gate gives up instead of blocking forever.
        assert!(!conns.acquire_submission_slot(a, &|| true));
    }

    #[test]
    fn pump_reports_bad_frames_in_band_and_keeps_reading() {
        let queue = SubmissionQueue::new();
        let conns = Connections::new();
        let mut input = Vec::new();
        input.extend_from_slice(b"{\"op\":\"stats\"}\n");
        input.extend_from_slice(b"not json\n");
        input.extend_from_slice(&[b'x'; 64]);
        input.push(b'\n');
        input.extend_from_slice(b"\xff\xfe\n");
        input.extend_from_slice(b"  \n"); // blank: skipped entirely
        input.extend_from_slice(b"{\"op\":\"families\"}\n");
        pump_frames(&input[..], 9, &queue, &conns, 32);
        let (subs, _) = queue.wait_cycle(Duration::ZERO, usize::MAX).expect("cycle");
        assert_eq!(subs.len(), 5);
        assert!(subs.iter().all(|s| s.conn == 9));
        assert!(subs[0].request.is_ok());
        assert!(subs[1]
            .request
            .as_ref()
            .unwrap_err()
            .contains("bad request"));
        assert!(subs[2].request.as_ref().unwrap_err().contains("32-byte"));
        assert!(subs[3].request.as_ref().unwrap_err().contains("UTF-8"));
        assert!(subs[4].request.is_ok());
    }
}
