//! Query and response types for the service layer.

use std::fmt;
use std::str::FromStr;

use planartest_core::applications::HereditaryOutcome;
use planartest_core::{TestOutcome, TesterConfig};
use planartest_graph::fingerprint::Fingerprint;
use planartest_graph::NodeId;
use planartest_sim::{Backend, SimStats};

/// Which property a query tests. All three ride the same Stage-I
/// partition machinery (planarity is Theorem 1; cycle-freeness and
/// bipartiteness are the Corollary 16 applications).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Property {
    /// The full two-stage planarity tester.
    Planarity,
    /// Cycle-freeness on minor-free graphs (Corollary 16).
    CycleFreeness,
    /// Bipartiteness on minor-free graphs (Corollary 16).
    Bipartiteness,
}

impl Property {
    /// Wire name (`planarity` / `cycle_freeness` / `bipartiteness`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Property::Planarity => "planarity",
            Property::CycleFreeness => "cycle_freeness",
            Property::Bipartiteness => "bipartiteness",
        }
    }

    /// Whether the verdict depends on the configured RNG seed.
    ///
    /// Only the planarity tester samples (Stage II); the Corollary 16
    /// testers are fully deterministic, so their cache entries are not
    /// seed-striped.
    #[must_use]
    pub fn seed_dependent(self) -> bool {
        matches!(self, Property::Planarity)
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a [`Property`] from its wire name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePropertyError;

impl fmt::Display for ParsePropertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("property must be `planarity`, `cycle_freeness` or `bipartiteness`")
    }
}

impl std::error::Error for ParsePropertyError {}

impl FromStr for Property {
    type Err = ParsePropertyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "planarity" => Ok(Property::Planarity),
            "cycle_freeness" | "cycle-freeness" => Ok(Property::CycleFreeness),
            "bipartiteness" => Ok(Property::Bipartiteness),
            _ => Err(ParsePropertyError),
        }
    }
}

/// How a query names its graph: by a registry alias or directly by
/// content fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphRef {
    /// A name given at ingest time.
    Name(String),
    /// The graph's content fingerprint.
    Fingerprint(Fingerprint),
}

impl fmt::Display for GraphRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphRef::Name(n) => f.write_str(n),
            GraphRef::Fingerprint(fp) => write!(f, "{fp}"),
        }
    }
}

/// One property-testing query against a registered graph.
#[derive(Debug, Clone)]
pub struct Query {
    /// Which registered graph to test.
    pub graph: GraphRef,
    /// Which property to test.
    pub property: Property,
    /// Full tester configuration (ε, constants, embedding mode — and the
    /// seed, which is the Monte-Carlo axis of the cache).
    pub cfg: TesterConfig,
    /// Execution backend. Deliberately **not** part of the cache key:
    /// backends are bit-for-bit equivalent (the runtime's determinism
    /// guarantee), so a result computed serially may legitimately serve
    /// a parallel query and vice versa.
    pub backend: Backend,
}

impl Query {
    /// A planarity query with default backend selection.
    #[must_use]
    pub fn planarity(graph: GraphRef, cfg: TesterConfig) -> Self {
        Query {
            graph,
            property: Property::Planarity,
            cfg,
            backend: Backend::Auto,
        }
    }

    /// Replaces the property.
    #[must_use]
    pub fn with_property(mut self, property: Property) -> Self {
        self.property = property;
        self
    }

    /// Replaces the backend.
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

/// Where a response came from.
///
/// Derives `Hash`/`Ord` so telemetry can key per-`(property, cache)`
/// latency distributions on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CacheStatus {
    /// Computed by an engine pass in this drain.
    Cold,
    /// Served from the per-seed result cache (bit-identical replay of an
    /// earlier engine pass with the same graph, config and seed).
    Warm,
    /// Served from a permanent reject certificate recorded under a
    /// *different* seed: one-sided error makes any reject a proof of
    /// non-planarity, so the stored witness is replayed without
    /// re-running the partition. The replayed statistics are those of
    /// the certifying run.
    Certificate,
}

impl CacheStatus {
    /// Wire name (`cold` / `warm` / `certificate`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CacheStatus::Cold => "cold",
            CacheStatus::Warm => "warm",
            CacheStatus::Certificate => "certificate",
        }
    }
}

/// A property-test result, uniform across the three properties.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Full planarity-tester outcome.
    Planarity(TestOutcome),
    /// Corollary 16 outcome plus the statistics of its engine pass.
    Hereditary {
        /// The rejecting nodes and partition telemetry.
        outcome: HereditaryOutcome,
        /// Round/message accounting of the run.
        stats: SimStats,
    },
}

impl Outcome {
    /// Whether every node accepted.
    #[must_use]
    pub fn accepted(&self) -> bool {
        match self {
            Outcome::Planarity(o) => o.accepted(),
            Outcome::Hereditary { outcome, .. } => outcome.accepted(),
        }
    }

    /// The run's statistics ledger.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        match self {
            Outcome::Planarity(o) => &o.stats,
            Outcome::Hereditary { stats, .. } => stats,
        }
    }

    /// Nodes that output `reject` (the witness of a reject verdict).
    #[must_use]
    pub fn rejecting_nodes(&self) -> Vec<NodeId> {
        match self {
            Outcome::Planarity(o) => o.rejections.iter().map(|&(v, _)| v).collect(),
            Outcome::Hereditary { outcome, .. } => outcome.rejecting.clone(),
        }
    }
}

/// Identifier of a submitted query within one [`Service`](crate::Service).
pub type QueryId = u64;

/// A served query: the outcome plus cache and latency attribution.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The id [`Service::submit`](crate::Service::submit) returned.
    pub id: QueryId,
    /// Content fingerprint of the graph that was tested.
    pub graph: Fingerprint,
    /// The property tested.
    pub property: Property,
    /// The seed the outcome is for (for [`CacheStatus::Certificate`]
    /// responses: the seed of the certifying run, not the query's).
    pub seed: u64,
    /// The verdict and telemetry.
    pub outcome: Outcome,
    /// Cold / warm / certificate provenance.
    pub cache: CacheStatus,
    /// How many tester instances shared the engine pass that produced
    /// this outcome (1 = ran alone; 0 = served from cache).
    pub coalesced: usize,
    /// Wall-clock of the whole engine pass (microseconds; ~0 for cache
    /// hits).
    pub engine_micros: u64,
    /// This query's share of `engine_micros`, split across the pass's
    /// instances in proportion to their per-instance simulated rounds
    /// (which the batched drivers account per query via
    /// [`SimStats::delta_since`]).
    pub attributed_micros: u64,
    /// Per-stage timing of this query's trip through the scheduler
    /// (queue / resolve / execute / respond spans summing exactly to
    /// the end-to-end latency on the service clock).
    pub stages: crate::telemetry::StageTimes,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn property_names_roundtrip() {
        for p in [
            Property::Planarity,
            Property::CycleFreeness,
            Property::Bipartiteness,
        ] {
            assert_eq!(p.name().parse::<Property>().unwrap(), p);
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!("nope".parse::<Property>(), Err(ParsePropertyError));
        assert!(Property::Planarity.seed_dependent());
        assert!(!Property::Bipartiteness.seed_dependent());
    }

    #[test]
    fn cache_status_names() {
        assert_eq!(CacheStatus::Cold.name(), "cold");
        assert_eq!(CacheStatus::Warm.name(), "warm");
        assert_eq!(CacheStatus::Certificate.name(), "certificate");
    }

    #[test]
    fn query_builders() {
        let q = Query::planarity(GraphRef::Name("g".into()), TesterConfig::new(0.1))
            .with_property(Property::Bipartiteness)
            .with_backend(Backend::Serial);
        assert_eq!(q.property, Property::Bipartiteness);
        assert_eq!(q.backend, Backend::Serial);
        assert_eq!(GraphRef::Name("g".into()).to_string(), "g");
    }
}
