//! The result cache and its one-sided-error retention policy.
//!
//! The tester's error model dictates what may be cached and for how
//! long:
//!
//! * **Rejects are certificates.** The tester has one-sided error: a
//!   planar graph is *never* rejected, so any reject proves the graph
//!   non-planar — for every seed, forever. The first reject observed for
//!   a `(graph, config, property)` is stored permanently and replayed
//!   (witness included) for queries under seeds that were never run.
//!   The one exception is the paper-faithful `Demoucron` embedding mode,
//!   which is *not* one-sided (the Claim 10 refutation): its rejects
//!   stay per-seed observations and are never promoted to certificates
//!   (the scheduler passes `certifiable = false`).
//! * **Accepts are per-seed Monte-Carlo evidence.** An accept only says
//!   "this seed's samples found no violation"; a different seed is a
//!   fresh experiment. Accepts are therefore striped per seed: a query
//!   is a warm hit only for a seed that actually ran.
//!
//! Exact per-seed entries (accept *or* reject) always replay
//! bit-identically — verdict, witnesses, and the full statistics ledger
//! are the stored engine pass's. The execution backend is deliberately
//! absent from the key: backends are bit-for-bit equivalent, so a
//! serially-computed entry may serve a parallel query and vice versa.

use std::collections::hash_map::Entry as MapEntry;
use std::collections::{BTreeMap, HashMap};

use planartest_graph::fingerprint::Fingerprint;

use crate::query::{CacheStatus, Outcome, Property};

/// Cache key: graph content × configuration (seed excluded) × property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`Graph::fingerprint`](planartest_graph::Graph::fingerprint).
    pub graph: Fingerprint,
    /// [`TesterConfig::fingerprint`](planartest_core::TesterConfig::fingerprint)
    /// — every outcome-determining field except the seed.
    pub config: Fingerprint,
    /// The property tested.
    pub property: Property,
}

/// Stored results for one cache key.
#[derive(Debug, Clone, Default)]
struct CacheSlot {
    /// Exact per-seed outcomes (accepts *and* rejects), replayed
    /// bit-identically for repeat queries. For seed-independent
    /// properties everything lives under seed 0.
    by_seed: BTreeMap<u64, Outcome>,
    /// The permanent reject certificate: `(certifying seed, outcome)`.
    /// Set by the first reject; never evicted (one-sided error).
    certificate: Option<(u64, Outcome)>,
}

/// Running hit/miss counters (service telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact per-seed hits.
    pub warm_hits: u64,
    /// Certificate replays for unseen seeds.
    pub certificate_hits: u64,
    /// Lookups that required an engine pass.
    pub misses: u64,
}

/// The result cache (see the [module docs](self) for the policy).
#[derive(Debug, Default)]
pub struct ResultCache {
    slots: HashMap<(u128, u128, Property), CacheSlot>,
    stats: CacheStats,
}

impl ResultCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        ResultCache::default()
    }

    fn slot_key(key: &CacheKey) -> (u128, u128, Property) {
        (key.graph.0, key.config.0, key.property)
    }

    /// The seed axis actually used for `property` (seed-independent
    /// properties collapse onto one stripe).
    fn seed_axis(property: Property, seed: u64) -> u64 {
        if property.seed_dependent() {
            seed
        } else {
            0
        }
    }

    /// Looks up a query; counts the hit or miss.
    ///
    /// Priority: exact per-seed entry ([`CacheStatus::Warm`]), then the
    /// permanent reject certificate ([`CacheStatus::Certificate`] —
    /// returns the certifying seed alongside, since the replayed
    /// statistics belong to that run).
    pub fn lookup(&mut self, key: &CacheKey, seed: u64) -> Option<(Outcome, CacheStatus, u64)> {
        let seed = Self::seed_axis(key.property, seed);
        let slot = self.slots.get(&Self::slot_key(key));
        if let Some(outcome) = slot.and_then(|s| s.by_seed.get(&seed)) {
            self.stats.warm_hits += 1;
            return Some((outcome.clone(), CacheStatus::Warm, seed));
        }
        if let Some((cert_seed, outcome)) = slot.and_then(|s| s.certificate.as_ref()) {
            self.stats.certificate_hits += 1;
            return Some((outcome.clone(), CacheStatus::Certificate, *cert_seed));
        }
        self.stats.misses += 1;
        None
    }

    /// Records a freshly computed outcome; a reject additionally becomes
    /// the key's permanent certificate (first reject wins, keeping
    /// certificate replays deterministic regardless of later passes) —
    /// but **only** when the caller vouches the configuration is
    /// one-sided (`certifiable`). The paper-faithful `Demoucron` mode
    /// can reject planar graphs (the Claim 10 refutation), so its
    /// rejects are per-seed observations like accepts, never
    /// seed-universal proofs.
    pub fn insert(&mut self, key: &CacheKey, seed: u64, outcome: &Outcome, certifiable: bool) {
        let seed = Self::seed_axis(key.property, seed);
        let slot = match self.slots.entry(Self::slot_key(key)) {
            MapEntry::Occupied(e) => e.into_mut(),
            MapEntry::Vacant(e) => e.insert(CacheSlot::default()),
        };
        slot.by_seed.entry(seed).or_insert_with(|| outcome.clone());
        if certifiable && !outcome.accepted() && slot.certificate.is_none() {
            slot.certificate = Some((seed, outcome.clone()));
        }
    }

    /// Hit/miss counters since construction (or the last [`clear`](Self::clear)).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of `(graph, config, property)` slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total stored per-seed outcomes across all slots.
    #[must_use]
    pub fn stored_outcomes(&self) -> usize {
        self.slots.values().map(|s| s.by_seed.len()).sum()
    }

    /// Drops every entry and resets the counters (used by load drivers
    /// to re-measure cold paths).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_core::applications::HereditaryOutcome;
    use planartest_graph::NodeId;
    use planartest_sim::SimStats;

    fn key(property: Property) -> CacheKey {
        CacheKey {
            graph: Fingerprint(1),
            config: Fingerprint(2),
            property,
        }
    }

    fn outcome(accepted: bool) -> Outcome {
        Outcome::Hereditary {
            outcome: HereditaryOutcome {
                rejecting: if accepted {
                    Vec::new()
                } else {
                    vec![NodeId::new(3)]
                },
                parts: 1,
            },
            stats: SimStats::default(),
        }
    }

    #[test]
    fn accepts_are_per_seed_rejects_are_permanent() {
        let mut cache = ResultCache::new();
        let k = key(Property::Planarity);
        assert!(cache.lookup(&k, 1).is_none());
        cache.insert(&k, 1, &outcome(true), true);
        // Same seed: warm. Different seed: miss (accepts don't transfer).
        assert_eq!(cache.lookup(&k, 1).unwrap().1, CacheStatus::Warm);
        assert!(cache.lookup(&k, 2).is_none());

        cache.insert(&k, 2, &outcome(false), true);
        // Unseen seed now rides the certificate, tagged with seed 2.
        let (o, status, seed) = cache.lookup(&k, 77).unwrap();
        assert_eq!(status, CacheStatus::Certificate);
        assert_eq!(seed, 2);
        assert!(!o.accepted());
        // The exact reject seed is still a warm hit.
        assert_eq!(cache.lookup(&k, 2).unwrap().1, CacheStatus::Warm);
        assert_eq!(
            cache.stats(),
            CacheStats {
                warm_hits: 2,
                certificate_hits: 1,
                misses: 2
            }
        );
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stored_outcomes(), 2);
    }

    #[test]
    fn seed_independent_properties_share_one_stripe() {
        let mut cache = ResultCache::new();
        let k = key(Property::Bipartiteness);
        cache.insert(&k, 123, &outcome(true), true);
        // Any seed hits: the property never looked at it.
        assert_eq!(cache.lookup(&k, 456).unwrap().1, CacheStatus::Warm);
    }

    #[test]
    fn first_reject_wins_certificate() {
        let mut cache = ResultCache::new();
        let k = key(Property::Planarity);
        let first = Outcome::Hereditary {
            outcome: HereditaryOutcome {
                rejecting: vec![NodeId::new(7)],
                parts: 1,
            },
            stats: SimStats::default(),
        };
        cache.insert(&k, 5, &first, true);
        cache.insert(&k, 6, &outcome(false), true);
        let (o, _, seed) = cache.lookup(&k, 99).unwrap();
        assert_eq!(seed, 5);
        assert_eq!(o.rejecting_nodes(), vec![NodeId::new(7)]);
    }

    #[test]
    fn uncertifiable_rejects_stay_per_seed() {
        // Paper-mode rejects are observations, not proofs: exact-seed
        // replay works, but no certificate forms for unseen seeds.
        let mut cache = ResultCache::new();
        let k = key(Property::Planarity);
        cache.insert(&k, 1, &outcome(false), false);
        assert_eq!(cache.lookup(&k, 1).unwrap().1, CacheStatus::Warm);
        assert!(cache.lookup(&k, 2).is_none());
    }

    #[test]
    fn clear_resets() {
        let mut cache = ResultCache::new();
        let k = key(Property::Planarity);
        cache.insert(&k, 1, &outcome(true), true);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
