//! The result cache and its one-sided-error retention policy.
//!
//! The tester's error model dictates what may be cached and for how
//! long:
//!
//! * **Rejects are certificates.** The tester has one-sided error: a
//!   planar graph is *never* rejected, so any reject proves the graph
//!   non-planar — for every seed, forever. The first reject observed for
//!   a `(graph, config, property)` is stored permanently and replayed
//!   (witness included) for queries under seeds that were never run.
//!   The one exception is the paper-faithful `Demoucron` embedding mode,
//!   which is *not* one-sided (the Claim 10 refutation): its rejects
//!   stay per-seed observations and are never promoted to certificates
//!   (the scheduler passes `certifiable = false`).
//! * **Accepts are per-seed Monte-Carlo evidence.** An accept only says
//!   "this seed's samples found no violation"; a different seed is a
//!   fresh experiment. Accepts are therefore striped per seed: a query
//!   is a warm hit only for a seed that actually ran.
//!
//! Exact per-seed entries (accept *or* reject) always replay
//! bit-identically — verdict, witnesses, and the full statistics ledger
//! are the stored engine pass's. The execution backend is deliberately
//! absent from the key: backends are bit-for-bit equivalent, so a
//! serially-computed entry may serve a parallel query and vice versa.
//!
//! # Bounded accept stripes
//!
//! The two retention classes grow very differently. Certificates are
//! tiny and bounded by the number of distinct `(graph, config)` pairs;
//! per-seed stripes grow with *every fresh seed* a long-running server
//! sees, without bound. The cache therefore puts an LRU cap
//! ([`ResultCache::accept_capacity`], default
//! [`DEFAULT_ACCEPT_CAPACITY`], settable via `planartest serve
//! --cache-accepts N`) on the per-seed Monte-Carlo stripes only:
//! when the cap is exceeded the least-recently-touched stripe is
//! dropped (counted in [`CacheStats::evictions`]) and a repeat of that
//! exact seed simply pays a fresh — still coalesceable — engine pass.
//! Reject **certificates are never evicted**: they are proofs, and
//! evicting a proof would re-run a partition the error model says can
//! never be needed again. (A certifiable reject's own stripe may be
//! evicted; its outcome lives on in the certificate, so only its
//! `warm` vs `certificate` provenance label changes.)

use std::collections::hash_map::Entry as MapEntry;
use std::collections::{BTreeMap, HashMap};

use planartest_graph::fingerprint::Fingerprint;

use crate::query::{CacheStatus, Outcome, Property};

/// Default per-seed stripe cap: generous — tens of thousands of
/// distinct `(slot, seed)` outcomes resident before anything is
/// evicted — while still bounding a months-long serve loop.
pub const DEFAULT_ACCEPT_CAPACITY: usize = 1 << 16;

/// Cache key: graph content × configuration (seed excluded) × property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`Graph::fingerprint`](planartest_graph::Graph::fingerprint).
    pub graph: Fingerprint,
    /// [`TesterConfig::fingerprint`](planartest_core::TesterConfig::fingerprint)
    /// — every outcome-determining field except the seed.
    pub config: Fingerprint,
    /// The property tested.
    pub property: Property,
}

/// One stored per-seed outcome plus its LRU recency stamp.
#[derive(Debug, Clone)]
struct Stored {
    outcome: Outcome,
    /// The cache-wide logical clock value of the last touch (insert or
    /// warm hit); the key of this entry in the LRU index.
    tick: u64,
}

/// Stored results for one cache key.
#[derive(Debug, Clone, Default)]
struct CacheSlot {
    /// Exact per-seed outcomes (accepts *and* rejects), replayed
    /// bit-identically for repeat queries. For seed-independent
    /// properties everything lives under seed 0. LRU-bounded.
    by_seed: BTreeMap<u64, Stored>,
    /// The permanent reject certificate: `(certifying seed, outcome)`.
    /// Set by the first reject; never evicted (one-sided error).
    certificate: Option<(u64, Outcome)>,
}

/// Running hit/miss counters (service telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact per-seed hits.
    pub warm_hits: u64,
    /// Certificate replays for unseen seeds.
    pub certificate_hits: u64,
    /// Lookups that required an engine pass.
    pub misses: u64,
    /// Per-seed stripes dropped by the LRU accept bound.
    pub evictions: u64,
}

type SlotKey = (u128, u128, Property);

/// The result cache (see the [module docs](self) for the policy).
#[derive(Debug)]
pub struct ResultCache {
    slots: HashMap<SlotKey, CacheSlot>,
    /// LRU index over every per-seed stripe: recency tick → its
    /// location. Certificates are deliberately not in here.
    lru: BTreeMap<u64, (SlotKey, u64)>,
    /// Monotone logical clock driving the LRU order.
    tick: u64,
    accept_capacity: usize,
    stats: CacheStats,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache {
            slots: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            accept_capacity: DEFAULT_ACCEPT_CAPACITY,
            stats: CacheStats::default(),
        }
    }
}

impl ResultCache {
    /// An empty cache with the default accept-stripe capacity.
    #[must_use]
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Replaces the per-seed stripe cap (builder form). A cap of 0
    /// disables per-seed retention entirely; certificates still form.
    #[must_use]
    pub fn with_accept_capacity(mut self, capacity: usize) -> Self {
        self.set_accept_capacity(capacity);
        self
    }

    /// Replaces the per-seed stripe cap, evicting immediately if the
    /// resident stripes already exceed it.
    pub fn set_accept_capacity(&mut self, capacity: usize) {
        self.accept_capacity = capacity;
        self.evict_over_capacity();
    }

    /// The current per-seed stripe cap.
    #[must_use]
    pub fn accept_capacity(&self) -> usize {
        self.accept_capacity
    }

    /// Accept stripes currently resident in the LRU (the occupancy the
    /// eviction counter is measured against; certificates don't count).
    #[must_use]
    pub fn accept_stripes(&self) -> usize {
        self.lru.len()
    }

    fn slot_key(key: &CacheKey) -> SlotKey {
        (key.graph.0, key.config.0, key.property)
    }

    fn evict_over_capacity(&mut self) {
        while self.lru.len() > self.accept_capacity {
            let (&tick, &(slot_key, seed)) =
                self.lru.iter().next().expect("non-empty over-cap LRU");
            self.lru.remove(&tick);
            if let Some(slot) = self.slots.get_mut(&slot_key) {
                slot.by_seed.remove(&seed);
                self.stats.evictions += 1;
                if slot.by_seed.is_empty() && slot.certificate.is_none() {
                    self.slots.remove(&slot_key);
                }
            }
        }
    }

    /// The seed axis actually used for `property` (seed-independent
    /// properties collapse onto one stripe).
    fn seed_axis(property: Property, seed: u64) -> u64 {
        if property.seed_dependent() {
            seed
        } else {
            0
        }
    }

    /// Looks up a query; counts the hit or miss.
    ///
    /// Priority: exact per-seed entry ([`CacheStatus::Warm`]), then the
    /// permanent reject certificate ([`CacheStatus::Certificate`] —
    /// returns the certifying seed alongside, since the replayed
    /// statistics belong to that run).
    pub fn lookup(&mut self, key: &CacheKey, seed: u64) -> Option<(Outcome, CacheStatus, u64)> {
        let seed = Self::seed_axis(key.property, seed);
        let slot_key = Self::slot_key(key);
        if let Some(slot) = self.slots.get_mut(&slot_key) {
            if let Some(stored) = slot.by_seed.get_mut(&seed) {
                self.stats.warm_hits += 1;
                // Touch: move the stripe to the most-recent end of the
                // LRU order.
                self.lru.remove(&stored.tick);
                self.tick += 1;
                stored.tick = self.tick;
                self.lru.insert(self.tick, (slot_key, seed));
                return Some((stored.outcome.clone(), CacheStatus::Warm, seed));
            }
            if let Some((cert_seed, outcome)) = slot.certificate.as_ref() {
                self.stats.certificate_hits += 1;
                return Some((outcome.clone(), CacheStatus::Certificate, *cert_seed));
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Records a freshly computed outcome; a reject additionally becomes
    /// the key's permanent certificate (first reject wins, keeping
    /// certificate replays deterministic regardless of later passes) —
    /// but **only** when the caller vouches the configuration is
    /// one-sided (`certifiable`). The paper-faithful `Demoucron` mode
    /// can reject planar graphs (the Claim 10 refutation), so its
    /// rejects are per-seed observations like accepts, never
    /// seed-universal proofs.
    ///
    /// Returns whether this call formed a **new** certificate — the
    /// scheduler's signal to append it to the durable write-ahead log
    /// (see [`crate::persist`]).
    pub fn insert(
        &mut self,
        key: &CacheKey,
        seed: u64,
        outcome: &Outcome,
        certifiable: bool,
    ) -> bool {
        let seed = Self::seed_axis(key.property, seed);
        let slot_key = Self::slot_key(key);
        let slot = match self.slots.entry(slot_key) {
            MapEntry::Occupied(e) => e.into_mut(),
            MapEntry::Vacant(e) => e.insert(CacheSlot::default()),
        };
        if let std::collections::btree_map::Entry::Vacant(stripe) = slot.by_seed.entry(seed) {
            self.tick += 1;
            stripe.insert(Stored {
                outcome: outcome.clone(),
                tick: self.tick,
            });
            self.lru.insert(self.tick, (slot_key, seed));
        }
        let mut certified = false;
        if certifiable && !outcome.accepted() && slot.certificate.is_none() {
            slot.certificate = Some((seed, outcome.clone()));
            certified = true;
        }
        self.evict_over_capacity();
        certified
    }

    /// Installs a certificate replayed from the durable log **without**
    /// touching the hit/miss counters, the LRU, or the per-seed
    /// stripes: a replay restores knowledge, it is not traffic. First
    /// record wins (matching the in-memory first-reject-wins rule), so
    /// replaying a non-compacted log with duplicates is idempotent.
    /// Returns whether the certificate was installed.
    pub fn load_certificate(&mut self, key: &CacheKey, seed: u64, outcome: Outcome) -> bool {
        let seed = Self::seed_axis(key.property, seed);
        let slot = match self.slots.entry(Self::slot_key(key)) {
            MapEntry::Occupied(e) => e.into_mut(),
            MapEntry::Vacant(e) => e.insert(CacheSlot::default()),
        };
        if slot.certificate.is_some() {
            return false;
        }
        slot.certificate = Some((seed, outcome));
        true
    }

    /// Iterates over every resident certificate — the live state an
    /// offline compaction rewrites the log from.
    pub fn certificates(&self) -> impl Iterator<Item = (CacheKey, u64, &Outcome)> + '_ {
        self.slots
            .iter()
            .filter_map(|(&(graph, config, property), slot)| {
                slot.certificate.as_ref().map(|(seed, outcome)| {
                    (
                        CacheKey {
                            graph: Fingerprint(graph),
                            config: Fingerprint(config),
                            property,
                        },
                        *seed,
                        outcome,
                    )
                })
            })
    }

    /// Hit/miss counters since construction (or the last [`clear`](Self::clear)).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of `(graph, config, property)` slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total stored per-seed outcomes across all slots.
    #[must_use]
    pub fn stored_outcomes(&self) -> usize {
        self.slots.values().map(|s| s.by_seed.len()).sum()
    }

    /// Drops every entry and resets the counters (used by load drivers
    /// to re-measure cold paths). The configured capacity is kept.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.lru.clear();
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_core::applications::HereditaryOutcome;
    use planartest_graph::NodeId;
    use planartest_sim::SimStats;

    fn key(property: Property) -> CacheKey {
        CacheKey {
            graph: Fingerprint(1),
            config: Fingerprint(2),
            property,
        }
    }

    fn outcome(accepted: bool) -> Outcome {
        Outcome::Hereditary {
            outcome: HereditaryOutcome {
                rejecting: if accepted {
                    Vec::new()
                } else {
                    vec![NodeId::new(3)]
                },
                parts: 1,
            },
            stats: SimStats::default(),
        }
    }

    #[test]
    fn accepts_are_per_seed_rejects_are_permanent() {
        let mut cache = ResultCache::new();
        let k = key(Property::Planarity);
        assert!(cache.lookup(&k, 1).is_none());
        cache.insert(&k, 1, &outcome(true), true);
        // Same seed: warm. Different seed: miss (accepts don't transfer).
        assert_eq!(cache.lookup(&k, 1).unwrap().1, CacheStatus::Warm);
        assert!(cache.lookup(&k, 2).is_none());

        cache.insert(&k, 2, &outcome(false), true);
        // Unseen seed now rides the certificate, tagged with seed 2.
        let (o, status, seed) = cache.lookup(&k, 77).unwrap();
        assert_eq!(status, CacheStatus::Certificate);
        assert_eq!(seed, 2);
        assert!(!o.accepted());
        // The exact reject seed is still a warm hit.
        assert_eq!(cache.lookup(&k, 2).unwrap().1, CacheStatus::Warm);
        assert_eq!(
            cache.stats(),
            CacheStats {
                warm_hits: 2,
                certificate_hits: 1,
                misses: 2,
                evictions: 0
            }
        );
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stored_outcomes(), 2);
    }

    #[test]
    fn seed_independent_properties_share_one_stripe() {
        let mut cache = ResultCache::new();
        let k = key(Property::Bipartiteness);
        cache.insert(&k, 123, &outcome(true), true);
        // Any seed hits: the property never looked at it.
        assert_eq!(cache.lookup(&k, 456).unwrap().1, CacheStatus::Warm);
    }

    #[test]
    fn first_reject_wins_certificate() {
        let mut cache = ResultCache::new();
        let k = key(Property::Planarity);
        let first = Outcome::Hereditary {
            outcome: HereditaryOutcome {
                rejecting: vec![NodeId::new(7)],
                parts: 1,
            },
            stats: SimStats::default(),
        };
        cache.insert(&k, 5, &first, true);
        cache.insert(&k, 6, &outcome(false), true);
        let (o, _, seed) = cache.lookup(&k, 99).unwrap();
        assert_eq!(seed, 5);
        assert_eq!(o.rejecting_nodes(), vec![NodeId::new(7)]);
    }

    #[test]
    fn uncertifiable_rejects_stay_per_seed() {
        // Paper-mode rejects are observations, not proofs: exact-seed
        // replay works, but no certificate forms for unseen seeds.
        let mut cache = ResultCache::new();
        let k = key(Property::Planarity);
        cache.insert(&k, 1, &outcome(false), false);
        assert_eq!(cache.lookup(&k, 1).unwrap().1, CacheStatus::Warm);
        assert!(cache.lookup(&k, 2).is_none());
    }

    #[test]
    fn lru_bound_evicts_stale_accept_stripes() {
        let mut cache = ResultCache::new().with_accept_capacity(2);
        assert_eq!(cache.accept_capacity(), 2);
        let k = key(Property::Planarity);
        cache.insert(&k, 1, &outcome(true), true);
        cache.insert(&k, 2, &outcome(true), true);
        // Touch seed 1 so seed 2 is now the least recently used...
        assert_eq!(cache.lookup(&k, 1).unwrap().1, CacheStatus::Warm);
        // ...and a third stripe evicts seed 2, not seed 1.
        cache.insert(&k, 3, &outcome(true), true);
        assert_eq!(cache.stored_outcomes(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.lookup(&k, 1).unwrap().1, CacheStatus::Warm);
        assert_eq!(cache.lookup(&k, 3).unwrap().1, CacheStatus::Warm);
        assert!(cache.lookup(&k, 2).is_none(), "evicted stripe is a miss");
    }

    #[test]
    fn certificates_survive_eviction() {
        // Capacity 0: no per-seed retention at all — yet a certifiable
        // reject still becomes a permanent proof.
        let mut cache = ResultCache::new().with_accept_capacity(0);
        let k = key(Property::Planarity);
        cache.insert(&k, 7, &outcome(false), true);
        assert_eq!(cache.stored_outcomes(), 0, "stripe evicted immediately");
        assert_eq!(cache.stats().evictions, 1);
        let (o, status, seed) = cache.lookup(&k, 7).unwrap();
        assert_eq!(status, CacheStatus::Certificate);
        assert_eq!(seed, 7);
        assert!(!o.accepted());
        // Accepts under capacity 0 are simply not retained.
        let ka = key(Property::Bipartiteness);
        cache.insert(&ka, 1, &outcome(true), true);
        assert!(cache.lookup(&ka, 1).is_none());
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let mut cache = ResultCache::new();
        let k = key(Property::Planarity);
        for seed in 0..8 {
            cache.insert(&k, seed, &outcome(true), true);
        }
        assert_eq!(cache.stored_outcomes(), 8);
        cache.set_accept_capacity(3);
        assert_eq!(cache.stored_outcomes(), 3);
        assert_eq!(cache.stats().evictions, 5);
        // The survivors are the most recently inserted stripes.
        for seed in 5..8 {
            assert_eq!(cache.lookup(&k, seed).unwrap().1, CacheStatus::Warm);
        }
        // An empty accept-only slot disappears entirely once its last
        // stripe goes.
        cache.set_accept_capacity(0);
        assert!(cache.is_empty());
    }

    #[test]
    fn insert_reports_new_certificates_and_replay_is_silent() {
        let mut cache = ResultCache::new();
        let k = key(Property::Planarity);
        assert!(
            !cache.insert(&k, 1, &outcome(true), true),
            "accepts never certify"
        );
        assert!(
            cache.insert(&k, 2, &outcome(false), true),
            "first reject certifies"
        );
        assert!(
            !cache.insert(&k, 3, &outcome(false), true),
            "only the first"
        );
        assert_eq!(cache.certificates().count(), 1);
        let (ck, seed, o) = cache.certificates().next().unwrap();
        assert_eq!((ck, seed), (k, 2));
        assert!(!o.accepted());

        // Replaying into a fresh cache: certificate hits work, stats
        // and LRU stay untouched.
        let mut cold = ResultCache::new();
        assert!(cold.load_certificate(&k, 2, o.clone()));
        assert!(!cold.load_certificate(&k, 9, outcome(false)), "first wins");
        assert_eq!(cold.stats(), CacheStats::default());
        assert_eq!(cold.accept_stripes(), 0);
        let (_, status, seed) = cold.lookup(&k, 42).unwrap();
        assert_eq!(status, CacheStatus::Certificate);
        assert_eq!(seed, 2);
    }

    #[test]
    fn clear_resets() {
        let mut cache = ResultCache::new();
        let k = key(Property::Planarity);
        cache.insert(&k, 1, &outcome(true), true);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
