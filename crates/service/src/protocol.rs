//! The line-delimited JSON request protocol.
//!
//! One request per line, one response line per request — the format
//! `planartest serve` speaks over every transport (stdin/stdout, unix
//! sockets, TCP — see [`crate::transport`]) and the shape the one-shot
//! `planartest query` prints. Under the concurrent server each
//! request is tagged with its
//! [`ConnectionId`](crate::transport::ConnectionId) at the framing
//! layer and the
//! response is routed back to that connection, in that connection's
//! submission order; `query`/`batch` ops may linger in the submission
//! queue to coalesce with other connections' requests (see
//! [`coalescable`]), while control ops are answered on the next cycle.
//! Requests are objects with an `"op"` field:
//!
//! | op | fields | effect |
//! |----|--------|--------|
//! | `ingest` | `name`, and `edge_list` *or* `spec`; `to_disk?` | register a graph, build + fingerprint once (`to_disk` streams it straight to the `--state-dir` CSR spill, registered mapped) |
//! | `query` | `graph` (name) or `fingerprint`, `property?`, `epsilon?`, `seed?`, `phases?`, `backend?`, `embedding?` | test one property, cache-aware |
//! | `batch` | `queries`: array of query objects | coalesced drain: same-graph queries share engine passes |
//! | `stats` | — | registry/cache/scheduler counters, queue depth, outbound shed/loss ledgers, uptime, wake reasons |
//! | `metrics` | — | full telemetry snapshot: latency histograms per `(property, cache, route)`, stage timings, cycle accounting |
//! | `metrics-text` | — | the same metrics as Prometheus exposition text (in the `text` field) |
//! | `families` | — | the spec-addressable generator corpus |
//!
//! Every response carries `"ok"`; failures also carry `"error"`. A
//! malformed line never kills the server — it answers
//! `{"ok":false,...}` and keeps reading.

use planartest_core::{EmbeddingMode, TesterConfig};
use planartest_graph::generators::spec;
use planartest_sim::Backend;

use crate::query::{GraphRef, Outcome, Property, Query, QueryResponse};
use crate::scheduler::Service;
use crate::wire::Value;

/// Default distance parameter when a query names none.
pub const DEFAULT_EPSILON: f64 = 0.1;

/// The protocol's error-response shape: `{"ok":false,"error":...}`.
/// Used both for per-request failures and for per-connection framing
/// failures (oversized or garbage frames), so a broken client always
/// gets an answer instead of killing the server.
#[must_use]
pub fn error_value(message: impl std::fmt::Display) -> Value {
    Value::obj()
        .field("ok", false)
        .field("error", message.to_string())
}

fn error(message: impl std::fmt::Display) -> Value {
    error_value(message)
}

/// Whether a request benefits from lingering in the submission queue
/// to coalesce with others (`query`/`batch`). Control ops and
/// malformed requests wake the drain loop immediately.
#[must_use]
pub fn coalescable(req: &Value) -> bool {
    matches!(
        req.get("op").and_then(Value::as_str),
        Some("query" | "batch")
    )
}

/// Parses the query-shaped fields of `req` into a [`Query`].
///
/// # Errors
///
/// A human-readable message naming the offending field.
pub fn parse_query(req: &Value) -> Result<Query, String> {
    let graph = match (req.get("graph"), req.get("fingerprint")) {
        (Some(g), None) => GraphRef::Name(
            g.as_str()
                .ok_or_else(|| "`graph` must be a string name".to_string())?
                .to_string(),
        ),
        (None, Some(fp)) => {
            let text = fp
                .as_str()
                .ok_or_else(|| "`fingerprint` must be a hex string".to_string())?;
            GraphRef::Fingerprint(text.parse().map_err(|e| format!("`fingerprint`: {e}"))?)
        }
        (Some(_), Some(_)) => {
            return Err("give `graph` or `fingerprint`, not both".to_string());
        }
        (None, None) => return Err("missing `graph` (or `fingerprint`)".to_string()),
    };
    let property = match req.get("property") {
        None => Property::Planarity,
        Some(p) => p
            .as_str()
            .ok_or_else(|| "`property` must be a string".to_string())?
            .parse::<Property>()
            .map_err(|e| e.to_string())?,
    };
    let epsilon = match req.get("epsilon") {
        None => DEFAULT_EPSILON,
        Some(e) => e
            .as_f64()
            .ok_or_else(|| "`epsilon` must be a number".to_string())?,
    };
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err("`epsilon` must be in (0, 1)".to_string());
    }
    let mut cfg = TesterConfig::new(epsilon);
    if let Some(seed) = req.get("seed") {
        cfg = cfg.with_seed(
            seed.as_u64()
                .ok_or_else(|| "`seed` must be a non-negative integer".to_string())?,
        );
    }
    if let Some(phases) = req.get("phases") {
        let t = phases
            .as_u64()
            .ok_or_else(|| "`phases` must be a non-negative integer".to_string())?;
        cfg = cfg.with_phases(t as usize);
    }
    match req.get("embedding").map(|v| v.as_str()) {
        None => {}
        Some(Some("strict")) => cfg = cfg.with_embedding(EmbeddingMode::DemoucronStrict),
        Some(Some("paper")) => cfg = cfg.with_embedding(EmbeddingMode::Demoucron),
        Some(_) => return Err("`embedding` must be `strict` or `paper`".to_string()),
    }
    let backend = match req.get("backend") {
        None => Backend::Auto,
        Some(b) => b
            .as_str()
            .ok_or_else(|| "`backend` must be a string".to_string())?
            .parse::<Backend>()
            .map_err(|e| e.to_string())?,
    };
    Ok(Query {
        graph,
        property,
        cfg,
        backend,
    })
}

/// Serializes a served query for the wire.
#[must_use]
pub fn response_value(r: &QueryResponse) -> Value {
    let stats = r.outcome.stats();
    let mut v = Value::obj()
        .field("ok", true)
        .field(
            "verdict",
            if r.outcome.accepted() {
                "accept"
            } else {
                "reject"
            },
        )
        .field("property", r.property.name())
        .field("graph", r.graph.to_string())
        .field("seed", r.seed)
        .field("cache", r.cache.name())
        .field("rounds", stats.total_rounds())
        .field("messages", stats.messages)
        .field("words", stats.words)
        .field("coalesced", r.coalesced)
        .field("engine_micros", r.engine_micros)
        .field("attributed_micros", r.attributed_micros)
        .field(
            "stages",
            Value::obj()
                .field("queue_micros", r.stages.queue_micros)
                .field("resolve_micros", r.stages.resolve_micros)
                .field("execute_micros", r.stages.execute_micros)
                .field("respond_micros", r.stages.respond_micros)
                .field("total_micros", r.stages.total_micros()),
        );
    let rejecting: Vec<Value> = r
        .outcome
        .rejecting_nodes()
        .iter()
        .map(|v| Value::UInt(v.index() as u64))
        .collect();
    if !rejecting.is_empty() {
        v = v.field("rejecting_nodes", rejecting);
    }
    if let Outcome::Planarity(out) = &r.outcome {
        if !out.rejections.is_empty() {
            v = v.field(
                "reject_reasons",
                out.rejections
                    .iter()
                    .map(|(node, reason)| {
                        Value::obj()
                            .field("node", node.index())
                            .field("reason", reason.to_string())
                    })
                    .collect::<Vec<Value>>(),
            );
        }
        // Witness telemetry can cover most of the graph (the Claim 10
        // refutation: planar graphs carry violating labellings); the
        // wire reports the count plus a bounded sample so response
        // lines stay line-sized.
        if !out.violation_witnesses.is_empty() {
            v = v
                .field("violation_witness_count", out.violation_witnesses.len())
                .field(
                    "violation_witness_sample",
                    out.violation_witnesses
                        .iter()
                        .take(8)
                        .map(|w| Value::UInt(w.index() as u64))
                        .collect::<Vec<Value>>(),
                );
        }
    }
    v
}

fn handle_ingest(service: &mut Service, req: &Value) -> Value {
    let Some(name) = req.get("name").and_then(Value::as_str) else {
        return error("`ingest` needs a string `name`");
    };
    // `to_disk` routes the ingest through the streaming out-of-core
    // builder (needs `--state-dir`): edges go straight to the CSR
    // spill and the entry is registered mapped, never resident.
    let to_disk = match req.get("to_disk") {
        None => false,
        Some(v) => match v.as_bool() {
            Some(b) => b,
            None => return error("`to_disk` must be a boolean"),
        },
    };
    let result = match (req.get("edge_list"), req.get("spec")) {
        (Some(text), None) => match text.as_str() {
            Some(text) if to_disk => service.registry_mut().ingest_edge_list_to_disk(name, text),
            Some(text) => service.registry_mut().ingest_edge_list(name, text),
            None => return error("`edge_list` must be a string document"),
        },
        (None, Some(text)) => match text.as_str() {
            Some(text) if to_disk => service.registry_mut().ingest_spec_to_disk(name, text),
            Some(text) => service.registry_mut().ingest_spec(name, text),
            None => return error("`spec` must be a string"),
        },
        _ => return error("`ingest` needs exactly one of `edge_list` or `spec`"),
    };
    match result {
        Ok(entry) => Value::obj()
            .field("ok", true)
            .field("name", name)
            .field("fingerprint", entry.fingerprint.to_string())
            .field("n", entry.graph.n())
            .field("m", entry.graph.m())
            .field(
                "tier",
                if entry.graph.is_mapped() {
                    "mapped"
                } else {
                    "resident"
                },
            )
            .field("source", entry.source.as_str())
            .field(
                "certified",
                match entry.certified {
                    None => Value::Null,
                    Some(s) if s.is_planar() => Value::Str("planar".into()),
                    Some(s) => {
                        let far = s.far_fraction(entry.graph.m());
                        if far > 0.0 {
                            Value::obj().field("far_fraction", far)
                        } else {
                            Value::Str("unknown".into())
                        }
                    }
                },
            ),
        Err(e) => error(e),
    }
}

fn handle_query(service: &mut Service, req: &Value) -> Value {
    match parse_query(req) {
        Ok(q) => match service.query(q) {
            Ok(r) => response_value(&r),
            Err(e) => error(e),
        },
        Err(e) => error(e),
    }
}

/// Parses a `batch` op's members. Strict: a malformed member fails the
/// whole batch before any engine time is spent.
///
/// # Errors
///
/// A human-readable message naming the offending member.
pub fn parse_batch(req: &Value) -> Result<Vec<Query>, String> {
    let Some(queries) = req.get("queries").and_then(Value::as_arr) else {
        return Err("`batch` needs a `queries` array".to_string());
    };
    let mut parsed = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        match parse_query(q) {
            Ok(q) => parsed.push(q),
            Err(e) => return Err(format!("queries[{i}]: {e}")),
        }
    }
    Ok(parsed)
}

fn handle_batch(service: &mut Service, req: &Value) -> Value {
    let parsed = match parse_batch(req) {
        Ok(p) => p,
        Err(e) => return error(e),
    };
    for q in parsed {
        service.submit(q);
    }
    let responses: Vec<Value> = service
        .drain()
        .iter()
        .map(|(_, result)| match result {
            Ok(r) => response_value(r),
            Err(e) => error(e),
        })
        .collect();
    Value::obj().field("ok", true).field("responses", responses)
}

fn handle_stats(service: &Service) -> Value {
    let s = service.stats();
    Value::obj()
        .field("ok", true)
        .field("graphs", s.graphs)
        .field("resident_graphs", s.resident_graphs)
        .field("mapped_graphs", s.mapped_graphs)
        .field("cache_slots", s.cache_slots)
        .field("cached_outcomes", s.cached_outcomes)
        .field("warm_hits", s.cache.warm_hits)
        .field("certificate_hits", s.cache.certificate_hits)
        .field("misses", s.cache.misses)
        .field("evictions", s.cache.evictions)
        .field("accept_stripes", s.accept_stripes)
        .field("accept_capacity", s.accept_capacity)
        .field("engine_passes", s.engine_passes)
        .field("queries_served", s.queries_served)
        .field("queue_depth", s.queue_depth)
        .field("queue_depth_hwm", s.queue_depth_hwm)
        .field("responses_lost", s.responses_lost)
        .field("responses_lost_shutdown", s.responses_lost_shutdown)
        .field("responses_shed", s.responses_shed)
        .field("outbound_depth_hwm", s.outbound_depth_hwm)
        .field("writer_stalls", s.writer_stalls)
        .field("uptime_micros", s.uptime_micros)
        .field("drain_cycles", s.drain_cycles)
        .field(
            "wake",
            Value::obj()
                .field("depth", s.wake[0])
                .field("linger", s.wake[1])
                .field("control", s.wake[2])
                .field("shutdown", s.wake[3])
                .field("pipeline", s.wake[4]),
        )
}

/// The `metrics` op: the full telemetry snapshot (histograms, stage
/// timings, cycle accounting, engine rollups) plus the registry/cache
/// summary counters.
fn handle_metrics(service: &Service) -> Value {
    let s = service.stats();
    let mut v = service.telemetry().metrics_value().field("ok", true);
    v = v
        .field("graphs", s.graphs)
        .field("cache_slots", s.cache_slots)
        .field("queue_depth", s.queue_depth)
        .field("queue_depth_hwm", s.queue_depth_hwm)
        .field("responses_lost", s.responses_lost)
        .field("responses_lost_shutdown", s.responses_lost_shutdown)
        .field("responses_shed", s.responses_shed)
        .field("outbound_depth_hwm", s.outbound_depth_hwm)
        .field("writer_stalls", s.writer_stalls)
        .field("engine_passes", s.engine_passes)
        .field("queries_served", s.queries_served);
    v
}

/// The `metrics-text` op: Prometheus exposition format, shipped in the
/// `text` field of a one-line JSON response (the wire layer escapes
/// the newlines; `planartest metrics` unescapes and prints it).
fn handle_metrics_text(service: &Service) -> Value {
    use std::fmt::Write as _;
    let mut text = service.telemetry().prometheus_text();
    // Outbound-path counters live on `Connections`, not `Telemetry`,
    // so the protocol layer appends them to the exposition.
    let s = service.stats();
    for (name, kind, v) in [
        ("responses_lost", "counter", s.responses_lost),
        (
            "responses_lost_shutdown",
            "counter",
            s.responses_lost_shutdown,
        ),
        ("responses_shed", "counter", s.responses_shed),
        ("outbound_depth_hwm", "gauge", s.outbound_depth_hwm as u64),
        ("writer_stalls", "counter", s.writer_stalls),
    ] {
        let _ = writeln!(text, "# TYPE planartest_{name} {kind}");
        let _ = writeln!(text, "planartest_{name} {v}");
    }
    Value::obj().field("ok", true).field("text", text)
}

fn handle_families() -> Value {
    let families: Vec<Value> = spec::families()
        .iter()
        .map(|f| {
            Value::obj()
                .field("name", f.name)
                .field("args", f.args)
                .field("randomized", f.randomized)
                .field("planar", f.planar)
                .field("certification", f.certification)
        })
        .collect();
    Value::obj().field("ok", true).field("families", families)
}

/// Handles one parsed request object.
#[must_use]
pub fn handle_request(service: &mut Service, req: &Value) -> Value {
    match req.get("op").and_then(Value::as_str) {
        Some("ingest") => handle_ingest(service, req),
        Some("query") => handle_query(service, req),
        Some("batch") => handle_batch(service, req),
        Some("stats") => handle_stats(service),
        Some("metrics") => handle_metrics(service),
        Some("metrics-text") => handle_metrics_text(service),
        Some("families") => handle_families(),
        Some(other) => error(format!(
            "unknown op `{other}` (expected ingest/query/batch/stats/metrics/metrics-text/families)"
        )),
        None => error("request needs a string `op` field"),
    }
}

/// Handles one raw request line (parse + dispatch; never panics on
/// untrusted input).
#[must_use]
pub fn handle_line(service: &mut Service, line: &str) -> Value {
    match Value::parse(line) {
        Ok(req) => handle_request(service, &req),
        Err(e) => error(format!("bad request: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ingest(service: &mut Service, name: &str, spec: &str) -> Value {
        handle_line(
            service,
            &Value::obj()
                .field("op", "ingest")
                .field("name", name)
                .field("spec", spec)
                .to_string(),
        )
    }

    #[test]
    fn ingest_query_warm_transcript() {
        let mut s = Service::new();
        let r = ingest(&mut s, "city", "tri_grid(5,5)");
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("n").unwrap().as_u64(), Some(25));
        let fp = r.get("fingerprint").unwrap().as_str().unwrap().to_string();

        let q = Value::obj()
            .field("op", "query")
            .field("graph", "city")
            .field("epsilon", 0.2)
            .field("phases", 5u64)
            .field("seed", 7u64)
            .to_string();
        let cold = handle_line(&mut s, &q);
        assert_eq!(cold.get("verdict").unwrap().as_str(), Some("accept"));
        assert_eq!(cold.get("cache").unwrap().as_str(), Some("cold"));
        assert!(cold.get("rounds").unwrap().as_u64().unwrap() > 0);

        let warm = handle_line(&mut s, &q);
        assert_eq!(warm.get("cache").unwrap().as_str(), Some("warm"));
        assert_eq!(
            warm.get("rounds").unwrap().as_u64(),
            cold.get("rounds").unwrap().as_u64(),
            "replay is bit-identical"
        );

        // Query by fingerprint resolves to the same entry.
        let by_fp = handle_line(
            &mut s,
            &Value::obj()
                .field("op", "query")
                .field("fingerprint", fp.as_str())
                .field("epsilon", 0.2)
                .field("phases", 5u64)
                .field("seed", 7u64)
                .to_string(),
        );
        assert_eq!(by_fp.get("cache").unwrap().as_str(), Some("warm"));

        let stats = handle_line(&mut s, "{\"op\":\"stats\"}");
        assert_eq!(stats.get("engine_passes").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("warm_hits").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn reject_carries_witness() {
        let mut s = Service::new();
        ingest(&mut s, "far", "k5_chain(5)");
        let r = handle_line(
            &mut s,
            &Value::obj()
                .field("op", "query")
                .field("graph", "far")
                .field("epsilon", 0.05)
                .field("phases", 5u64)
                .to_string(),
        );
        assert_eq!(r.get("verdict").unwrap().as_str(), Some("reject"));
        assert!(!r
            .get("rejecting_nodes")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
        assert!(r.get("reject_reasons").is_some());
    }

    #[test]
    fn batch_coalesces() {
        let mut s = Service::new();
        ingest(&mut s, "p", "tri_grid(5,5)");
        let queries: Vec<Value> = (0..3u64)
            .map(|seed| {
                Value::obj()
                    .field("graph", "p")
                    .field("epsilon", 0.2)
                    .field("phases", 5u64)
                    .field("seed", seed)
            })
            .collect();
        let r = handle_request(
            &mut s,
            &Value::obj().field("op", "batch").field("queries", queries),
        );
        let responses = r.get("responses").unwrap().as_arr().unwrap();
        assert_eq!(responses.len(), 3);
        for resp in responses {
            assert_eq!(resp.get("coalesced").unwrap().as_u64(), Some(3));
        }
        assert_eq!(s.engine_passes(), 1);
    }

    #[test]
    fn families_listed() {
        let mut s = Service::new();
        let r = handle_line(&mut s, "{\"op\":\"families\"}");
        assert_eq!(
            r.get("families").unwrap().as_arr().unwrap().len(),
            spec::families().len()
        );
    }

    #[test]
    fn to_disk_ingest_registers_mapped_and_reports_tier() {
        let dir = std::env::temp_dir().join(format!("pt_proto_disk_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = Service::new();
        s.set_state_dir(&dir).unwrap();
        let r = handle_request(
            &mut s,
            &Value::obj()
                .field("op", "ingest")
                .field("name", "big")
                .field("spec", "grid(40,40)")
                .field("to_disk", true),
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r}");
        assert_eq!(r.get("tier").unwrap().as_str(), Some("mapped"));
        let stats = handle_line(&mut s, "{\"op\":\"stats\"}");
        assert_eq!(stats.get("mapped_graphs").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("resident_graphs").unwrap().as_u64(), Some(0));
        // Mapped graphs serve queries through the same engine path.
        let q = handle_line(
            &mut s,
            &Value::obj()
                .field("op", "query")
                .field("graph", "big")
                .field("epsilon", 0.2)
                .field("phases", 5u64)
                .to_string(),
        );
        assert_eq!(q.get("verdict").unwrap().as_str(), Some("accept"));
        // Without a state dir the flag is a typed error response.
        let bare = handle_request(
            &mut Service::new(),
            &Value::obj()
                .field("op", "ingest")
                .field("name", "x")
                .field("spec", "grid(3,3)")
                .field("to_disk", true),
        );
        assert_eq!(bare.get("ok").unwrap().as_bool(), Some(false));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_are_responses_not_panics() {
        let mut s = Service::new();
        for bad in [
            "not json",
            "{}",
            "{\"op\":\"warp\"}",
            "{\"op\":\"ingest\",\"name\":\"x\"}",
            "{\"op\":\"ingest\",\"name\":\"x\",\"spec\":\"nope(1)\"}",
            "{\"op\":\"query\"}",
            "{\"op\":\"query\",\"graph\":\"missing\"}",
            "{\"op\":\"query\",\"graph\":\"g\",\"epsilon\":7}",
            "{\"op\":\"query\",\"graph\":\"g\",\"backend\":\"warp\"}",
            "{\"op\":\"query\",\"graph\":\"g\",\"property\":\"girth\"}",
            "{\"op\":\"query\",\"graph\":\"g\",\"embedding\":\"best\"}",
            "{\"op\":\"query\",\"graph\":\"g\",\"fingerprint\":\"00\"}",
            "{\"op\":\"batch\"}",
            "{\"op\":\"batch\",\"queries\":[{}]}",
        ] {
            let r = handle_line(&mut s, bad);
            assert_eq!(r.get("ok").unwrap().as_bool(), Some(false), "{bad}");
            assert!(r.get("error").is_some(), "{bad}");
        }
    }
}
