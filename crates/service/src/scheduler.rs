//! The scheduler layer: the [`Service`] front object and the
//! background drain loop ([`Server`]).
//!
//! [`Service`] owns the [`GraphRegistry`], the [`ResultCache`] and a
//! queue of pending queries. Draining runs in four decoupled stages:
//!
//! 1. **resolve** — per query, in submission order: resolve the graph
//!    reference, build the cache key, answer warm/certificate hits
//!    immediately;
//! 2. **group** — bucket the misses by `(graph, config, property)`
//!    key, first-seen order;
//! 3. **execute** — run each group through **one** instance-multiplexed
//!    [`PlanarityTester::run_many`](planartest_core::PlanarityTester::run_many)
//!    pass, independent groups fanned across a
//!    [`TrialRunner`] pool (the `exec` module) — pure, so parallel and
//!    sequential drains are bit-for-bit identical;
//! 4. **respond** — apply cache inserts and counters sequentially in
//!    group order and fill every response slot, submission order
//!    preserved.
//!
//! [`Service::drain`] is the synchronous, caller-driven form of that
//! pipeline (one cycle, responses returned). [`Server`] is the
//! concurrent form: a dedicated thread owns the service and runs a
//! *pipelined* version of the same cycle against the shared
//! [`SubmissionQueue`] that every transport
//! ([`crate::transport`]) feeds, waking on queue depth, a control op,
//! or a configurable linger timer — so *independent clients'*
//! same-graph queries coalesce into shared engine passes without any
//! client knowing about the others. The pipelined loop differs from
//! the synchronous drain in wall-clock shape only, never in results:
//!
//! - **writes are off the critical path** — responses go to bounded
//!   per-connection outbound queues drained by dedicated writer
//!   threads ([`Connections`]), so one stalled client cannot block
//!   the cycle;
//! - **hits take a fast path** — warm-cache and certificate answers
//!   are enqueued to their connection's writer at resolve time,
//!   before the cycle's execute barrier;
//! - **cycles overlap** — while the group-execution pool runs cycle
//!   N's engine passes, the drain thread resolves cycle N+1's
//!   arrivals against the cache (deferring anything that touches an
//!   in-flight group or needs mutable service state).
//!
//! Responses are still routed back per-connection in submission order
//! (a sequencing router re-orders out-of-order fulfilments), and a
//! shutdown request (stdin EOF, SIGTERM) flushes everything pending —
//! including the outbound writer queues — before the loop exits.

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use planartest_sim::TrialRunner;

use crate::cache::{CacheKey, ResultCache};
use crate::error::ServiceError;
use crate::exec::{execute_groups, Group, GroupPass};
use crate::persist::{CertificateLog, CertificateRecord};
use crate::pipeline::{ResponseRouter, Token};
use crate::protocol;
use crate::query::{CacheStatus, Outcome, Property, Query, QueryId, QueryResponse};
use crate::registry::GraphRegistry;
use crate::telemetry::{Clock, Route, StageTimes, Telemetry, WakeReason, WAKE_REASONS};
use crate::transport::{
    spawn_stdio, spawn_tcp_listener, ConnectionId, Connections, Submission, SubmissionQueue,
};
use crate::wire::{Value, DEFAULT_MAX_FRAME};

/// One drained query: the id [`Service::submit`] handed out plus the
/// response or the per-query failure.
pub type DrainedQuery = (QueryId, Result<QueryResponse, ServiceError>);

/// Aggregate service telemetry (the `stats` wire op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Distinct registered graphs (both tiers).
    pub graphs: usize,
    /// Graphs in the hot heap-CSR tier.
    pub resident_graphs: usize,
    /// Graphs served zero-copy from the mmap spill tier.
    pub mapped_graphs: usize,
    /// `(graph, config, property)` cache slots.
    pub cache_slots: usize,
    /// Stored per-seed outcomes across all slots.
    pub cached_outcomes: usize,
    /// Cache hit/miss/eviction counters.
    pub cache: crate::cache::CacheStats,
    /// Accept stripes currently resident in the cache LRU (the
    /// occupancy `cache.evictions` is measured against).
    pub accept_stripes: usize,
    /// The accept-stripe LRU capacity.
    pub accept_capacity: usize,
    /// Engine passes executed (each pass may serve many queries).
    pub engine_passes: u64,
    /// Queries answered (from cache or engine).
    pub queries_served: u64,
    /// Submissions waiting in the bound queue right now (0 when no
    /// queue is bound — the lib-embedded, serverless case).
    pub queue_depth: usize,
    /// Deepest the bound queue has ever been (0 when no queue is
    /// bound). Unlike `queue_depth` this survives the drain, so an
    /// overload episode stays diagnosable after the backlog clears.
    pub queue_depth_hwm: usize,
    /// Responses computed but never delivered *mid-flight* — the
    /// addressed connection was gone, or its writer died on a write
    /// failure — while the server was live (0 when no connection table
    /// is bound). Shutdown-flush casualties are counted separately in
    /// [`responses_lost_shutdown`](Self::responses_lost_shutdown).
    pub responses_lost: u64,
    /// Responses dropped during the final shutdown flush (the client
    /// hung up while the server was draining its outbound queue).
    pub responses_lost_shutdown: u64,
    /// Responses shed because the addressed connection's bounded
    /// outbound queue was full (`--outbound-depth`): the slow-reader
    /// backpressure policy chose dropping over blocking the cycle.
    pub responses_shed: u64,
    /// Deepest any per-connection outbound queue has ever been.
    pub outbound_depth_hwm: usize,
    /// Writer-thread stalls: single response writes that took longer
    /// than the stall threshold (a slow or unreading client).
    pub writer_stalls: u64,
    /// Microseconds since the service's telemetry epoch.
    pub uptime_micros: u64,
    /// Drain-loop cycles executed.
    pub drain_cycles: u64,
    /// Drain-loop wake reason counts: `[depth, linger, control,
    /// shutdown, pipeline]`.
    pub wake: [u64; WAKE_REASONS],
}

/// What [`Service::set_state_dir`] restored from a durable state
/// directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StateSummary {
    /// Graphs re-mapped from CSR spills (zero-copy, no rebuild).
    pub graphs_restored: usize,
    /// Reject certificates replayed from the write-ahead log into the
    /// result cache.
    pub certificates_replayed: usize,
    /// Log lines skipped during replay: a torn tail from a crash
    /// mid-append (truncated away) plus any malformed records.
    pub tail_skipped: usize,
}

/// A pending query as the scheduler sees it after resolution.
#[derive(Debug)]
pub(crate) struct Resolved {
    pub(crate) id: QueryId,
    pub(crate) key: CacheKey,
    pub(crate) seed: u64,
    pub(crate) query: Query,
    /// Where the response routes back to (`None` for lib-embedded
    /// drains with no connection).
    pub(crate) conn: Option<ConnectionId>,
    /// Stage spans so far: submit stamp, queue and resolve spans
    /// filled; execute/respond stamped by `apply_group`.
    pub(crate) stages: StageTimes,
}

/// What the resolve stage decided for one query.
pub(crate) enum Resolution {
    /// Answered without engine work (cache hit or resolution failure).
    Done(Result<QueryResponse, ServiceError>),
    /// Needs an engine pass; goes to the group stage.
    Miss(Resolved),
}

/// The long-running query service (see the crate-level docs for the
/// full picture: registry + cache + coalescing scheduler).
#[derive(Debug)]
pub struct Service {
    registry: GraphRegistry,
    cache: ResultCache,
    queue: Vec<(QueryId, Query, u64)>,
    next_id: QueryId,
    engine_passes: u64,
    queries_served: u64,
    /// The group-execution pool. One thread (the default) reproduces
    /// the historical strictly-sequential drain; more threads fan
    /// independent groups out without changing any result bit.
    runner: TrialRunner,
    /// The shared telemetry sink (histograms, stage spans, trace log).
    telemetry: Arc<Telemetry>,
    /// The submission queue this service drains, when server-hosted —
    /// lets `stats` report live queue depth and its high-water mark.
    bound_queue: Option<Arc<SubmissionQueue>>,
    /// The connection table responses route through, when
    /// server-hosted — lets `stats` report response losses.
    bound_connections: Option<Arc<Connections>>,
    /// The reject-certificate write-ahead log, when a state directory
    /// is attached. Every *newly formed* certificate is appended
    /// (fsync'd) before its response goes out.
    state_log: Option<CertificateLog>,
}

impl Default for Service {
    fn default() -> Self {
        Service {
            registry: GraphRegistry::default(),
            cache: ResultCache::default(),
            queue: Vec::new(),
            next_id: 0,
            engine_passes: 0,
            queries_served: 0,
            runner: TrialRunner::new(1),
            telemetry: Arc::new(Telemetry::default()),
            bound_queue: None,
            bound_connections: None,
            state_log: None,
        }
    }
}

impl Service {
    /// An empty service (sequential group execution).
    #[must_use]
    pub fn new() -> Self {
        Service::default()
    }

    /// Replaces the telemetry clock (tests inject
    /// [`Clock::mock`] here for deterministic stage timings).
    #[must_use]
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.telemetry = Arc::new(Telemetry::new(clock));
        self
    }

    /// The shared telemetry sink.
    #[must_use]
    pub fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Binds the submission queue this service is drained from, so
    /// [`stats`](Self::stats) can report live queue depth (done by
    /// [`Server::start`]).
    pub fn bind_queue(&mut self, queue: Arc<SubmissionQueue>) {
        self.bound_queue = Some(queue);
    }

    /// Binds the connection table responses route through, so
    /// [`stats`](Self::stats) can report per-connection response
    /// losses (done by [`Server::start`]).
    pub fn bind_connections(&mut self, connections: Arc<Connections>) {
        self.bound_connections = Some(connections);
    }

    /// Sets the worker count independent groups fan across during a
    /// drain (`0` = hardware parallelism, `1` = sequential). Purely a
    /// wall-clock knob: drained results are bit-for-bit identical for
    /// every value (see `tests/drain_proptests.rs`).
    #[must_use]
    pub fn with_group_threads(mut self, threads: usize) -> Self {
        self.set_group_threads(threads);
        self
    }

    /// See [`with_group_threads`](Self::with_group_threads).
    pub fn set_group_threads(&mut self, threads: usize) {
        self.runner = TrialRunner::new(threads);
    }

    /// The group-execution worker count.
    #[must_use]
    pub fn group_threads(&self) -> usize {
        self.runner.threads()
    }

    /// Bounds the result cache's per-seed accept stripes (LRU; reject
    /// certificates are never evicted). See
    /// [`ResultCache::set_accept_capacity`].
    pub fn set_cache_accepts(&mut self, capacity: usize) {
        self.cache.set_accept_capacity(capacity);
    }

    /// Attaches a durable state directory and restores everything in
    /// it: graphs re-map zero-copy from their CSR spills, and reject
    /// certificates replay from the write-ahead log into the cache —
    /// a cold restart answers every previously-certified query without
    /// a single engine pass. From here on, ingests write through to
    /// disk and newly formed certificates are appended (fsync'd) to
    /// the log.
    ///
    /// # Errors
    ///
    /// I/O failures creating the directory layout or opening the log.
    /// Torn or malformed log records are *not* errors — they are
    /// counted in [`StateSummary::tail_skipped`] and truncated away.
    pub fn set_state_dir(&mut self, dir: &Path) -> Result<StateSummary, ServiceError> {
        let graphs_restored = self.registry.set_state_dir(dir)?;
        let (log, replay) = CertificateLog::open(&dir.join("certificates.ldjson"))?;
        let mut certificates_replayed = 0usize;
        for record in replay.records {
            if self
                .cache
                .load_certificate(&record.key, record.seed, record.outcome)
            {
                certificates_replayed += 1;
            }
        }
        self.state_log = Some(log);
        Ok(StateSummary {
            graphs_restored,
            certificates_replayed,
            tail_skipped: replay.skipped,
        })
    }

    /// Builder form of [`set_state_dir`](Self::set_state_dir),
    /// discarding the restore summary.
    ///
    /// # Errors
    ///
    /// See [`set_state_dir`](Self::set_state_dir).
    pub fn with_state_dir(mut self, dir: &Path) -> Result<Self, ServiceError> {
        self.set_state_dir(dir)?;
        Ok(self)
    }

    /// Rewrites the certificate log to exactly the live certificate
    /// set (dropping duplicates and torn garbage accumulated across
    /// restarts), atomically. Returns the number of records written.
    ///
    /// # Errors
    ///
    /// [`crate::persist::PersistError::NoStateDir`] without a state
    /// directory; I/O failures writing or swapping the compacted log.
    pub fn compact_certificates(&mut self) -> Result<usize, ServiceError> {
        let Some(log) = self.state_log.as_mut() else {
            return Err(ServiceError::Persist(
                crate::persist::PersistError::NoStateDir,
            ));
        };
        let live = self
            .cache
            .certificates()
            .map(|(key, seed, outcome)| CertificateRecord {
                key,
                seed,
                outcome: outcome.clone(),
            });
        Ok(log.compact(live)?)
    }

    /// The graph registry (immutable view).
    #[must_use]
    pub fn registry(&self) -> &GraphRegistry {
        &self.registry
    }

    /// The graph registry, for ingestion.
    pub fn registry_mut(&mut self) -> &mut GraphRegistry {
        &mut self.registry
    }

    /// Engine passes executed so far. A warm or certificate hit does not
    /// advance this counter — that is how tests *prove* a cached reject
    /// replays its witness without re-running the partition.
    #[must_use]
    pub fn engine_passes(&self) -> u64 {
        self.engine_passes
    }

    /// Aggregate telemetry.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            graphs: self.registry.len(),
            resident_graphs: self.registry.resident(),
            mapped_graphs: self.registry.mapped(),
            cache_slots: self.cache.len(),
            cached_outcomes: self.cache.stored_outcomes(),
            cache: self.cache.stats(),
            accept_stripes: self.cache.accept_stripes(),
            accept_capacity: self.cache.accept_capacity(),
            engine_passes: self.engine_passes,
            queries_served: self.queries_served,
            queue_depth: self.bound_queue.as_ref().map_or(0, |q| q.depth()),
            queue_depth_hwm: self.bound_queue.as_ref().map_or(0, |q| q.depth_hwm()),
            responses_lost: self
                .bound_connections
                .as_ref()
                .map_or(0, |c| c.lost_responses()),
            responses_lost_shutdown: self
                .bound_connections
                .as_ref()
                .map_or(0, |c| c.lost_shutdown_responses()),
            responses_shed: self
                .bound_connections
                .as_ref()
                .map_or(0, |c| c.shed_responses()),
            outbound_depth_hwm: self
                .bound_connections
                .as_ref()
                .map_or(0, |c| c.outbound_depth_hwm()),
            writer_stalls: self
                .bound_connections
                .as_ref()
                .map_or(0, |c| c.writer_stalls()),
            uptime_micros: self.telemetry.uptime_micros(),
            drain_cycles: self.telemetry.cycles(),
            wake: self.telemetry.wake_counts(),
        }
    }

    /// Drops all cached results (cold-path measurement hook for load
    /// drivers; the registry stays resident).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Enqueues a query for the next [`drain`](Self::drain); returns its
    /// id. The submit stamp taken here is the origin of the query's
    /// queue-wait stage span.
    pub fn submit(&mut self, query: Query) -> QueryId {
        let id = self.next_query_id();
        let at = self.telemetry.now_micros();
        self.queue.push((id, query, at));
        id
    }

    /// Number of queries waiting for the next drain.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    fn next_query_id(&mut self) -> QueryId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Serves one query immediately (a drain of one). Queries already
    /// [`submit`](Self::submit)ted stay queued for the next
    /// [`drain`](Self::drain) — this serves *only* the given query.
    ///
    /// # Errors
    ///
    /// Resolution or engine failures for this query.
    pub fn query(&mut self, query: Query) -> Result<QueryResponse, ServiceError> {
        let pending = std::mem::take(&mut self.queue);
        let id = self.submit(query);
        let mut drained = self.drain();
        self.queue = pending;
        debug_assert_eq!(drained.len(), 1);
        let (got, result) = drained.pop().expect("one pending query");
        debug_assert_eq!(got, id);
        result
    }

    /// Drains the queue: one full resolve → group → execute → respond
    /// cycle over everything [`submit`](Self::submit)ted.
    ///
    /// Responses come back in submission order. Per-query failures
    /// (unknown graph, engine error) fail that query alone, not the
    /// drain; an engine failure fails every query of its group (they
    /// shared the pass).
    pub fn drain(&mut self) -> Vec<DrainedQuery> {
        let pending = std::mem::take(&mut self.queue);
        let mut results: Vec<Option<DrainedQuery>> = Vec::new();
        results.resize_with(pending.len(), || None);

        // Stage 1: resolve (cache hits answered in place).
        let mut misses: Vec<(usize, Resolved)> = Vec::new();
        for (slot, (id, query, at)) in pending.into_iter().enumerate() {
            match self.resolve_one(id, query, at, None, Route::Cycle) {
                Resolution::Done(result) => results[slot] = Some((id, result)),
                Resolution::Miss(resolved) => misses.push((slot, resolved)),
            }
        }

        // Stage 2: group. Stage 3: execute (pure, possibly parallel).
        let groups = group_misses(misses);
        let clock = self.telemetry.clock();
        let passes = execute_groups(&self.registry, &groups, &self.runner, &clock);

        // Stage 4: respond (ordered state, sequential in group order).
        for (group, pass) in groups.into_iter().zip(passes) {
            self.apply_group(group, pass, &mut results);
        }

        results
            .into_iter()
            .map(|r| r.expect("every pending query answered"))
            .collect()
    }

    /// Stage 1 for one query: registry resolution + cache lookup. See
    /// [`resolve_query`] (the pipelined drain loop calls the free form
    /// with split field borrows while the execute stage holds the
    /// registry).
    pub(crate) fn resolve_one(
        &mut self,
        id: QueryId,
        query: Query,
        submitted_micros: u64,
        conn: Option<ConnectionId>,
        route: Route,
    ) -> Resolution {
        resolve_query(
            &self.registry,
            &mut self.cache,
            &self.telemetry,
            &mut self.queries_served,
            id,
            query,
            submitted_micros,
            conn,
            route,
        )
    }

    /// Stage 4 for one group: bump the pass counter, record outcomes in
    /// the cache, and fill the members' response slots with per-query
    /// latency attribution.
    pub(crate) fn apply_group(
        &mut self,
        group: Group,
        pass: GroupPass,
        results: &mut [Option<DrainedQuery>],
    ) {
        self.engine_passes += 1;
        // One stamp closes every member's execute span (resolve end →
        // the group's pass applied here); one more, after the cache
        // inserts, closes the respond span. Reusing the stamps keeps
        // stage sums exactly equal to end-to-end.
        let applied_at = self.telemetry.now_micros();
        let by_seed = match pass.by_seed {
            Ok(v) => v,
            Err(e) => {
                for (slot, r) in group.members {
                    let mut stages = r.stages;
                    stages.execute_micros = applied_at.saturating_sub(
                        stages.submitted_micros + stages.queue_micros + stages.resolve_micros,
                    );
                    self.telemetry.record_failed_query(stages);
                    results[slot] = Some((r.id, Err(ServiceError::Engine(e.clone()))));
                }
                return;
            }
        };
        let engine_micros = pass.engine_micros;
        let coalesced = group.seeds.len();
        let total_rounds: u64 = by_seed
            .iter()
            .map(|(_, o)| o.stats().total_rounds())
            .sum::<u64>()
            .max(1);
        // The paper-faithful Demoucron mode is not one-sided (it can
        // reject planar graphs — the Claim 10 refutation), so its
        // rejects must not become seed-universal certificates.
        let certifiable = !matches!(
            group.cfg.embedding,
            planartest_core::EmbeddingMode::Demoucron
        );
        for (seed, outcome) in &by_seed {
            let formed = self.cache.insert(&group.key, *seed, outcome, certifiable);
            // A newly formed certificate is durable before its response
            // goes out. A log failure degrades durability, never
            // availability: the query is still answered from memory.
            if formed {
                if let Some(log) = self.state_log.as_mut() {
                    let record = CertificateRecord {
                        key: group.key,
                        seed: *seed,
                        outcome: (*outcome).clone(),
                    };
                    if let Err(e) = log.append(&record) {
                        eprintln!("planartest: certificate log append failed: {e}");
                    }
                }
            }
        }
        let mut pass_stats = planartest_sim::SimStats::default();
        for (_, outcome) in &by_seed {
            pass_stats.merge(outcome.stats());
        }
        self.telemetry.record_pass(&pass_stats, group.members.len());
        let responded_at = self.telemetry.now_micros();
        // Indexed lane lookup: a Monte-Carlo fan-out can coalesce
        // thousands of seeds, and every member resolves its lane here.
        let outcome_of: HashMap<u64, &Outcome> = by_seed.iter().map(|(s, o)| (*s, o)).collect();
        for (slot, r) in &group.members {
            let lane = group.lane(r);
            let outcome = (*outcome_of.get(&lane).expect("every lane ran")).clone();
            let attributed =
                engine_micros.saturating_mul(outcome.stats().total_rounds()) / total_rounds;
            let mut stages = r.stages;
            let resolved_at = stages.submitted_micros + stages.queue_micros + stages.resolve_micros;
            stages.execute_micros = applied_at.saturating_sub(resolved_at);
            stages.respond_micros = responded_at.saturating_sub(applied_at);
            self.telemetry.record_query(
                r.conn,
                r.id,
                group.key.property,
                CacheStatus::Cold,
                Route::Cycle,
                stages,
                coalesced,
                engine_micros,
            );
            results[*slot] = Some((
                r.id,
                Ok(QueryResponse {
                    id: r.id,
                    graph: group.key.graph,
                    property: group.key.property,
                    seed: lane,
                    outcome,
                    cache: CacheStatus::Cold,
                    coalesced,
                    engine_micros,
                    attributed_micros: attributed,
                    stages,
                }),
            ));
        }
    }
}

/// Stage 1 for one query, in free form: registry resolution + cache
/// lookup against explicitly-borrowed service fields, so the pipelined
/// drain loop can resolve cycle N+1's arrivals while the execute stage
/// holds shared borrows of the registry and runner.
///
/// Stage spans stay contiguous by construction: the queue span ends
/// on the single stamp taken at entry, and the resolve span ends on
/// the single stamp taken when the walk finishes — so
/// `queue + resolve (+ execute + respond)` sums *exactly* to
/// end-to-end on the service clock.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resolve_query(
    registry: &GraphRegistry,
    cache: &mut ResultCache,
    telemetry: &Telemetry,
    queries_served: &mut u64,
    id: QueryId,
    query: Query,
    submitted_micros: u64,
    conn: Option<ConnectionId>,
    route: Route,
) -> Resolution {
    *queries_served += 1;
    let resolve_start = telemetry.now_micros();
    let mut stages = StageTimes {
        submitted_micros,
        queue_micros: resolve_start.saturating_sub(submitted_micros),
        ..StageTimes::default()
    };
    let close = |stages: &mut StageTimes, telemetry: &Telemetry| {
        stages.resolve_micros = telemetry.now_micros().saturating_sub(resolve_start);
    };
    let entry = match registry.resolve(&query.graph) {
        Ok(e) => e,
        Err(err) => {
            close(&mut stages, telemetry);
            telemetry.record_failed_query(stages);
            return Resolution::Done(Err(err));
        }
    };
    let key = CacheKey {
        graph: entry.fingerprint,
        config: query.cfg.fingerprint(),
        property: query.property,
    };
    let seed = query.cfg.seed;
    if let Some((outcome, status, stored_seed)) = cache.lookup(&key, seed) {
        close(&mut stages, telemetry);
        telemetry.record_query(conn, id, query.property, status, route, stages, 0, 0);
        return Resolution::Done(Ok(QueryResponse {
            id,
            graph: key.graph,
            property: query.property,
            seed: stored_seed,
            outcome,
            cache: status,
            coalesced: 0,
            engine_micros: 0,
            attributed_micros: 0,
            stages,
        }));
    }
    close(&mut stages, telemetry);
    Resolution::Miss(Resolved {
        id,
        key,
        seed,
        query,
        conn,
        stages,
    })
}

/// Stage 2: bucket resolve-stage misses into engine groups by cache
/// key, preserving first-seen order of both groups and members, and
/// collect each group's distinct seed lanes.
pub(crate) fn group_misses(misses: Vec<(usize, Resolved)>) -> Vec<Group> {
    let mut index: HashMap<(u128, u128, Property), usize> = HashMap::new();
    let mut groups: Vec<Group> = Vec::new();
    for (slot, resolved) in misses {
        let gk = (
            resolved.key.graph.0,
            resolved.key.config.0,
            resolved.key.property,
        );
        let g = match index.get(&gk) {
            Some(&g) => g,
            None => {
                index.insert(gk, groups.len());
                groups.push(Group {
                    key: resolved.key,
                    cfg: resolved.query.cfg.clone(),
                    backend: resolved.query.backend,
                    seeds: Vec::new(),
                    members: Vec::new(),
                });
                groups.len() - 1
            }
        };
        let group = &mut groups[g];
        let lane = group.lane(&resolved);
        if !group.seeds.contains(&lane) {
            group.seeds.push(lane);
        }
        group.members.push((slot, resolved));
    }
    groups
}

/// Tuning for the background drain loop (see [`Server::start`]).
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// How long the oldest pending query may wait for company before a
    /// cycle fires anyway. `ZERO` (the default) serves every request
    /// immediately — the latency end of the linger-vs-latency
    /// tradeoff; raising it widens the cross-client coalescing window
    /// at the cost of that much added tail latency for lone queries.
    pub linger: Duration,
    /// Queue depth that fires a cycle before the linger expires
    /// (`usize::MAX` = depth never fires one; `linger` alone governs).
    pub wake_depth: usize,
    /// Per-frame byte cap on every transport
    /// ([`DEFAULT_MAX_FRAME`]).
    pub max_frame: usize,
    /// Per-connection outbound queue bound (`--outbound-depth`; `0` =
    /// unbounded). When a connection's writer falls this many responses
    /// behind, further responses to it are *shed* (counted in
    /// [`ServiceStats::responses_shed`]) instead of blocking the drain
    /// cycle.
    pub outbound_depth: usize,
    /// Per-connection in-flight submission cap (`--max-in-flight`;
    /// `0` = unbounded). A connection with this many unanswered
    /// submissions has its reader paused until responses drain, so one
    /// firehose client cannot starve the shared submission queue.
    pub max_in_flight: usize,
}

/// Default per-connection outbound queue bound.
pub const DEFAULT_OUTBOUND_DEPTH: usize = 1024;

/// Default per-connection in-flight submission cap.
pub const DEFAULT_MAX_IN_FLIGHT: usize = 1024;

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            linger: Duration::ZERO,
            wake_depth: usize::MAX,
            max_frame: DEFAULT_MAX_FRAME,
            outbound_depth: DEFAULT_OUTBOUND_DEPTH,
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
        }
    }
}

/// The concurrent server: a dedicated thread owns a [`Service`] and
/// drains the shared submission queue in cycles; transports attach via
/// [`attach_stdio`](Server::attach_stdio) /
/// [`listen_unix`](Server::listen_unix) /
/// [`listen_tcp`](Server::listen_tcp).
#[derive(Debug)]
pub struct Server {
    queue: Arc<SubmissionQueue>,
    connections: Arc<Connections>,
    max_frame: usize,
    handle: thread::JoinHandle<Service>,
}

impl Server {
    /// Starts the background drain loop over `service`.
    #[must_use]
    pub fn start(mut service: Service, opts: ServeOptions) -> Server {
        let queue = Arc::new(SubmissionQueue::new());
        // One timebase end to end: arrival stamps in the queue and
        // stage stamps in the scheduler come off the same clock.
        queue.set_clock(service.telemetry.clock());
        service.bind_queue(Arc::clone(&queue));
        let connections = Arc::new(Connections::new());
        connections.set_limits(opts.outbound_depth, opts.max_in_flight);
        // Writer threads time their writes on the service clock.
        connections.set_telemetry(service.telemetry());
        service.bind_connections(Arc::clone(&connections));
        let handle = {
            let queue = Arc::clone(&queue);
            let connections = Arc::clone(&connections);
            thread::Builder::new()
                .name("planartest-drain".into())
                .spawn(move || drain_loop(service, &queue, &connections, opts))
                .expect("spawn drain loop")
        };
        Server {
            queue,
            connections,
            max_frame: opts.max_frame,
            handle,
        }
    }

    /// Attaches stdin/stdout as a connection (the compatibility
    /// transport). EOF on stdin requests graceful shutdown.
    pub fn attach_stdio(&self) -> ConnectionId {
        spawn_stdio(&self.connections, &self.queue, self.max_frame)
    }

    /// Starts a unix-socket listener at `path`.
    ///
    /// # Errors
    ///
    /// Binding failures.
    #[cfg(unix)]
    pub fn listen_unix(&self, path: &Path) -> io::Result<()> {
        crate::transport::spawn_unix_listener(&self.connections, &self.queue, path, self.max_frame)
    }

    /// Starts a TCP listener; returns the bound address (`:0` resolves
    /// to an ephemeral port).
    ///
    /// # Errors
    ///
    /// Binding failures.
    pub fn listen_tcp(&self, addr: &str) -> io::Result<SocketAddr> {
        spawn_tcp_listener(&self.connections, &self.queue, addr, self.max_frame)
    }

    /// The shared submission queue (shutdown signalling, depth probes,
    /// or custom in-process transports).
    #[must_use]
    pub fn submission_queue(&self) -> Arc<SubmissionQueue> {
        Arc::clone(&self.queue)
    }

    /// The connection table (custom in-process transports: register a
    /// writer, push [`Submission`]s tagged with the returned id).
    #[must_use]
    pub fn connections(&self) -> Arc<Connections> {
        Arc::clone(&self.connections)
    }

    /// Requests graceful shutdown: pending and in-flight queries are
    /// answered, then the drain loop exits.
    pub fn request_shutdown(&self) {
        self.queue.request_shutdown();
    }

    /// Waits for the drain loop to finish (after
    /// [`request_shutdown`](Server::request_shutdown) or a transport
    /// EOF) and returns the service with its registry, cache and
    /// telemetry intact.
    ///
    /// # Panics
    ///
    /// If the drain thread panicked.
    #[must_use]
    pub fn join(self) -> Service {
        self.handle.join().expect("drain loop panicked")
    }
}

/// A response owed from an earlier cycle, carried into the next one by
/// the pipelined drain loop. Its router token was assigned at arrival,
/// so delivery order per connection is preserved no matter how many
/// cycles it rides.
enum Pending {
    /// A submission that arrived during overlap but could not be
    /// resolved early (control op, connection behind a control op, or
    /// a cache key with an in-flight engine group): replayed through
    /// the full dispatch next cycle.
    Raw(Token, Submission),
    /// A query resolved to a cache miss during overlap: goes straight
    /// to the group stage next cycle. Boxed to keep the carried-raw
    /// variant (the common case) small.
    Miss(Token, Box<Resolved>),
    /// A `batch` op resolved member-by-member during overlap with at
    /// least one miss: hits keep their already-recorded responses
    /// (re-resolving would double-count telemetry), misses go to the
    /// group stage next cycle.
    Batch(Token, Vec<BatchMember>),
}

/// One member of an overlap-resolved `batch` op.
enum BatchMember {
    /// Resolved at overlap time (hit or error), response in hand.
    Done(DrainedQuery),
    /// A cache miss: rides the next cycle's group stage.
    Miss(Resolved),
}

/// A response the pipelined loop owes after the execute barrier (the
/// fast path never creates one of these).
enum Deferred {
    /// One query miss: its response lives in the flat slot.
    Single(Token, usize),
    /// A `batch` op with at least one miss: one slot per member,
    /// re-assembled into a single `{"responses": [...]}` line.
    Batch(Token, Vec<usize>),
}

fn render_result(result: Result<QueryResponse, ServiceError>) -> Value {
    match result {
        Ok(response) => protocol::response_value(&response),
        Err(e) => protocol::error_value(&e),
    }
}

fn take_slot(flat: &mut [Option<DrainedQuery>], slot: usize) -> Value {
    render_result(flat[slot].take().expect("every cycle slot answered").1)
}

fn render_batch(slots: &[usize], flat: &mut [Option<DrainedQuery>]) -> Value {
    Value::obj().field("ok", true).field(
        "responses",
        slots
            .iter()
            .map(|&s| take_slot(flat, s))
            .collect::<Vec<Value>>(),
    )
}

/// Phase 1 of the pipelined cycle, for one submission: dispatch it
/// exactly like [`process_cycle`] would, but fulfil everything that
/// does not need the execute barrier — hits, control answers, errors —
/// through the router *immediately* (the hit fast path).
#[allow(clippy::too_many_arguments)]
fn dispatch_submission(
    service: &mut Service,
    router: &mut ResponseRouter,
    connections: &Connections,
    token: Token,
    sub: Submission,
    flat: &mut Vec<Option<DrainedQuery>>,
    misses: &mut Vec<(usize, Resolved)>,
    deferred: &mut Vec<Deferred>,
) {
    let (conn, at) = (sub.conn, sub.at_micros);
    match sub.request {
        Err(message) => router.fulfill(token, &protocol::error_value(&message), connections),
        Ok(req) => match req.get("op").and_then(Value::as_str) {
            Some("query") => match protocol::parse_query(&req) {
                Ok(q) => {
                    let id = service.next_query_id();
                    match service.resolve_one(id, q, at, Some(conn), Route::Fast) {
                        Resolution::Done(result) => {
                            router.fulfill(token, &render_result(result), connections);
                        }
                        Resolution::Miss(resolved) => {
                            let slot = flat.len();
                            flat.push(None);
                            misses.push((slot, resolved));
                            deferred.push(Deferred::Single(token, slot));
                        }
                    }
                }
                Err(e) => router.fulfill(token, &protocol::error_value(&e), connections),
            },
            Some("batch") => match protocol::parse_batch(&req) {
                Ok(queries) => {
                    let mut slots = Vec::with_capacity(queries.len());
                    let mut all_done = true;
                    for q in queries {
                        let id = service.next_query_id();
                        let slot = flat.len();
                        match service.resolve_one(id, q, at, Some(conn), Route::Fast) {
                            Resolution::Done(result) => flat.push(Some((id, result))),
                            Resolution::Miss(resolved) => {
                                flat.push(None);
                                misses.push((slot, resolved));
                                all_done = false;
                            }
                        }
                        slots.push(slot);
                    }
                    if all_done {
                        router.fulfill(token, &render_batch(&slots, flat), connections);
                    } else {
                        deferred.push(Deferred::Batch(token, slots));
                    }
                }
                Err(e) => router.fulfill(token, &protocol::error_value(&e), connections),
            },
            // Control ops (ingest/stats/families) and unknown ops:
            // handled in place, in arrival order, answered immediately.
            _ => router.fulfill(token, &protocol::handle_request(service, &req), connections),
        },
    }
}

/// The background drain loop: pipelined cycles until shutdown, then a
/// full flush of the per-connection outbound writer queues.
///
/// Each iteration: resolve carried work plus (when nothing is carried)
/// one `wait_cycle` batch, answering hits and control ops at resolve
/// time; then, while the group-execution pool runs the cycle's engine
/// passes, keep resolving newly-arrived submissions against the cache
/// (`wait_overlap`). A control op defers itself *and everything behind
/// it on its own connection* to the next cycle, so the per-connection
/// semantics of the synchronous cycle (an `ingest` is visible to every
/// query behind it on that connection) are preserved exactly; queries
/// whose cache key has an in-flight engine group defer without
/// blocking anyone. Deferred work is carried into the next iteration
/// with its delivery order pinned by the router tokens assigned at
/// arrival.
fn drain_loop(
    mut service: Service,
    queue: &SubmissionQueue,
    connections: &Connections,
    opts: ServeOptions,
) -> Service {
    let mut router = ResponseRouter::default();
    let mut carry: Vec<Pending> = Vec::new();
    loop {
        // Fresh submissions only when no carried work is waiting: a
        // carried miss must reach the engine before anything newer on
        // its connection is dispatched.
        let fresh = if carry.is_empty() {
            match queue.wait_cycle(opts.linger, opts.wake_depth) {
                Some(cycle) => Some(cycle),
                None => break,
            }
        } else {
            None
        };
        if matches!(fresh, Some((_, WakeReason::Shutdown))) {
            // From here on, undeliverable responses are shutdown-flush
            // casualties, not mid-flight losses.
            connections.begin_shutdown_flush();
        }

        // Phase 1: resolve in arrival order — carried items first
        // (their router tokens predate every fresh submission).
        let mut flat: Vec<Option<DrainedQuery>> = Vec::new();
        let mut misses: Vec<(usize, Resolved)> = Vec::new();
        let mut deferred: Vec<Deferred> = Vec::new();
        for pending in std::mem::take(&mut carry) {
            match pending {
                Pending::Raw(token, sub) => dispatch_submission(
                    &mut service,
                    &mut router,
                    connections,
                    token,
                    sub,
                    &mut flat,
                    &mut misses,
                    &mut deferred,
                ),
                Pending::Miss(token, resolved) => {
                    let slot = flat.len();
                    flat.push(None);
                    misses.push((slot, *resolved));
                    deferred.push(Deferred::Single(token, slot));
                }
                Pending::Batch(token, members) => {
                    let mut slots = Vec::with_capacity(members.len());
                    for member in members {
                        let slot = flat.len();
                        match member {
                            BatchMember::Done(drained) => flat.push(Some(drained)),
                            BatchMember::Miss(resolved) => {
                                flat.push(None);
                                misses.push((slot, resolved));
                            }
                        }
                        slots.push(slot);
                    }
                    deferred.push(Deferred::Batch(token, slots));
                }
            }
        }
        let recorded = fresh.as_ref().map(|(subs, reason)| (*reason, subs.len()));
        if let Some((submissions, _)) = fresh {
            for sub in submissions {
                let token = router.admit(sub.conn);
                dispatch_submission(
                    &mut service,
                    &mut router,
                    connections,
                    token,
                    sub,
                    &mut flat,
                    &mut misses,
                    &mut deferred,
                );
            }
        }

        // Phase 2: group. (Overlap batches were already recorded as
        // `pipeline` wakes when they were collected.)
        let groups = group_misses(misses);
        if let Some((reason, width)) = recorded {
            service.telemetry.record_cycle(reason, width, groups.len());
        }
        if groups.is_empty() {
            debug_assert!(deferred.is_empty(), "no groups, nothing can be deferred");
            continue;
        }

        // Phase 3: execute on a scoped thread while this thread keeps
        // resolving next-cycle arrivals against the cache. The borrows
        // split by field: the execute stage is pure over `registry` +
        // `runner`, the overlap walk mutates `cache` / the id counters.
        let in_flight: HashSet<(u128, u128, Property)> = groups
            .iter()
            .map(|g| (g.key.graph.0, g.key.config.0, g.key.property))
            .collect();
        queue.pipeline_begin();
        let registry = &service.registry;
        let runner = &service.runner;
        let telemetry = &service.telemetry;
        let cache = &mut service.cache;
        let queries_served = &mut service.queries_served;
        let next_id = &mut service.next_id;
        let passes = thread::scope(|scope| {
            let clock = telemetry.clock();
            let exec = scope.spawn({
                let groups = &groups;
                move || {
                    let passes = execute_groups(registry, groups, runner, &clock);
                    queue.pipeline_done();
                    passes
                }
            });
            // A deferral is a *per-connection* barrier: a control op
            // (ingest, stats, …) defers itself and everything behind
            // it on its own connection, so same-connection effects
            // (ingest-then-query) replay in arrival order next cycle —
            // while every other connection keeps flowing through the
            // fast path. Cross-connection arrival order around a
            // pending control op is not preserved; concurrent clients
            // race those orderings anyway.
            //
            // What each overlap arrival may do, decided before any
            // state moves:
            enum EarlyAction {
                /// Syntactic failure (bad frame, bad fields): the
                /// answer depends on no service state — fulfil now.
                Error(String),
                /// A plain query with no in-flight engine group on its
                /// key: resolve against the cache now.
                Query(Box<Query>),
                /// A batch whose members all avoid in-flight keys:
                /// resolve member-by-member now.
                Batch(Vec<Query>),
                /// A query touching an in-flight key: the running pass
                /// may be its answer, so it re-resolves next cycle
                /// (no barrier — later queries depend on nothing it
                /// does).
                Defer,
                /// A control op: defer it and barrier its connection.
                Block,
            }
            let key_in_flight = |q: &Query| {
                registry.resolve(&q.graph).is_ok_and(|entry| {
                    in_flight.contains(&(entry.fingerprint.0, q.cfg.fingerprint().0, q.property))
                })
            };
            let mut blocked: HashSet<ConnectionId> = HashSet::new();
            while let Some(batch) = queue.wait_overlap() {
                telemetry.record_cycle(WakeReason::Pipeline, batch.len(), 0);
                for sub in batch {
                    let (conn, at_micros) = (sub.conn, sub.at_micros);
                    let token = router.admit(conn);
                    let action = if blocked.contains(&conn) {
                        EarlyAction::Defer
                    } else {
                        match &sub.request {
                            Err(message) => EarlyAction::Error(message.clone()),
                            Ok(req) => match req.get("op").and_then(Value::as_str) {
                                Some("query") => match protocol::parse_query(req) {
                                    Ok(q) if key_in_flight(&q) => EarlyAction::Defer,
                                    Ok(q) => EarlyAction::Query(Box::new(q)),
                                    Err(e) => EarlyAction::Error(e),
                                },
                                Some("batch") => match protocol::parse_batch(req) {
                                    Ok(qs) if qs.iter().any(&key_in_flight) => EarlyAction::Defer,
                                    Ok(qs) => EarlyAction::Batch(qs),
                                    Err(e) => EarlyAction::Error(e),
                                },
                                _ => EarlyAction::Block,
                            },
                        }
                    };
                    let mut resolve_early = |q: Query| {
                        let id = *next_id;
                        *next_id += 1;
                        let resolution = resolve_query(
                            registry,
                            cache,
                            telemetry,
                            queries_served,
                            id,
                            q,
                            at_micros,
                            Some(conn),
                            Route::Fast,
                        );
                        (id, resolution)
                    };
                    match action {
                        EarlyAction::Error(message) => {
                            router.fulfill(token, &protocol::error_value(&message), connections);
                        }
                        EarlyAction::Query(q) => match resolve_early(*q) {
                            (_, Resolution::Done(result)) => {
                                router.fulfill(token, &render_result(result), connections);
                            }
                            (_, Resolution::Miss(resolved)) => {
                                carry.push(Pending::Miss(token, Box::new(resolved)));
                            }
                        },
                        EarlyAction::Batch(qs) => {
                            let mut members = Vec::with_capacity(qs.len());
                            let mut any_miss = false;
                            for q in qs {
                                members.push(match resolve_early(q) {
                                    (id, Resolution::Done(result)) => {
                                        BatchMember::Done((id, result))
                                    }
                                    (_, Resolution::Miss(resolved)) => {
                                        any_miss = true;
                                        BatchMember::Miss(resolved)
                                    }
                                });
                            }
                            if any_miss {
                                carry.push(Pending::Batch(token, members));
                            } else {
                                let responses: Vec<Value> = members
                                    .into_iter()
                                    .map(|m| match m {
                                        BatchMember::Done((_, result)) => render_result(result),
                                        BatchMember::Miss(_) => unreachable!("no member missed"),
                                    })
                                    .collect();
                                router.fulfill(
                                    token,
                                    &Value::obj().field("ok", true).field("responses", responses),
                                    connections,
                                );
                            }
                        }
                        EarlyAction::Defer => carry.push(Pending::Raw(token, sub)),
                        EarlyAction::Block => {
                            blocked.insert(conn);
                            carry.push(Pending::Raw(token, sub));
                        }
                    }
                }
            }
            exec.join().expect("group execution thread panicked")
        });

        // Phase 4: respond — apply passes in group order, then fulfil
        // the deferred responses (the router restores per-connection
        // submission order around anything answered early).
        for (group, pass) in groups.into_iter().zip(passes) {
            service.apply_group(group, pass, &mut flat);
        }
        for d in deferred {
            match d {
                Deferred::Single(token, slot) => {
                    let value = take_slot(&mut flat, slot);
                    router.fulfill(token, &value, connections);
                }
                Deferred::Batch(token, slots) => {
                    let value = render_batch(&slots, &mut flat);
                    router.fulfill(token, &value, connections);
                }
            }
        }
    }
    // Graceful shutdown: every computed response is already enqueued;
    // wait for the writers to put them on the wire (stuck connections
    // are force-closed after a grace period), then join the writers.
    connections.finish_shutdown_flush();
    service
}

/// What one submission is waiting on after the resolve walk (the
/// synchronous [`process_cycle`] reference path).
#[cfg_attr(not(test), allow(dead_code))]
enum Plan {
    /// Fully answered during the walk (control op, parse error, …).
    Ready(Value),
    /// One query: its response lives in the flat slot.
    Single(usize),
    /// A `batch` op: one slot per member, responses re-assembled into
    /// a single `{"responses": [...]}` line.
    Batch(Vec<usize>),
}

/// Runs one scheduler cycle over connection-tagged submissions:
/// resolve (walking in arrival order, so an `ingest` is visible to
/// every query behind it — including queries from other connections in
/// the same cycle), group, execute, respond. Returns one response per
/// submission, in arrival order, ready for per-connection routing.
/// `reason` is why this cycle fired; it lands in the wake-reason
/// counters along with the cycle's width and group fan-out.
///
/// This is the *synchronous reference* for the pipelined
/// [`drain_loop`]: the pipelined form must be per-connection
/// bit-for-bit equivalent to routing these responses in order (the
/// drain-equivalence proptests hold both to it).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn process_cycle(
    service: &mut Service,
    submissions: Vec<Submission>,
    reason: WakeReason,
) -> Vec<(ConnectionId, Value)> {
    let width = submissions.len();
    let mut plans: Vec<(ConnectionId, Plan)> = Vec::with_capacity(submissions.len());
    let mut flat: Vec<Option<DrainedQuery>> = Vec::new();
    let mut misses: Vec<(usize, Resolved)> = Vec::new();

    fn add_query(
        service: &mut Service,
        query: Query,
        at_micros: u64,
        conn: ConnectionId,
        flat: &mut Vec<Option<DrainedQuery>>,
        misses: &mut Vec<(usize, Resolved)>,
    ) -> usize {
        let id = service.next_query_id();
        let slot = flat.len();
        match service.resolve_one(id, query, at_micros, Some(conn), Route::Cycle) {
            Resolution::Done(result) => flat.push(Some((id, result))),
            Resolution::Miss(resolved) => {
                flat.push(None);
                misses.push((slot, resolved));
            }
        }
        slot
    }

    for sub in submissions {
        let (conn, at) = (sub.conn, sub.at_micros);
        let plan = match sub.request {
            Err(message) => Plan::Ready(protocol::error_value(&message)),
            Ok(req) => match req.get("op").and_then(Value::as_str) {
                Some("query") => match protocol::parse_query(&req) {
                    Ok(q) => Plan::Single(add_query(service, q, at, conn, &mut flat, &mut misses)),
                    Err(e) => Plan::Ready(protocol::error_value(&e)),
                },
                Some("batch") => match protocol::parse_batch(&req) {
                    Ok(queries) => Plan::Batch(
                        queries
                            .into_iter()
                            .map(|q| add_query(service, q, at, conn, &mut flat, &mut misses))
                            .collect(),
                    ),
                    Err(e) => Plan::Ready(protocol::error_value(&e)),
                },
                // Control ops (ingest/stats/families) and unknown ops:
                // handled in place, in arrival order.
                _ => Plan::Ready(protocol::handle_request(service, &req)),
            },
        };
        plans.push((conn, plan));
    }

    let groups = group_misses(misses);
    service.telemetry.record_cycle(reason, width, groups.len());
    let clock = service.telemetry.clock();
    let passes = execute_groups(&service.registry, &groups, &service.runner, &clock);
    for (group, pass) in groups.into_iter().zip(passes) {
        service.apply_group(group, pass, &mut flat);
    }

    let render = |slot: &mut Option<DrainedQuery>| -> Value {
        match slot.take().expect("every cycle slot answered").1 {
            Ok(response) => protocol::response_value(&response),
            Err(e) => protocol::error_value(&e),
        }
    };
    plans
        .into_iter()
        .map(|(conn, plan)| {
            let value = match plan {
                Plan::Ready(v) => v,
                Plan::Single(slot) => render(&mut flat[slot]),
                Plan::Batch(slots) => Value::obj().field("ok", true).field(
                    "responses",
                    slots
                        .into_iter()
                        .map(|s| render(&mut flat[s]))
                        .collect::<Vec<Value>>(),
                ),
            };
            (conn, value)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::GraphRef;
    use planartest_core::{PlanarityTester, TesterConfig};

    fn cfg(eps: f64) -> TesterConfig {
        TesterConfig::new(eps).with_phases(5)
    }

    fn service_with(name: &str, spec: &str) -> Service {
        let mut s = Service::new();
        s.registry_mut().ingest_spec(name, spec).unwrap();
        s
    }

    #[test]
    fn cold_then_warm_then_certificate() {
        let mut s = service_with("far", "k5_chain(6)");
        let q =
            |seed: u64| Query::planarity(GraphRef::Name("far".into()), cfg(0.05).with_seed(seed));
        let cold = s.query(q(1)).unwrap();
        assert_eq!(cold.cache, CacheStatus::Cold);
        assert!(!cold.outcome.accepted());
        assert_eq!(s.engine_passes(), 1);

        let warm = s.query(q(1)).unwrap();
        assert_eq!(warm.cache, CacheStatus::Warm);
        assert_eq!(s.engine_passes(), 1, "warm hit must not run the engine");
        assert_eq!(
            warm.outcome.rejecting_nodes(),
            cold.outcome.rejecting_nodes()
        );
        assert_eq!(warm.outcome.stats(), cold.outcome.stats());

        // Unseen seed on a known-rejected graph: certificate replay,
        // stamped with the certifying seed, no engine pass.
        let cert = s.query(q(2)).unwrap();
        assert_eq!(cert.cache, CacheStatus::Certificate);
        assert_eq!(cert.seed, 1);
        assert!(!cert.outcome.accepted());
        assert_eq!(s.engine_passes(), 1);
    }

    #[test]
    fn accepts_do_not_transfer_across_seeds() {
        let mut s = service_with("p", "tri_grid(5,5)");
        let q = |seed: u64| Query::planarity(GraphRef::Name("p".into()), cfg(0.2).with_seed(seed));
        assert!(s.query(q(1)).unwrap().outcome.accepted());
        assert_eq!(s.engine_passes(), 1);
        let other = s.query(q(2)).unwrap();
        assert_eq!(other.cache, CacheStatus::Cold, "fresh seed, fresh run");
        assert_eq!(s.engine_passes(), 2);
    }

    #[test]
    fn same_graph_queries_coalesce_into_one_pass() {
        let mut s = service_with("p", "tri_grid(5,5)");
        let ids: Vec<QueryId> = (0..4)
            .map(|seed| {
                s.submit(Query::planarity(
                    GraphRef::Name("p".into()),
                    cfg(0.2).with_seed(seed),
                ))
            })
            .collect();
        assert_eq!(s.pending(), 4);
        let drained = s.drain();
        assert_eq!(s.engine_passes(), 1, "four seeds, one engine pass");
        assert_eq!(drained.len(), 4);
        for ((id, result), want) in drained.iter().zip(&ids) {
            assert_eq!(id, want, "submission order preserved");
            let r = result.as_ref().unwrap();
            assert_eq!(r.coalesced, 4);
            assert!(r.attributed_micros <= r.engine_micros);
        }
        // Attribution splits the pass: shares sum to ~the pass wall.
        let total: u64 = drained
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().attributed_micros)
            .sum();
        let pass = drained[0].1.as_ref().unwrap().engine_micros;
        assert!(total <= pass + 4);
    }

    #[test]
    fn coalesced_outcomes_match_solo_runs_bit_for_bit() {
        let mut s = service_with("p", "tri_grid(5,5)");
        for seed in 0..3 {
            s.submit(Query::planarity(
                GraphRef::Name("p".into()),
                cfg(0.2).with_seed(seed),
            ));
        }
        let drained = s.drain();
        let graph = planartest_graph::generators::spec::parse("tri_grid(5,5)")
            .unwrap()
            .graph;
        for (seed, (_, result)) in (0..3u64).zip(&drained) {
            let solo = PlanarityTester::new(cfg(0.2).with_seed(seed))
                .run(&graph)
                .unwrap();
            match &result.as_ref().unwrap().outcome {
                Outcome::Planarity(o) => {
                    assert_eq!(o.rejections, solo.rejections, "seed {seed}");
                    assert_eq!(o.stats, solo.stats, "seed {seed}");
                    assert_eq!(o.violation_witnesses, solo.violation_witnesses);
                }
                other => panic!("wrong outcome shape {other:?}"),
            }
        }
    }

    #[test]
    fn hereditary_properties_are_seed_free_and_cached() {
        let mut s = service_with("g", "grid(5,5)");
        let q = |seed: u64, p: Property| {
            Query::planarity(GraphRef::Name("g".into()), cfg(0.2).with_seed(seed)).with_property(p)
        };
        let a = s.query(q(1, Property::Bipartiteness)).unwrap();
        assert!(a.outcome.accepted(), "grids are bipartite");
        assert_eq!(s.engine_passes(), 1);
        // Different seed, same property: warm (verdict is seed-free).
        let b = s.query(q(2, Property::Bipartiteness)).unwrap();
        assert_eq!(b.cache, CacheStatus::Warm);
        assert_eq!(s.engine_passes(), 1);
        // Different property: its own pass.
        let c = s.query(q(1, Property::CycleFreeness)).unwrap();
        assert!(!c.outcome.accepted(), "grids have cycles");
        assert_eq!(s.engine_passes(), 2);
    }

    #[test]
    fn paper_mode_rejects_never_become_certificates() {
        // Demoucron (paper) mode is not one-sided — the Claim 10
        // refutation shows it can reject planar graphs — so a reject
        // under one seed proves nothing about other seeds and must not
        // be replayed for them.
        let mut s = service_with("k33", "complete_bipartite(3,3)");
        let q = |seed: u64| {
            Query::planarity(
                GraphRef::Name("k33".into()),
                cfg(0.1)
                    .with_seed(seed)
                    .with_embedding(planartest_core::EmbeddingMode::Demoucron),
            )
        };
        let first = s.query(q(1)).unwrap();
        assert!(!first.outcome.accepted());
        // Fresh seed: its own engine pass, not a certificate replay.
        let second = s.query(q(2)).unwrap();
        assert_eq!(second.cache, CacheStatus::Cold);
        assert_eq!(s.engine_passes(), 2);
        // Exact-seed replay still works (it is an observation, and the
        // observation is deterministic per seed).
        assert_eq!(s.query(q(1)).unwrap().cache, CacheStatus::Warm);
        assert_eq!(s.engine_passes(), 2);
    }

    #[test]
    fn query_preserves_previously_submitted_queue() {
        let mut s = service_with("p", "tri_grid(4,4)");
        let pending_id = s.submit(Query::planarity(
            GraphRef::Name("p".into()),
            cfg(0.2).with_seed(11),
        ));
        // A one-shot in between must serve only itself...
        let one_shot = s
            .query(Query::planarity(
                GraphRef::Name("p".into()),
                cfg(0.2).with_seed(22),
            ))
            .unwrap();
        assert_eq!(one_shot.coalesced, 1);
        // ...and the earlier submission is still pending and drainable.
        assert_eq!(s.pending(), 1);
        let drained = s.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, pending_id);
        assert!(drained[0].1.is_ok());
    }

    #[test]
    fn unknown_graph_fails_only_that_query() {
        let mut s = service_with("p", "tri_grid(4,4)");
        s.submit(Query::planarity(GraphRef::Name("missing".into()), cfg(0.2)));
        s.submit(Query::planarity(GraphRef::Name("p".into()), cfg(0.2)));
        let drained = s.drain();
        assert!(matches!(
            drained[0].1,
            Err(ServiceError::UnknownGraph { .. })
        ));
        assert!(drained[1].1.is_ok());
        let stats = s.stats();
        assert_eq!(stats.queries_served, 2);
        assert_eq!(stats.graphs, 1);
        assert_eq!(stats.engine_passes, 1);
    }

    #[test]
    fn queries_by_fingerprint_resolve() {
        let mut s = Service::new();
        let fp = s
            .registry_mut()
            .ingest_spec("p", "tri_grid(4,4)")
            .unwrap()
            .fingerprint;
        let r = s
            .query(Query::planarity(GraphRef::Fingerprint(fp), cfg(0.2)))
            .unwrap();
        assert_eq!(r.graph, fp);
    }

    #[test]
    fn parallel_group_drain_matches_sequential() {
        // The determinism contract in miniature (the proptest suite
        // does this at scale): mixed properties, two graphs, group
        // execution fanned across 4 workers vs 1.
        let build = |threads: usize| {
            let mut s = Service::new().with_group_threads(threads);
            s.registry_mut().ingest_spec("p", "tri_grid(4,4)").unwrap();
            s.registry_mut().ingest_spec("far", "k5_chain(4)").unwrap();
            for seed in 0..2 {
                s.submit(Query::planarity(
                    GraphRef::Name("p".into()),
                    cfg(0.2).with_seed(seed),
                ));
                s.submit(Query::planarity(
                    GraphRef::Name("far".into()),
                    cfg(0.05).with_seed(seed),
                ));
            }
            s.submit(
                Query::planarity(GraphRef::Name("p".into()), cfg(0.2))
                    .with_property(Property::Bipartiteness),
            );
            s.drain()
        };
        let sequential = build(1);
        let parallel = build(4);
        assert_eq!(sequential.len(), parallel.len());
        for ((id_a, a), (id_b, b)) in sequential.iter().zip(&parallel) {
            assert_eq!(id_a, id_b);
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.outcome.accepted(), b.outcome.accepted());
            assert_eq!(a.outcome.stats(), b.outcome.stats());
            assert_eq!(a.outcome.rejecting_nodes(), b.outcome.rejecting_nodes());
            assert_eq!(a.coalesced, b.coalesced);
            assert_eq!(a.seed, b.seed);
        }
    }

    #[test]
    fn cold_restart_replays_certificates_without_engine_passes() {
        let dir = std::env::temp_dir().join(format!("pt_sched_restart_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let q =
            |seed: u64| Query::planarity(GraphRef::Name("far".into()), cfg(0.05).with_seed(seed));
        let cold = {
            let mut s = Service::new();
            let summary = s.set_state_dir(&dir).unwrap();
            assert_eq!(
                summary,
                StateSummary::default(),
                "fresh dir restores nothing"
            );
            s.registry_mut().ingest_spec("far", "k5_chain(6)").unwrap();
            let cold = s.query(q(1)).unwrap();
            assert!(!cold.outcome.accepted());
            assert_eq!(s.engine_passes(), 1);
            cold
        };
        // Cold restart: the graph re-maps, the certificate replays, and
        // the previously-certified query is answered with zero passes —
        // for the certifying seed *and* for seeds that never ran.
        let mut s = Service::new();
        let summary = s.set_state_dir(&dir).unwrap();
        assert_eq!(
            summary,
            StateSummary {
                graphs_restored: 1,
                certificates_replayed: 1,
                tail_skipped: 0,
            }
        );
        // Re-attaching is idempotent: everything is already live.
        assert_eq!(s.set_state_dir(&dir).unwrap(), StateSummary::default());
        assert_eq!(s.stats().mapped_graphs, 1);
        let replayed = s.query(q(1)).unwrap();
        assert_eq!(replayed.cache, CacheStatus::Certificate);
        assert_eq!(
            replayed.outcome.rejecting_nodes(),
            cold.outcome.rejecting_nodes()
        );
        assert_eq!(replayed.outcome.stats(), cold.outcome.stats());
        let fresh_seed = s.query(q(99)).unwrap();
        assert_eq!(fresh_seed.cache, CacheStatus::Certificate);
        assert_eq!(fresh_seed.seed, 1, "stamped with the certifying seed");
        assert_eq!(s.engine_passes(), 0, "no engine work after restart");
        // Compaction rewrites the log to exactly the live set.
        assert_eq!(s.compact_certificates().unwrap(), 1);
        assert!(matches!(
            Service::new().compact_certificates(),
            Err(ServiceError::Persist(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cycle_routes_responses_per_connection_in_submission_order() {
        use crate::transport::Submission;
        let mut s = service_with("p", "tri_grid(4,4)");
        let req = |seed: u64| {
            Ok(Value::obj()
                .field("op", "query")
                .field("graph", "p")
                .field("epsilon", 0.2)
                .field("phases", 5u64)
                .field("seed", seed))
        };
        // Two connections interleaved, plus a control op and a garbage
        // frame mid-cycle.
        let subs = vec![
            Submission::new(1, req(1)),
            Submission::new(2, req(2)),
            Submission::new(1, Err("frame exceeds the 16-byte limit".into())),
            Submission::new(2, Ok(Value::obj().field("op", "stats"))),
            Submission::new(1, req(3)),
        ];
        let responses = process_cycle(&mut s, subs, WakeReason::Control);
        assert_eq!(responses.len(), 5);
        let conns: Vec<ConnectionId> = responses.iter().map(|(c, _)| *c).collect();
        assert_eq!(conns, vec![1, 2, 1, 2, 1], "arrival order preserved");
        // The three same-key queries coalesced into one pass...
        assert_eq!(s.engine_passes(), 1);
        for i in [0usize, 1, 4] {
            let v = &responses[i].1;
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
            assert_eq!(v.get("coalesced").unwrap().as_u64(), Some(3));
        }
        // ...the garbage frame answered in-band on its connection...
        assert_eq!(responses[2].1.get("ok").unwrap().as_bool(), Some(false));
        // ...and the control op answered in place.
        assert_eq!(responses[3].1.get("ok").unwrap().as_bool(), Some(true));
        assert!(responses[3].1.get("graphs").is_some());
    }

    #[test]
    fn cycle_ingest_is_visible_to_later_queries_in_the_same_cycle() {
        use crate::transport::Submission;
        let mut s = Service::new();
        let subs = vec![
            Submission::new(
                7,
                Ok(Value::obj()
                    .field("op", "ingest")
                    .field("name", "g")
                    .field("spec", "tri_grid(4,4)")),
            ),
            Submission::new(
                8,
                Ok(Value::obj()
                    .field("op", "query")
                    .field("graph", "g")
                    .field("epsilon", 0.2)
                    .field("phases", 5u64)),
            ),
        ];
        let responses = process_cycle(&mut s, subs, WakeReason::Control);
        assert_eq!(responses[0].1.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(
            responses[1].1.get("verdict").unwrap().as_str(),
            Some("accept"),
            "query resolved against the ingest earlier in the cycle"
        );
    }

    #[test]
    fn cycle_batch_op_reassembles_and_coalesces_across_connections() {
        use crate::transport::Submission;
        let mut s = service_with("p", "tri_grid(4,4)");
        let member = |seed: u64| {
            Value::obj()
                .field("graph", "p")
                .field("epsilon", 0.2)
                .field("phases", 5u64)
                .field("seed", seed)
        };
        let subs = vec![
            Submission::new(
                1,
                Ok(Value::obj()
                    .field("op", "batch")
                    .field("queries", vec![member(1), member(2)])),
            ),
            Submission::new(
                2,
                Ok(Value::obj()
                    .field("op", "query")
                    .field("graph", "p")
                    .field("epsilon", 0.2)
                    .field("phases", 5u64)
                    .field("seed", 3u64)),
            ),
        ];
        let responses = process_cycle(&mut s, subs, WakeReason::Depth);
        // One pass serves the batch *and* the other connection's query.
        assert_eq!(s.engine_passes(), 1);
        let batch = responses[0].1.get("responses").unwrap().as_arr().unwrap();
        assert_eq!(batch.len(), 2);
        for member in batch {
            assert_eq!(member.get("coalesced").unwrap().as_u64(), Some(3));
        }
        assert_eq!(responses[1].1.get("coalesced").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn server_drains_in_process_submissions_and_flushes_on_shutdown() {
        let mut service = service_with("p", "tri_grid(4,4)");
        service.set_group_threads(2);
        let server = Server::start(
            service,
            ServeOptions {
                linger: Duration::from_secs(3600),
                wake_depth: usize::MAX,
                ..ServeOptions::default()
            },
        );
        // An in-process transport: a shared Vec sink captures the
        // routed response bytes.
        use std::io::Write;
        use std::sync::Mutex;
        #[derive(Clone, Default)]
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = Sink::default();
        let conn = server.connections().register(Box::new(sink.clone()));
        let queue = server.submission_queue();
        queue.push(crate::transport::Submission::new(
            conn,
            Ok(Value::obj()
                .field("op", "query")
                .field("graph", "p")
                .field("epsilon", 0.2)
                .field("phases", 5u64)
                .field("seed", 1u64)),
        ));
        // The cycle is lingering (1h); shutdown must flush it.
        server.request_shutdown();
        let service = server.join();
        assert_eq!(service.engine_passes(), 1, "pending query was flushed");
        assert_eq!(service.stats().queries_served, 1);
        let bytes = sink.0.lock().unwrap().clone();
        let line = String::from_utf8(bytes).unwrap();
        let response = Value::parse(line.trim()).unwrap();
        assert_eq!(response.get("verdict").unwrap().as_str(), Some("accept"));
        assert_eq!(response.get("cache").unwrap().as_str(), Some("cold"));
    }
}
