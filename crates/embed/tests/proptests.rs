//! Property-based tests for the embedding substrate.

use planartest_embed::demoucron::{check_planarity, is_planar, PlanarityCheck};
use planartest_embed::hints::{grid_coordinates, rotation_from_coordinates};
use planartest_embed::RotationSystem;
use planartest_graph::generators::{nonplanar, planar};
use planartest_graph::{Graph, GraphBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Demoucron's verdict is invariant under planarity-preserving
    /// operations: deleting any edge of a planar graph keeps it planar.
    #[test]
    fn edge_deletion_preserves_planarity(seed in 0u64..5000, n in 4usize..50, victim in 0usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = planar::apollonian(n.max(3), &mut rng).graph;
        prop_assert!(is_planar(&g));
        let victim = victim % g.m();
        let (h, _) = g.edge_subgraph(|e| e.index() != victim);
        prop_assert!(is_planar(&h), "deleting an edge broke planarity?!");
    }

    /// Every embedding Demoucron returns verifies via the Euler formula,
    /// and its face count is exactly m - n + 1 + c (c components).
    #[test]
    fn returned_embeddings_verify(seed in 0u64..5000, keep in 0.3f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = planar::random_planar(40, keep, &mut rng).graph;
        match check_planarity(&g) {
            PlanarityCheck::Planar(rot) => {
                prop_assert!(rot.is_planar_embedding(&g));
                let comps = planartest_graph::algo::components::Components::build(&g);
                // Components with edges contribute faces; edgeless ones
                // contribute none to the trace.
                let mut expected = 0i64;
                let mut m_c = vec![0i64; comps.count()];
                let mut n_c = vec![0i64; comps.count()];
                for (u, _) in g.edges() { m_c[comps.component_of(u)] += 1; }
                for v in g.nodes() { n_c[comps.component_of(v)] += 1; }
                for c in 0..comps.count() {
                    if m_c[c] > 0 {
                        expected += m_c[c] - n_c[c] + 2;
                    }
                }
                prop_assert_eq!(rot.trace_faces(&g).len() as i64, expected);
            }
            PlanarityCheck::NonPlanar => prop_assert!(false, "random planar subgraph rejected"),
        }
    }

    /// Adding enough random chords to a maximal planar graph always makes
    /// Demoucron reject (Euler bound kicks in at k >= 1 over the maximum,
    /// but even for small k the embedder itself must find the fragment
    /// obstruction).
    #[test]
    fn supergraphs_of_maximal_planar_reject(seed in 0u64..5000, k in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = nonplanar::planar_plus_chords(30, k, &mut rng);
        prop_assert!(!is_planar(&c.graph), "maximal planar + chord must be non-planar");
    }

    /// Coordinate-derived rotations on (planarly drawn) grids always
    /// verify; corrupting the rotation at one vertex is either caught by
    /// validation or changes the genus/face structure, never panics.
    #[test]
    fn rotation_corruption_is_detected_or_benign(rows in 2usize..6, cols in 2usize..6, swap in 0usize..100) {
        let g = planar::grid(rows, cols).graph;
        let rot = rotation_from_coordinates(&g, &grid_coordinates(rows, cols)).expect("grid");
        prop_assert!(rot.is_planar_embedding(&g));
        // Swap two entries in one vertex's order.
        let v = planartest_graph::NodeId::new(swap % g.n());
        let mut orders: Vec<Vec<planartest_graph::EdgeId>> =
            g.nodes().map(|x| rot.order_at(x).to_vec()).collect();
        if orders[v.index()].len() >= 2 {
            orders[v.index()].swap(0, 1);
            let corrupted = RotationSystem::new(&g, orders).expect("still a permutation");
            // Either still planar (swap was a mirror-ish no-op for deg 2)
            // or genus increased; never inconsistent.
            let _ = corrupted.is_planar_embedding(&g);
            let faces = corrupted.trace_faces(&g);
            // Every dart appears exactly once across faces.
            let total: usize = faces.iter().map(|f| f.len()).sum();
            prop_assert_eq!(total, 2 * g.m());
        }
    }
}

/// Deterministic spot checks that proptest shrinkage would obscure.
#[test]
fn known_minor_obstructions() {
    // K5 and K3,3 and one subdivision each.
    assert!(!is_planar(&nonplanar::complete(5).graph));
    assert!(!is_planar(&nonplanar::complete_bipartite(3, 3).graph));
    let k5 = nonplanar::complete(5).graph;
    let mut b = GraphBuilder::new(5 + k5.m());
    for (i, (u, v)) in k5.edges().enumerate() {
        b.add_edge(u.index(), 5 + i).unwrap();
        b.add_edge(5 + i, v.index()).unwrap();
    }
    let subdivided: Graph = b.build();
    assert!(!is_planar(&subdivided), "K5 subdivision must be non-planar");
}
