//! Rotation systems (combinatorial embeddings) with face tracing and
//! Euler-genus verification.

use std::fmt;

use planartest_graph::algo::components::Components;
use planartest_graph::{EdgeId, Graph, NodeId};

/// A directed edge (half-edge): edge `edge` traversed *out of* `from`.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct Dart {
    /// The underlying undirected edge.
    pub edge: EdgeId,
    /// The endpoint the dart leaves from.
    pub from: NodeId,
}

/// A face of an embedded graph: the cyclic sequence of darts traced by the
/// face-walk rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Face {
    /// Darts in face order; `darts[i+1].from` is the head of `darts[i]`.
    pub darts: Vec<Dart>,
}

impl Face {
    /// The vertices on the face walk, in order (one per dart).
    pub fn vertices(&self) -> Vec<NodeId> {
        self.darts.iter().map(|d| d.from).collect()
    }

    /// Number of darts (= boundary length).
    pub fn len(&self) -> usize {
        self.darts.len()
    }

    /// Whether the face walk is empty (never true for traced faces).
    pub fn is_empty(&self) -> bool {
        self.darts.is_empty()
    }
}

/// Error constructing a [`RotationSystem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RotationError {
    /// `orders` had the wrong number of vertex entries.
    WrongLength {
        /// Entries supplied.
        got: usize,
        /// Entries expected (`g.n()`).
        expected: usize,
    },
    /// The order at `node` is not a permutation of its incident edges.
    NotAPermutation {
        /// The offending vertex.
        node: NodeId,
    },
}

impl fmt::Display for RotationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RotationError::WrongLength { got, expected } => {
                write!(f, "rotation has {got} vertex entries, graph has {expected}")
            }
            RotationError::NotAPermutation { node } => {
                write!(
                    f,
                    "rotation at {node:?} is not a permutation of incident edges"
                )
            }
        }
    }
}

impl std::error::Error for RotationError {}

/// A rotation system: for every vertex, a circular order of its incident
/// edges. Together with a graph this determines an embedding on an
/// orientable surface; the embedding is planar iff every connected
/// component has Euler genus 0 (checked by [`RotationSystem::genus`]).
///
/// # Example
///
/// ```
/// use planartest_graph::Graph;
/// use planartest_embed::RotationSystem;
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)])?;
/// let rot = RotationSystem::from_adjacency(&g);
/// assert_eq!(rot.genus(&g), 0); // a triangle embeds in the plane
/// assert_eq!(rot.trace_faces(&g).len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotationSystem {
    /// `order[v]` = incident edges of `v` in circular order.
    order: Vec<Vec<EdgeId>>,
    /// `pos[e] = [i, j]`: edge `e = (u, v)` (canonical `u < v`) sits at
    /// `order[u][i]` and `order[v][j]`.
    pos: Vec<[u32; 2]>,
}

impl RotationSystem {
    /// Builds a rotation system from explicit per-vertex circular orders.
    ///
    /// # Errors
    ///
    /// Each `orders[v]` must be a permutation of the edges incident to `v`.
    pub fn new(g: &Graph, orders: Vec<Vec<EdgeId>>) -> Result<Self, RotationError> {
        if orders.len() != g.n() {
            return Err(RotationError::WrongLength {
                got: orders.len(),
                expected: g.n(),
            });
        }
        let mut pos = vec![[u32::MAX; 2]; g.m()];
        for v in g.nodes() {
            let ord = &orders[v.index()];
            if ord.len() != g.degree(v) {
                return Err(RotationError::NotAPermutation { node: v });
            }
            for (i, &e) in ord.iter().enumerate() {
                if e.index() >= g.m() {
                    return Err(RotationError::NotAPermutation { node: v });
                }
                let (a, b) = g.endpoints(e);
                let side = if a == v {
                    0
                } else if b == v {
                    1
                } else {
                    return Err(RotationError::NotAPermutation { node: v });
                };
                if pos[e.index()][side] != u32::MAX {
                    return Err(RotationError::NotAPermutation { node: v });
                }
                pos[e.index()][side] = i as u32;
            }
        }
        // Every edge must have been placed on both sides.
        if pos.iter().any(|p| p[0] == u32::MAX || p[1] == u32::MAX) {
            // Find a witness vertex for the error message.
            let e = pos
                .iter()
                .position(|p| p[0] == u32::MAX || p[1] == u32::MAX)
                .expect("just found one");
            let (u, v) = g.endpoints(EdgeId::new(e));
            let node = if pos[e][0] == u32::MAX { u } else { v };
            return Err(RotationError::NotAPermutation { node });
        }
        Ok(RotationSystem { order: orders, pos })
    }

    /// The "default" rotation: incident edges in adjacency (neighbour id)
    /// order. Rarely planar for non-trivial graphs, but always *valid* —
    /// used as the best-effort ordering on non-planar parts.
    pub fn from_adjacency(g: &Graph) -> Self {
        let orders: Vec<Vec<EdgeId>> = g
            .nodes()
            .map(|v| g.neighbors(v).iter().map(|&(_, e)| e).collect())
            .collect();
        Self::new(g, orders).expect("adjacency order is a valid rotation")
    }

    /// The circular edge order at `v`.
    pub fn order_at(&self, v: NodeId) -> &[EdgeId] {
        &self.order[v.index()]
    }

    /// Stable 128-bit content fingerprint of the rotation system (the
    /// per-vertex circular orders, length-prefixed per vertex).
    ///
    /// Two rotation systems fingerprint equal iff they order every
    /// vertex's incident edges identically — the identity the query
    /// service's result cache needs when a tester configuration embeds
    /// via a hint (`planartest-core`'s `EmbeddingMode::Hint`): different
    /// hints can change Stage-II outcomes, so they must key differently.
    #[must_use]
    pub fn fingerprint(&self) -> planartest_graph::fingerprint::Fingerprint {
        let mut d = planartest_graph::fingerprint::Digest::new();
        d.word(self.order.len() as u64);
        for ord in &self.order {
            d.word(ord.len() as u64);
            for &e in ord {
                d.word(u64::from(e.raw()));
            }
        }
        d.finish()
    }

    /// Position of edge `e` within the circular order at its endpoint `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    pub fn position(&self, g: &Graph, v: NodeId, e: EdgeId) -> usize {
        let (a, b) = g.endpoints(e);
        let side = if a == v {
            0
        } else {
            assert_eq!(b, v, "{v:?} is not an endpoint of {e:?}");
            1
        };
        self.pos[e.index()][side] as usize
    }

    /// The edge following `e` in the circular order at `v`.
    pub fn next_at(&self, g: &Graph, v: NodeId, e: EdgeId) -> EdgeId {
        let ord = &self.order[v.index()];
        let p = self.position(g, v, e);
        ord[(p + 1) % ord.len()]
    }

    /// The edge preceding `e` in the circular order at `v`.
    pub fn prev_at(&self, g: &Graph, v: NodeId, e: EdgeId) -> EdgeId {
        let ord = &self.order[v.index()];
        let p = self.position(g, v, e);
        ord[(p + ord.len() - 1) % ord.len()]
    }

    /// The dart following `d` on its face walk: arriving at `v` (head of
    /// `d`) via edge `e`, the walk leaves along `next_at(v, e)`.
    pub fn next_dart(&self, g: &Graph, d: Dart) -> Dart {
        let v = g.other_endpoint(d.edge, d.from);
        let e = self.next_at(g, v, d.edge);
        Dart { edge: e, from: v }
    }

    /// Traces all faces of the embedding (each dart lies on exactly one).
    pub fn trace_faces(&self, g: &Graph) -> Vec<Face> {
        let mut seen = vec![false; 2 * g.m()];
        let dart_idx = |g: &Graph, d: Dart| -> usize {
            let (u, _) = g.endpoints(d.edge);
            2 * d.edge.index() + usize::from(d.from != u)
        };
        let mut faces = Vec::new();
        for e in g.edge_ids() {
            let (u, v) = g.endpoints(e);
            for start in [Dart { edge: e, from: u }, Dart { edge: e, from: v }] {
                if seen[dart_idx(g, start)] {
                    continue;
                }
                let mut darts = Vec::new();
                let mut d = start;
                loop {
                    debug_assert!(!seen[dart_idx(g, d)], "dart visited twice in face walk");
                    seen[dart_idx(g, d)] = true;
                    darts.push(d);
                    d = self.next_dart(g, d);
                    if d == start {
                        break;
                    }
                }
                faces.push(Face { darts });
            }
        }
        faces
    }

    /// Total Euler genus of the embedding, summed over connected
    /// components: `Σ (2 − (n_c − m_c + f_c)) / 2`. An embedding is planar
    /// iff this is 0.
    pub fn genus(&self, g: &Graph) -> i64 {
        let comps = Components::build(g);
        let mut n_c = vec![0i64; comps.count()];
        let mut m_c = vec![0i64; comps.count()];
        // Components with no edges have one (empty) face.
        let mut f_c = vec![0i64; comps.count()];
        for v in g.nodes() {
            n_c[comps.component_of(v)] += 1;
        }
        for (u, _) in g.edges() {
            m_c[comps.component_of(u)] += 1;
        }
        for face in self.trace_faces(g) {
            f_c[comps.component_of(face.darts[0].from)] += 1;
        }
        let mut genus2 = 0i64;
        for c in 0..comps.count() {
            let f = if m_c[c] == 0 { 1 } else { f_c[c] };
            genus2 += 2 - (n_c[c] - m_c[c] + f);
        }
        debug_assert!(genus2 % 2 == 0, "Euler genus parity violated");
        genus2 / 2
    }

    /// Whether this rotation system is a planar embedding of `g`.
    pub fn is_planar_embedding(&self, g: &Graph) -> bool {
        self.genus(g) == 0
    }

    /// Restricts the rotation to an edge subgraph (same node set): keeps
    /// only edges for which `keep` is true, renumbered per `new_ids`
    /// (mapping old edge id -> new id in the subgraph).
    ///
    /// Removing edges never increases genus, so restrictions of planar
    /// embeddings stay planar.
    pub fn restrict<F>(&self, g: &Graph, sub: &Graph, mut keep: F) -> RotationSystem
    where
        F: FnMut(EdgeId) -> Option<EdgeId>,
    {
        let mut orders = vec![Vec::new(); g.n()];
        for v in g.nodes() {
            for &e in &self.order[v.index()] {
                if let Some(ne) = keep(e) {
                    orders[v.index()].push(ne);
                }
            }
        }
        RotationSystem::new(sub, orders).expect("restriction of a valid rotation is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn adjacency_rotation_valid() {
        let g = triangle();
        let rot = RotationSystem::from_adjacency(&g);
        for v in g.nodes() {
            assert_eq!(rot.order_at(v).len(), g.degree(v));
        }
    }

    #[test]
    fn triangle_has_two_faces_genus_zero() {
        let g = triangle();
        let rot = RotationSystem::from_adjacency(&g);
        let faces = rot.trace_faces(&g);
        assert_eq!(faces.len(), 2);
        assert_eq!(rot.genus(&g), 0);
        assert!(rot.is_planar_embedding(&g));
        for f in &faces {
            assert_eq!(f.len(), 3);
            assert!(!f.is_empty());
            assert_eq!(f.vertices().len(), 3);
        }
    }

    #[test]
    fn tree_single_face() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (1, 3)]).unwrap();
        let rot = RotationSystem::from_adjacency(&g);
        let faces = rot.trace_faces(&g);
        assert_eq!(faces.len(), 1);
        assert_eq!(faces[0].len(), 6); // each edge twice
        assert_eq!(rot.genus(&g), 0);
    }

    #[test]
    fn k4_adjacency_order_genus() {
        // K4 in adjacency order: rotation at each vertex sorted by
        // neighbour id. This happens to be non-planar (genus 1) — which is
        // precisely why embeddings must be verified, not assumed.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let rot = RotationSystem::from_adjacency(&g);
        let faces = rot.trace_faces(&g);
        // n - m + f = 4 - 6 + f; planar iff f = 4.
        let planar = faces.len() == 4;
        assert_eq!(rot.is_planar_embedding(&g), planar);
    }

    #[test]
    fn k4_explicit_planar_rotation() {
        // K4 drawn as a triangle 1,2,3 with 0 in the centre.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let e = |u: usize, v: usize| {
            g.edge_between(NodeId::new(u), NodeId::new(v))
                .expect("edge exists")
        };
        let orders = vec![
            vec![e(0, 1), e(0, 2), e(0, 3)],
            vec![e(1, 0), e(1, 3), e(1, 2)],
            vec![e(2, 0), e(2, 1), e(2, 3)],
            vec![e(3, 0), e(3, 2), e(3, 1)],
        ];
        let rot = RotationSystem::new(&g, orders).unwrap();
        assert_eq!(rot.genus(&g), 0);
        assert_eq!(rot.trace_faces(&g).len(), 4);
    }

    #[test]
    fn disconnected_components_counted_separately() {
        // Two disjoint triangles: each planar, total genus 0.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        let rot = RotationSystem::from_adjacency(&g);
        assert_eq!(rot.genus(&g), 0);
        assert_eq!(rot.trace_faces(&g).len(), 4);
    }

    #[test]
    fn isolated_vertices_ok() {
        let g = Graph::from_edges(5, [(0, 1)]).unwrap();
        let rot = RotationSystem::from_adjacency(&g);
        assert_eq!(rot.genus(&g), 0);
    }

    #[test]
    fn invalid_rotation_rejected() {
        let g = triangle();
        // Wrong number of vertices.
        let err = RotationSystem::new(&g, vec![vec![]; 2]).unwrap_err();
        assert!(matches!(
            err,
            RotationError::WrongLength {
                got: 2,
                expected: 3
            }
        ));
        // Missing edge at vertex 0.
        let err = RotationSystem::new(
            &g,
            vec![
                vec![EdgeId::new(0)],
                vec![EdgeId::new(0), EdgeId::new(1)],
                vec![EdgeId::new(1), EdgeId::new(2)],
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RotationError::NotAPermutation { .. }));
        assert!(err.to_string().contains("permutation"));
        // Duplicated edge at a vertex.
        let err = RotationSystem::new(
            &g,
            vec![
                vec![EdgeId::new(0), EdgeId::new(0)],
                vec![EdgeId::new(0), EdgeId::new(1)],
                vec![EdgeId::new(1), EdgeId::new(2)],
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RotationError::NotAPermutation { .. }));
        // Edge not incident to the vertex.
        let err = RotationSystem::new(
            &g,
            vec![
                vec![EdgeId::new(0), EdgeId::new(1)],
                vec![EdgeId::new(0), EdgeId::new(1)],
                vec![EdgeId::new(1), EdgeId::new(2)],
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RotationError::NotAPermutation { .. }));
    }

    #[test]
    fn next_prev_inverse() {
        let g = triangle();
        let rot = RotationSystem::from_adjacency(&g);
        for v in g.nodes() {
            for &e in rot.order_at(v) {
                let n = rot.next_at(&g, v, e);
                assert_eq!(rot.prev_at(&g, v, n), e);
            }
        }
    }

    #[test]
    fn restrict_keeps_planarity() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let e = |u: usize, v: usize| g.edge_between(NodeId::new(u), NodeId::new(v)).unwrap();
        let orders = vec![
            vec![e(0, 1), e(0, 2), e(0, 3)],
            vec![e(1, 0), e(1, 3), e(1, 2)],
            vec![e(2, 0), e(2, 1), e(2, 3)],
            vec![e(3, 0), e(3, 2), e(3, 1)],
        ];
        let rot = RotationSystem::new(&g, orders).unwrap();
        // Drop edge (2,3).
        let victim = e(2, 3);
        let (sub, map) = g.edge_subgraph(|x| x != victim);
        let mut new_id = vec![None; g.m()];
        for (new, &old) in map.iter().enumerate() {
            new_id[old.index()] = Some(EdgeId::new(new));
        }
        let r2 = rot.restrict(&g, &sub, |old| new_id[old.index()]);
        assert!(r2.is_planar_embedding(&sub));
    }
}
