//! Planar combinatorial embeddings for the `planartest` workspace.
//!
//! This crate is the substitute substrate for the Ghaffari–Haeupler
//! distributed planar-embedding algorithm used by Stage II of the paper's
//! tester (see `DESIGN.md` §3): the tester only needs, per node, a circular
//! ordering of incident edges that is a valid combinatorial embedding
//! whenever the graph is planar. We provide:
//!
//! * [`RotationSystem`] — a validated circular edge order per vertex, with
//!   face tracing and Euler-genus computation ([`RotationSystem::genus`]),
//!   so embeddings are *verifiable*: a rotation system of a connected graph
//!   is a planar embedding iff its genus is 0.
//! * [`demoucron::check_planarity`] — the Demoucron–Malgrange–Pertuiset
//!   planarity test & embedder (quadratic, certificate-producing), working
//!   block-by-block via the biconnected decomposition.
//! * [`hints`] — fast embedding constructors for graphs generated with
//!   geometric coordinates or known face lists (used to keep large planar
//!   experiments fast).
//!
//! # Example
//!
//! ```
//! use planartest_graph::Graph;
//! use planartest_embed::demoucron::{check_planarity, PlanarityCheck};
//!
//! // K4 is planar ...
//! let k4 = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])?;
//! let rot = match check_planarity(&k4) {
//!     PlanarityCheck::Planar(rot) => rot,
//!     PlanarityCheck::NonPlanar => unreachable!("K4 is planar"),
//! };
//! assert_eq!(rot.genus(&k4), 0);
//!
//! // ... and K5 is not.
//! let k5 = Graph::from_edges(5, (0..5).flat_map(|i| (i + 1..5).map(move |j| (i, j))))?;
//! assert!(matches!(check_planarity(&k5), PlanarityCheck::NonPlanar));
//! # Ok::<(), planartest_graph::GraphError>(())
//! ```

pub mod demoucron;
pub mod hints;
mod rotation;

pub use crate::rotation::{Dart, Face, RotationError, RotationSystem};
