//! Fast embedding constructors for graphs whose planar structure is known
//! at generation time.
//!
//! The Demoucron embedder is quadratic; for large planar inputs the
//! experiments instead attach an embedding *hint* produced here — either
//! from straight-line coordinates (grids, road networks) or from the face
//! list tracked during generation (Apollonian networks). Hints are always
//! verified via the Euler formula before use, so a wrong hint cannot
//! corrupt an experiment.

use std::collections::HashMap;

use planartest_graph::{EdgeId, Graph, NodeId};

use crate::rotation::{RotationError, RotationSystem};

/// Builds a rotation system by sorting each vertex's incident edges by the
/// angle to the neighbour, given straight-line coordinates.
///
/// If the coordinates are a planar straight-line drawing (no two edges
/// cross), the result is a planar embedding.
///
/// # Errors
///
/// Returns an error if `coords.len() != g.n()` (reported as
/// [`RotationError::WrongLength`]).
pub fn rotation_from_coordinates(
    g: &Graph,
    coords: &[(f64, f64)],
) -> Result<RotationSystem, RotationError> {
    if coords.len() != g.n() {
        return Err(RotationError::WrongLength {
            got: coords.len(),
            expected: g.n(),
        });
    }
    let mut orders = Vec::with_capacity(g.n());
    for v in g.nodes() {
        let (vx, vy) = coords[v.index()];
        let mut incident: Vec<(f64, EdgeId)> = g
            .neighbors(v)
            .iter()
            .map(|&(w, e)| {
                let (wx, wy) = coords[w.index()];
                ((wy - vy).atan2(wx - vx), e)
            })
            .collect();
        incident.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("angles are finite"));
        orders.push(incident.into_iter().map(|(_, e)| e).collect());
    }
    RotationSystem::new(g, orders)
}

/// Builds a rotation system from an oriented face list covering each
/// directed edge exactly once (e.g. the triangle list maintained while
/// generating an Apollonian network).
///
/// Returns `None` if the faces are inconsistent (some dart missing,
/// duplicated, or a vertex's corners do not close into a single cycle).
pub fn rotation_from_faces(g: &Graph, faces: &[Vec<usize>]) -> Option<RotationSystem> {
    // next[(v, incoming edge)] = outgoing edge.
    let mut next: HashMap<(u32, u32), u32> = HashMap::new();
    for f in faces {
        let k = f.len();
        if k < 3 {
            return None;
        }
        for i in 0..k {
            let p = NodeId::new(f[i]);
            let v = NodeId::new(f[(i + 1) % k]);
            let s = NodeId::new(f[(i + 2) % k]);
            let e_in = g.edge_between(p, v)?;
            let e_out = g.edge_between(v, s)?;
            if next.insert((v.raw(), e_in.raw()), e_out.raw()).is_some() {
                return None;
            }
        }
    }
    let mut orders = Vec::with_capacity(g.n());
    for v in g.nodes() {
        let deg = g.degree(v);
        let mut order = Vec::with_capacity(deg);
        if deg > 0 {
            let first = g.neighbors(v)[0].1;
            let mut e = first;
            loop {
                order.push(e);
                e = EdgeId::from(*next.get(&(v.raw(), e.raw()))?);
                if e == first {
                    break;
                }
                if order.len() > deg {
                    return None;
                }
            }
            if order.len() != deg {
                return None;
            }
        }
        orders.push(order);
    }
    RotationSystem::new(g, orders).ok()
}

/// Grid coordinates for a `rows × cols` grid numbered row-major — the
/// companion of [`rotation_from_coordinates`] for the grid generators.
pub fn grid_coordinates(rows: usize, cols: usize) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            out.push((c as f64, r as f64));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_graph::generators::planar;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_coordinates_give_planar_embedding() {
        let g = planar::grid(7, 9).graph;
        let rot = rotation_from_coordinates(&g, &grid_coordinates(7, 9)).unwrap();
        assert!(rot.is_planar_embedding(&g));
    }

    #[test]
    fn triangulated_grid_coordinates_planar() {
        let g = planar::triangulated_grid(6, 6).graph;
        let rot = rotation_from_coordinates(&g, &grid_coordinates(6, 6)).unwrap();
        assert!(rot.is_planar_embedding(&g));
    }

    #[test]
    fn wrong_coordinate_count_rejected() {
        let g = planar::grid(2, 2).graph;
        assert!(rotation_from_coordinates(&g, &[(0.0, 0.0)]).is_err());
    }

    #[test]
    fn apollonian_faces_give_planar_embedding() {
        let mut rng = StdRng::seed_from_u64(42);
        let (c, faces) = planar::apollonian_with_faces(120, &mut rng);
        let faces: Vec<Vec<usize>> = faces.iter().map(|f| f.to_vec()).collect();
        let rot = rotation_from_faces(&c.graph, &faces).expect("faces are consistent");
        assert!(rot.is_planar_embedding(&c.graph));
    }

    #[test]
    fn bogus_faces_rejected() {
        let g = planar::grid(2, 2).graph;
        // A "face" using a non-edge.
        assert!(rotation_from_faces(&g, &[vec![0, 3, 1]]).is_none());
        // Too-short face.
        assert!(rotation_from_faces(&g, &[vec![0, 1]]).is_none());
        // Incomplete cover (misses darts).
        assert!(rotation_from_faces(&g, &[vec![0, 1, 3, 2]]).is_none());
    }

    #[test]
    fn nonplanar_coordinates_detected_by_genus() {
        // K5 with any coordinates: the angular rotation exists but can
        // never verify as planar.
        let g = planartest_graph::generators::nonplanar::complete(5).graph;
        let coords: Vec<(f64, f64)> = (0..5)
            .map(|i| {
                let a = i as f64 * std::f64::consts::TAU / 5.0;
                (a.cos(), a.sin())
            })
            .collect();
        let rot = rotation_from_coordinates(&g, &coords).unwrap();
        assert!(!rot.is_planar_embedding(&g));
    }
}
