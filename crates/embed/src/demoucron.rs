//! Demoucron–Malgrange–Pertuiset planarity testing and embedding.
//!
//! The algorithm embeds each biconnected block independently (a graph is
//! planar iff all its blocks are) and stitches the per-block rotations at
//! cut vertices. Within a block it maintains a set of faces (vertex
//! cycles), repeatedly finds the *fragments* (bridges) of the not-yet
//! embedded part, and draws a path of a fragment into a face containing
//! all its attachments. A fragment with no admissible face certifies
//! non-planarity; always preferring fragments with exactly one admissible
//! face makes the greedy choice safe (classic Demoucron invariant).
//!
//! Complexity is `O(n·m)`-ish — quadratic, certificate-producing and easy
//! to audit, which is what the tester needs from its embedding substrate
//! (see `DESIGN.md` §3 for why this substitutes for Ghaffari–Haeupler).

use std::collections::HashMap;

use planartest_graph::algo::biconnected::Blocks;
use planartest_graph::{EdgeId, Graph, NodeId};

use crate::rotation::RotationSystem;

/// Result of a planarity check.
#[derive(Debug, Clone)]
pub enum PlanarityCheck {
    /// The graph is planar; a verified planar rotation system is attached.
    Planar(RotationSystem),
    /// The graph is not planar.
    NonPlanar,
}

impl PlanarityCheck {
    /// Whether the check found the graph planar.
    pub fn is_planar(&self) -> bool {
        matches!(self, PlanarityCheck::Planar(_))
    }

    /// Extracts the rotation system, if planar.
    pub fn into_rotation(self) -> Option<RotationSystem> {
        match self {
            PlanarityCheck::Planar(r) => Some(r),
            PlanarityCheck::NonPlanar => None,
        }
    }
}

/// Tests planarity and, when planar, produces a combinatorial embedding.
///
/// The returned rotation system always satisfies
/// [`RotationSystem::is_planar_embedding`].
pub fn check_planarity(g: &Graph) -> PlanarityCheck {
    if g.n() >= 3 && g.m() > 3 * g.n() - 6 {
        return PlanarityCheck::NonPlanar;
    }
    let blocks = Blocks::build(g);
    let groups = blocks.edges_by_block(g);
    let mut orders: Vec<Vec<EdgeId>> = vec![Vec::new(); g.n()];
    for edges in &groups {
        match embed_block(g, edges) {
            None => return PlanarityCheck::NonPlanar,
            Some(block_orders) => {
                for (v, ord) in block_orders {
                    orders[v.index()].extend(ord);
                }
            }
        }
    }
    let rot = RotationSystem::new(g, orders).expect("blocks partition the edge set");
    debug_assert!(
        rot.is_planar_embedding(g),
        "Demoucron produced a non-planar rotation"
    );
    PlanarityCheck::Planar(rot)
}

/// Convenience boolean planarity test.
pub fn is_planar(g: &Graph) -> bool {
    check_planarity(g).is_planar()
}

/// State for embedding a single biconnected block, over *local* dense ids.
struct BlockCtx {
    /// Local vertex -> global node.
    global_v: Vec<NodeId>,
    /// Local edge -> global edge.
    global_e: Vec<EdgeId>,
    /// Local adjacency: `(neighbour local v, local edge)`.
    adj: Vec<Vec<(u32, u32)>>,
    /// Local edge endpoints.
    ends: Vec<(u32, u32)>,
}

impl BlockCtx {
    fn new(g: &Graph, edges: &[EdgeId]) -> Self {
        let mut local_of: HashMap<NodeId, u32> = HashMap::new();
        let mut global_v = Vec::new();
        let mut global_e = Vec::with_capacity(edges.len());
        let mut ends = Vec::with_capacity(edges.len());
        let mut adj: Vec<Vec<(u32, u32)>> = Vec::new();
        for (le, &e) in edges.iter().enumerate() {
            let (u, v) = g.endpoints(e);
            let mut local = |x: NodeId| -> u32 {
                *local_of.entry(x).or_insert_with(|| {
                    global_v.push(x);
                    adj.push(Vec::new());
                    (global_v.len() - 1) as u32
                })
            };
            let (lu, lv) = (local(u), local(v));
            global_e.push(e);
            ends.push((lu, lv));
            adj[lu as usize].push((lv, le as u32));
            adj[lv as usize].push((lu, le as u32));
        }
        BlockCtx {
            global_v,
            global_e,
            adj,
            ends,
        }
    }

    fn n(&self) -> usize {
        self.global_v.len()
    }

    fn m(&self) -> usize {
        self.global_e.len()
    }
}

/// A not-yet-embedded fragment relative to the embedded subgraph `H`.
enum Fragment {
    /// A single non-embedded edge with both endpoints in `H`.
    SingleEdge { edge: u32 },
    /// A connected component of `G − V(H)` plus its attachment edges.
    Component {
        /// Local vertices of the component (not in `H`).
        members: Vec<u32>,
        /// Attachment vertices (in `H`), deduplicated.
        attachments: Vec<u32>,
    },
}

impl Fragment {
    fn attachments<'a>(&'a self, ctx: &BlockCtx, buf: &'a mut Vec<u32>) -> &'a [u32] {
        match self {
            Fragment::SingleEdge { edge } => {
                let (a, b) = ctx.ends[*edge as usize];
                buf.clear();
                buf.push(a);
                buf.push(b);
                buf
            }
            Fragment::Component { attachments, .. } => attachments,
        }
    }
}

/// Embeds one biconnected block. Returns, for each block vertex, the
/// circular order of its incident *global* edges, or `None` if the block
/// is non-planar.
fn embed_block(g: &Graph, edges: &[EdgeId]) -> Option<Vec<(NodeId, Vec<EdgeId>)>> {
    if edges.is_empty() {
        return Some(Vec::new());
    }
    if edges.len() == 1 {
        let (u, v) = g.endpoints(edges[0]);
        return Some(vec![(u, vec![edges[0]]), (v, vec![edges[0]])]);
    }
    let ctx = BlockCtx::new(g, edges);
    if ctx.n() >= 3 && ctx.m() > 3 * ctx.n() - 6 {
        return None;
    }

    let mut in_h = vec![false; ctx.n()];
    let mut embedded = vec![false; ctx.m()];
    let mut remaining = ctx.m();

    // Initial cycle via iterative DFS until a back edge closes one.
    let cycle = find_cycle(&ctx).expect("a block with >= 2 edges is 2-connected, hence cyclic");
    for win in cycle.windows(2) {
        let le = edge_between_local(&ctx, win[0], win[1]).expect("cycle edges exist");
        embedded[le as usize] = true;
        remaining -= 1;
    }
    let le = edge_between_local(&ctx, *cycle.last().expect("nonempty"), cycle[0])
        .expect("closing edge exists");
    embedded[le as usize] = true;
    remaining -= 1;
    for &v in &cycle {
        in_h[v as usize] = true;
    }
    let mut faces: Vec<Vec<u32>> = vec![cycle.clone(), cycle.iter().rev().copied().collect()];

    // Scratch arrays reused across iterations.
    let mut comp_of = vec![u32::MAX; ctx.n()];
    let mut stamp = vec![u32::MAX; ctx.n()];
    let mut stamp_gen = 0u32;

    while remaining > 0 {
        // --- Compute fragments. ---
        let mut fragments: Vec<Fragment> = Vec::new();
        comp_of.iter_mut().for_each(|c| *c = u32::MAX);
        for s in 0..ctx.n() as u32 {
            if in_h[s as usize] || comp_of[s as usize] != u32::MAX {
                continue;
            }
            let cid = fragments.len() as u32;
            let mut members = vec![s];
            comp_of[s as usize] = cid;
            let mut head = 0;
            let mut attachments: Vec<u32> = Vec::new();
            while head < members.len() {
                let u = members[head];
                head += 1;
                for &(w, _) in &ctx.adj[u as usize] {
                    if in_h[w as usize] {
                        attachments.push(w);
                    } else if comp_of[w as usize] == u32::MAX {
                        comp_of[w as usize] = cid;
                        members.push(w);
                    }
                }
            }
            attachments.sort_unstable();
            attachments.dedup();
            fragments.push(Fragment::Component {
                members,
                attachments,
            });
        }
        for le in 0..ctx.m() as u32 {
            if embedded[le as usize] {
                continue;
            }
            let (a, b) = ctx.ends[le as usize];
            if in_h[a as usize] && in_h[b as usize] {
                fragments.push(Fragment::SingleEdge { edge: le });
            }
        }
        debug_assert!(!fragments.is_empty(), "edges remain but no fragments found");

        // --- Admissible faces per fragment. ---
        // vertex -> faces containing it.
        let mut faces_at: Vec<Vec<u32>> = vec![Vec::new(); ctx.n()];
        for (fi, f) in faces.iter().enumerate() {
            for &v in f {
                faces_at[v as usize].push(fi as u32);
            }
        }
        let mut att_buf = Vec::new();
        let mut chosen: Option<(usize, u32)> = None; // (fragment idx, face idx)
        let mut best_count = usize::MAX;
        for (i, frag) in fragments.iter().enumerate() {
            let atts = frag.attachments(&ctx, &mut att_buf);
            debug_assert!(
                atts.len() >= 2,
                "biconnected block fragments have >= 2 attachments"
            );
            let mut admissible: Option<u32> = None;
            let mut count = 0usize;
            for &fi in &faces_at[atts[0] as usize] {
                // Stamp the face's vertices, then test the attachments.
                stamp_gen += 1;
                for &v in &faces[fi as usize] {
                    stamp[v as usize] = stamp_gen;
                }
                if atts.iter().all(|&a| stamp[a as usize] == stamp_gen) {
                    count += 1;
                    if admissible.is_none() {
                        admissible = Some(fi);
                    }
                }
            }
            match (count, admissible) {
                (0, _) => return None, // fragment cannot be drawn: non-planar
                (c, Some(fi)) if c < best_count => {
                    best_count = c;
                    chosen = Some((i, fi));
                    if c == 1 {
                        break; // forced fragment — take it immediately
                    }
                }
                _ => {}
            }
        }
        let (fi_frag, fi_face) = chosen.expect("fragments nonempty and none returned NonPlanar");

        // --- Extract a path through the chosen fragment. ---
        let path: Vec<(u32, u32)> = match &fragments[fi_frag] {
            Fragment::SingleEdge { edge } => {
                let (a, b) = ctx.ends[*edge as usize];
                vec![(a, u32::MAX), (b, *edge)]
            }
            Fragment::Component {
                members,
                attachments,
            } => find_fragment_path(&ctx, members, attachments, &in_h),
        };

        // --- Mark path embedded. ---
        for &(v, le) in &path {
            if le != u32::MAX {
                debug_assert!(!embedded[le as usize]);
                embedded[le as usize] = true;
                remaining -= 1;
            }
            in_h[v as usize] = true;
        }

        // --- Split the face. ---
        let a = path[0].0;
        let b = path.last().expect("path has two ends").0;
        let interior: Vec<u32> = path[1..path.len() - 1].iter().map(|&(v, _)| v).collect();
        let face = std::mem::take(&mut faces[fi_face as usize]);
        let pa = face.iter().position(|&v| v == a).expect("a on face");
        let pb = face.iter().position(|&v| v == b).expect("b on face");
        let (arc1, arc2) = split_cycle(&face, pa, pb);
        // face1: a..b along arc1, then interior reversed (b -> a side).
        let mut f1 = arc1;
        f1.extend(interior.iter().rev());
        // face2: b..a along arc2, then interior forward.
        let mut f2 = arc2;
        f2.extend(interior.iter());
        faces[fi_face as usize] = f1;
        faces.push(f2);
    }

    // --- Derive the rotation from the face corners. ---
    rotation_from_local_faces(&ctx, &faces)
}

/// Splits cyclic `face` at positions `pa`, `pb` into the arc `a..=b` and
/// the arc `b..=a` (both inclusive of endpoints, in face order).
fn split_cycle(face: &[u32], pa: usize, pb: usize) -> (Vec<u32>, Vec<u32>) {
    let k = face.len();
    let walk = |from: usize, to: usize| -> Vec<u32> {
        let mut out = Vec::new();
        let mut i = from;
        loop {
            out.push(face[i]);
            if i == to {
                break;
            }
            i = (i + 1) % k;
        }
        out
    };
    (walk(pa, pb), walk(pb, pa))
}

fn edge_between_local(ctx: &BlockCtx, u: u32, v: u32) -> Option<u32> {
    ctx.adj[u as usize]
        .iter()
        .find(|&&(w, _)| w == v)
        .map(|&(_, e)| e)
}

/// Finds any cycle in the block (iterative DFS; first back edge closes it).
fn find_cycle(ctx: &BlockCtx) -> Option<Vec<u32>> {
    let n = ctx.n();
    let mut parent = vec![u32::MAX; n];
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack path, 2 done
    let mut stack: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if state[root as usize] != 0 {
            continue;
        }
        state[root as usize] = 1;
        stack.push((root, 0));
        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            if *i >= ctx.adj[u as usize].len() {
                state[u as usize] = 2;
                stack.pop();
                continue;
            }
            let (w, _e) = ctx.adj[u as usize][*i];
            *i += 1;
            if state[w as usize] == 0 {
                state[w as usize] = 1;
                parent[w as usize] = u;
                stack.push((w, 0));
            } else if state[w as usize] == 1 && parent[u as usize] != w {
                // Back edge (u, w): walk u -> ... -> w through parents.
                let mut cyc = vec![u];
                let mut x = u;
                while x != w {
                    x = parent[x as usize];
                    cyc.push(x);
                }
                return Some(cyc);
            }
        }
    }
    None
}

/// BFS through a component-fragment from one attachment to another;
/// returns `[(a, MAX), (x1, e1), ..., (b, ek)]` — each entry is a vertex
/// and the local edge used to reach it.
fn find_fragment_path(
    ctx: &BlockCtx,
    members: &[u32],
    attachments: &[u32],
    in_h: &[bool],
) -> Vec<(u32, u32)> {
    let a = attachments[0];
    let b = attachments[1];
    debug_assert_ne!(a, b);
    // BFS from a; interior steps through component members only; may end
    // at b. Use a local visited set over touched vertices.
    let mut pred: HashMap<u32, (u32, u32)> = HashMap::new(); // v -> (prev, edge)
    let mut queue = std::collections::VecDeque::new();
    let member_set: std::collections::HashSet<u32> = members.iter().copied().collect();
    queue.push_back(a);
    let mut found = false;
    'bfs: while let Some(u) = queue.pop_front() {
        if in_h[u as usize] && u != a {
            continue; // only the start may leave H
        }
        for &(w, le) in &ctx.adj[u as usize] {
            // From `a`, only step into the fragment's interior (never take
            // a direct a-b edge: that edge belongs to another fragment, or
            // is already embedded). From interior vertices, we may step to
            // interior vertices or finish at `b`.
            let allowed = if u == a {
                member_set.contains(&w)
            } else {
                member_set.contains(&w) || w == b
            };
            if !allowed || pred.contains_key(&w) || w == a {
                continue;
            }
            pred.insert(w, (u, le));
            if w == b {
                found = true;
                break 'bfs;
            }
            queue.push_back(w);
        }
    }
    debug_assert!(
        found,
        "attachments of a fragment must be connected through it"
    );
    let mut rev = vec![];
    let mut cur = b;
    while cur != a {
        let (p, e) = pred[&cur];
        rev.push((cur, e));
        cur = p;
    }
    rev.push((a, u32::MAX));
    rev.reverse();
    rev
}

/// Builds per-vertex circular orders from the final face set of a block.
fn rotation_from_local_faces(
    ctx: &BlockCtx,
    faces: &[Vec<u32>],
) -> Option<Vec<(NodeId, Vec<EdgeId>)>> {
    // next[(v, incoming edge)] = outgoing edge, from face corners.
    let mut next: HashMap<(u32, u32), u32> = HashMap::new();
    for f in faces {
        if f.is_empty() {
            continue;
        }
        let k = f.len();
        for i in 0..k {
            let p = f[i];
            let v = f[(i + 1) % k];
            let s = f[(i + 2) % k];
            let e_in = edge_between_local(ctx, p, v).expect("face edges exist");
            let e_out = edge_between_local(ctx, v, s).expect("face edges exist");
            if next.insert((v, e_in), e_out).is_some() {
                return None; // a dart appeared on two faces: inconsistent
            }
        }
    }
    let mut out = Vec::with_capacity(ctx.n());
    for v in 0..ctx.n() as u32 {
        let deg = ctx.adj[v as usize].len();
        let first = ctx.adj[v as usize][0].1;
        let mut order = Vec::with_capacity(deg);
        let mut e = first;
        loop {
            order.push(EdgeId::new(ctx.global_e[e as usize].index()));
            e = *next.get(&(v, e))?;
            if e == first {
                break;
            }
            if order.len() > deg {
                return None; // not a single cycle
            }
        }
        if order.len() != deg {
            return None;
        }
        out.push((ctx.global_v[v as usize], order));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use planartest_graph::generators::{nonplanar, planar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_planar(g: &Graph) {
        match check_planarity(g) {
            PlanarityCheck::Planar(rot) => {
                assert!(rot.is_planar_embedding(g), "returned rotation must verify");
            }
            PlanarityCheck::NonPlanar => panic!("graph wrongly declared non-planar"),
        }
    }

    #[test]
    fn small_planar_graphs() {
        assert_planar(&Graph::empty(0));
        assert_planar(&Graph::empty(5));
        assert_planar(&Graph::from_edges(2, [(0, 1)]).unwrap());
        assert_planar(&Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap());
        assert_planar(
            &Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap(),
        );
    }

    #[test]
    fn k5_and_k33_rejected() {
        assert!(!is_planar(&nonplanar::complete(5).graph));
        assert!(!is_planar(&nonplanar::complete_bipartite(3, 3).graph));
        assert!(!is_planar(&nonplanar::complete(6).graph));
    }

    #[test]
    fn k4_and_k23_accepted() {
        assert!(is_planar(&nonplanar::complete(4).graph));
        assert!(is_planar(&nonplanar::complete_bipartite(2, 3).graph));
    }

    #[test]
    fn grids_planar() {
        assert_planar(&planar::grid(6, 7).graph);
        assert_planar(&planar::triangulated_grid(5, 5).graph);
    }

    #[test]
    fn apollonian_planar() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [3usize, 4, 5, 10, 60, 200] {
            assert_planar(&planar::apollonian(n, &mut rng).graph);
        }
    }

    #[test]
    fn outerplanar_planar() {
        let mut rng = StdRng::seed_from_u64(8);
        for n in [3usize, 6, 25, 120] {
            assert_planar(&planar::maximal_outerplanar(n, &mut rng).graph);
        }
    }

    #[test]
    fn random_planar_planar() {
        let mut rng = StdRng::seed_from_u64(9);
        for keep in [0.3, 0.7, 1.0] {
            assert_planar(&planar::random_planar(80, keep, &mut rng).graph);
        }
    }

    #[test]
    fn trees_and_forests_planar() {
        let mut rng = StdRng::seed_from_u64(10);
        assert_planar(&planar::random_tree(100, &mut rng).graph);
        assert_planar(&Graph::from_edges(6, [(0, 1), (2, 3), (4, 5)]).unwrap());
    }

    #[test]
    fn planar_plus_chords_rejected() {
        let mut rng = StdRng::seed_from_u64(11);
        let c = nonplanar::planar_plus_chords(40, 12, &mut rng);
        assert!(!is_planar(&c.graph));
    }

    #[test]
    fn petersen_graph_rejected() {
        // The Petersen graph is a classic non-planar graph with m < 3n-6.
        let outer: Vec<(usize, usize)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        let spokes: Vec<(usize, usize)> = (0..5).map(|i| (i, i + 5)).collect();
        let inner: Vec<(usize, usize)> = (0..5).map(|i| (5 + i, 5 + (i + 2) % 5)).collect();
        let edges: Vec<_> = outer.into_iter().chain(spokes).chain(inner).collect();
        let g = Graph::from_edges(10, edges).unwrap();
        assert_eq!(g.m(), 15); // m = 15 <= 3*10-6 = 24: Euler can't reject
        assert!(!is_planar(&g));
    }

    #[test]
    fn blocks_stitched_at_cut_vertices() {
        // Two K4s sharing a vertex, plus a pendant path.
        let mut edges = vec![];
        for i in 0..4usize {
            for j in i + 1..4 {
                edges.push((i, j));
            }
        }
        for i in 3..7usize {
            for j in i + 1..7 {
                edges.push((i, j));
            }
        }
        edges.push((6, 7));
        edges.push((7, 8));
        let g = Graph::from_edges(9, edges).unwrap();
        assert_planar(&g);
    }

    #[test]
    fn dense_graph_fast_reject() {
        let g = nonplanar::complete(30).graph;
        assert!(!is_planar(&g)); // m >> 3n-6 triggers the Euler cut-off
    }

    #[test]
    fn k33_subdivision_rejected() {
        // Subdivide every edge of K3,3 once: still non-planar, sparse.
        let k33 = nonplanar::complete_bipartite(3, 3).graph;
        let mut b = planartest_graph::GraphBuilder::new(6 + k33.m());
        for (i, (u, v)) in k33.edges().enumerate() {
            let mid = 6 + i;
            b.add_edge(u.index(), mid).unwrap();
            b.add_edge(mid, v.index()).unwrap();
        }
        let g = b.build();
        assert!(!is_planar(&g));
    }

    #[test]
    fn planar_with_many_blocks() {
        // A long chain of triangles sharing single vertices.
        let k = 40;
        let mut edges = Vec::new();
        for t in 0..k {
            let base = 2 * t;
            edges.push((base, base + 1));
            edges.push((base + 1, base + 2));
            edges.push((base, base + 2));
        }
        let g = Graph::from_edges(2 * k + 1, edges).unwrap();
        assert_planar(&g);
    }
}
