//! Distributed BFS-tree construction (the Stage II preprocessing step).
//!
//! Each root floods `(root, level)` offers; a node joins the first tree it
//! hears from (ties broken by smallest `(root, sender)`), replies to its
//! parent, and propagates offers. A membership filter restricts which
//! offers a node may accept — Stage II uses it to keep each part's BFS
//! inside the part.
//!
//! The protocol is expressed as a [`ParallelNodeLogic`]: each node's
//! join state is node-local, so on a parallel backend the offer waves —
//! the `O(depth)`-round bulk of Stage II's preprocessing — fan out
//! across the worker pool. On a serial backend the same code runs on
//! one thread with identical results (see the
//! [runtime docs](crate::runtime)).

use planartest_graph::{Graph, NodeId};

use crate::engine::{Msg, Outbox, SimError};
use crate::runtime::{EngineCore, ParallelNodeLogic};
use crate::tree::TreeTopology;

const TAG_OFFER: u64 = 0;
const TAG_ACCEPT: u64 = 1;

/// Result of a distributed multi-root BFS.
#[derive(Debug, Clone)]
pub struct DistBfs {
    /// Root whose tree each node joined (`None` = unreached).
    pub root_of: Vec<Option<NodeId>>,
    /// BFS parent (`None` for roots and unreached nodes).
    pub parent: Vec<Option<NodeId>>,
    /// BFS children (learned through accept messages).
    pub children: Vec<Vec<NodeId>>,
    /// BFS level (`None` = unreached).
    pub level: Vec<Option<u32>>,
}

impl DistBfs {
    /// Converts into a [`TreeTopology`] over the same graph.
    ///
    /// # Errors
    ///
    /// Propagates topology validation errors (cannot occur for trees built
    /// by [`distributed_bfs`]).
    pub fn to_tree(&self, g: &Graph) -> Result<TreeTopology, crate::tree::TreeError> {
        TreeTopology::from_parents(g, self.parent.clone())
    }
}

/// Runs a synchronous multi-root BFS; `allow(node, root)` gates which tree
/// a node may join (use `|_, _| true` for an unrestricted BFS).
///
/// Takes `2·depth + O(1)` rounds (offers + accepts). Runs node-parallel
/// on a [`Backend::Parallel`](crate::runtime::Backend) engine.
///
/// # Errors
///
/// Propagates engine [`SimError`]s.
pub fn distributed_bfs<'g, E, F>(
    engine: &mut E,
    roots: &[NodeId],
    allow: F,
    max_rounds: u64,
) -> Result<DistBfs, SimError>
where
    E: EngineCore<'g>,
    F: Fn(NodeId, NodeId) -> bool + Sync,
{
    let g = engine.graph();
    let n = g.n();
    let mut is_root = vec![false; n];
    for &r in roots {
        is_root[r.index()] = true;
    }
    let logic = BfsLogic { g, is_root, allow };
    let mut states = vec![BfsNodeState::default(); n];
    engine.run_program(&logic, &mut states, max_rounds)?;
    let mut out = DistBfs {
        root_of: Vec::with_capacity(n),
        parent: Vec::with_capacity(n),
        children: Vec::with_capacity(n),
        level: Vec::with_capacity(n),
    };
    for mut s in states {
        s.children.sort_unstable();
        out.root_of.push(s.root_of);
        out.parent.push(s.parent);
        out.children.push(s.children);
        out.level.push(s.level);
    }
    Ok(out)
}

/// One node's BFS join state.
#[derive(Debug, Clone, Default)]
struct BfsNodeState {
    root_of: Option<NodeId>,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    level: Option<u32>,
}

struct BfsLogic<'g, F> {
    g: &'g Graph,
    is_root: Vec<bool>,
    allow: F,
}

impl<F: Fn(NodeId, NodeId) -> bool + Sync> ParallelNodeLogic for BfsLogic<'_, F> {
    type State = BfsNodeState;

    fn init(&self, node: NodeId, state: &mut BfsNodeState, out: &mut Outbox<'_>) {
        if self.is_root[node.index()] {
            state.root_of = Some(node);
            state.level = Some(0);
            out.send_all(Msg::words(&[TAG_OFFER, node.raw() as u64, 0]));
        }
    }

    fn round(
        &self,
        node: NodeId,
        state: &mut BfsNodeState,
        inbox: &[(NodeId, Msg)],
        out: &mut Outbox<'_>,
    ) {
        // Record accepts (children) regardless of our own join state.
        for (from, msg) in inbox {
            if msg.word(0) == TAG_ACCEPT {
                state.children.push(*from);
            }
        }
        if state.root_of.is_some() {
            return; // already in a tree: ignore further offers
        }
        // Collect admissible offers and pick deterministically.
        let mut best: Option<(u32, u32, u32)> = None; // (root, sender, level)
        for (from, msg) in inbox {
            if msg.word(0) != TAG_OFFER {
                continue;
            }
            let root = NodeId::from(msg.word(1) as u32);
            let level = msg.word(2) as u32;
            if !(self.allow)(node, root) {
                continue;
            }
            let key = (root.raw(), from.raw(), level);
            if best.is_none() || Some(key) < best {
                best = Some(key);
            }
        }
        if let Some((root, sender, level)) = best {
            let parent = NodeId::from(sender);
            state.root_of = Some(NodeId::from(root));
            state.parent = Some(parent);
            state.level = Some(level + 1);
            out.send(parent, Msg::words(&[TAG_ACCEPT]));
            let offer = Msg::words(&[TAG_OFFER, root as u64, (level + 1) as u64]);
            let neighbors: Vec<NodeId> = self.g.neighbors(node).iter().map(|&(w, _)| w).collect();
            for w in neighbors {
                if w != parent {
                    out.send(w, offer.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SimConfig};
    use crate::runtime::{Backend, ParallelEngine};

    #[test]
    fn single_root_levels() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 3)]).unwrap();
        let mut engine = Engine::new(&g, SimConfig::default());
        let bfs = distributed_bfs(&mut engine, &[NodeId::new(0)], |_, _| true, 100).unwrap();
        assert_eq!(bfs.level[0], Some(0));
        assert_eq!(bfs.level[1], Some(1));
        assert_eq!(bfs.level[4], Some(1));
        assert_eq!(bfs.level[2], Some(2));
        assert_eq!(bfs.level[5], Some(2));
        assert_eq!(bfs.level[3], Some(3));
        // Parent levels are exactly one less.
        for v in g.nodes() {
            if let Some(p) = bfs.parent[v.index()] {
                assert_eq!(
                    bfs.level[v.index()].unwrap(),
                    bfs.level[p.index()].unwrap() + 1
                );
                assert!(bfs.children[p.index()].contains(&v));
            }
        }
        let tree = bfs.to_tree(&g).unwrap();
        assert_eq!(tree.root_of(NodeId::new(3)), NodeId::new(0));
    }

    #[test]
    fn multi_root_voronoi() {
        // A path; roots at the two ends.
        let g = Graph::from_edges(7, (0..6).map(|i| (i, i + 1))).unwrap();
        let mut engine = Engine::new(&g, SimConfig::default());
        let bfs = distributed_bfs(
            &mut engine,
            &[NodeId::new(0), NodeId::new(6)],
            |_, _| true,
            100,
        )
        .unwrap();
        assert_eq!(bfs.root_of[1], Some(NodeId::new(0)));
        assert_eq!(bfs.root_of[5], Some(NodeId::new(6)));
        // The middle node hears both in the same round: smaller root wins.
        assert_eq!(bfs.root_of[3], Some(NodeId::new(0)));
        assert!(bfs.root_of.iter().all(Option::is_some));
    }

    #[test]
    fn membership_filter_respected() {
        // Two "parts": {0,1,2} and {3,4,5}, connected by edge (2,3).
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let part = [0u32, 0, 0, 1, 1, 1];
        let root_part = move |r: NodeId| part[r.index()];
        let mut engine = Engine::new(&g, SimConfig::default());
        let bfs = distributed_bfs(
            &mut engine,
            &[NodeId::new(0), NodeId::new(3)],
            move |v, r| part[v.index()] == root_part(r),
            100,
        )
        .unwrap();
        assert_eq!(bfs.root_of[2], Some(NodeId::new(0)));
        assert_eq!(bfs.root_of[3], Some(NodeId::new(3)));
        assert_eq!(bfs.root_of[5], Some(NodeId::new(3)));
        // No cross-part parenthood.
        for v in 0..6 {
            if let Some(p) = bfs.parent[v] {
                assert_eq!(part[v], part[p.index()]);
            }
        }
    }

    #[test]
    fn unreached_nodes_stay_none() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let mut engine = Engine::new(&g, SimConfig::default());
        let bfs = distributed_bfs(&mut engine, &[NodeId::new(0)], |_, _| true, 100).unwrap();
        assert_eq!(bfs.root_of[2], None);
        assert_eq!(bfs.level[3], None);
    }

    #[test]
    fn rounds_proportional_to_depth() {
        let n = 50;
        let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap();
        let mut engine = Engine::new(&g, SimConfig::default());
        let _ = distributed_bfs(&mut engine, &[NodeId::new(0)], |_, _| true, 500).unwrap();
        let rounds = engine.stats().rounds;
        assert!(rounds >= (n - 1) as u64, "rounds {rounds}");
        assert!(rounds <= 2 * n as u64, "rounds {rounds}");
    }

    #[test]
    fn parallel_backend_matches_serial() {
        let g = Graph::from_edges(
            9,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 0),
                (2, 6),
            ],
        )
        .unwrap();
        let run_with = |threads: usize| {
            let cfg = SimConfig::default().with_backend(Backend::Parallel { threads });
            let mut engine = ParallelEngine::new(&g, cfg);
            let bfs = distributed_bfs(
                &mut engine,
                &[NodeId::new(0), NodeId::new(4)],
                |_, _| true,
                100,
            )
            .unwrap();
            (
                bfs.root_of,
                bfs.parent,
                bfs.children,
                bfs.level,
                *engine.stats(),
            )
        };
        let serial = run_with(1);
        for threads in [2, 4] {
            assert_eq!(run_with(threads), serial, "threads={threads}");
        }
    }
}
