//! Cumulative round/message accounting across a multi-phase algorithm.

use std::fmt;

use crate::engine::RunReport;

/// Cumulative statistics of an [`Engine`](crate::Engine) across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Rounds executed by the engine (sum over runs).
    pub rounds: u64,
    /// Rounds explicitly charged for substituted subroutines.
    pub charged_rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Payload words delivered.
    pub words: u64,
    /// Number of `run` invocations (protocol phases with a global barrier).
    pub runs: u64,
}

impl SimStats {
    /// Adds one run's report.
    pub fn absorb(&mut self, report: RunReport) {
        self.rounds += report.rounds;
        self.messages += report.messages;
        self.words += report.words;
        self.runs += 1;
    }

    /// Executed plus charged rounds — the figure the paper's theorems
    /// bound.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.rounds + self.charged_rounds
    }

    /// The accounting accumulated since `baseline` was captured from the
    /// same engine (field-wise difference). Used by batched drivers to
    /// attribute a shared sub-run section to every instance of a batch.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, via arithmetic overflow checks) if
    /// `baseline` is not an earlier snapshot of this statistics object.
    #[must_use]
    pub fn delta_since(&self, baseline: &SimStats) -> SimStats {
        SimStats {
            rounds: self.rounds - baseline.rounds,
            charged_rounds: self.charged_rounds - baseline.charged_rounds,
            messages: self.messages - baseline.messages,
            words: self.words - baseline.words,
            runs: self.runs - baseline.runs,
        }
    }

    /// Merges another stats object (e.g. from a sub-protocol engine).
    pub fn merge(&mut self, other: &SimStats) {
        self.rounds += other.rounds;
        self.charged_rounds += other.charged_rounds;
        self.messages += other.messages;
        self.words += other.words;
        self.runs += other.runs;
    }
}

/// A rollup of engine-pass statistics: how many passes ran and their
/// accumulated [`SimStats`]. The service layer folds one delta per
/// engine pass into this to expose cumulative simulated work (rounds,
/// messages, words) alongside wall-clock latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassRollup {
    /// Engine passes folded in.
    pub passes: u64,
    /// Accumulated statistics across those passes.
    pub stats: SimStats,
}

impl PassRollup {
    /// Folds one pass's statistics delta into the rollup.
    pub fn record(&mut self, delta: &SimStats) {
        self.passes += 1;
        self.stats.merge(delta);
    }

    /// Merges another rollup (e.g. from a worker's private counter).
    pub fn merge(&mut self, other: &PassRollup) {
        self.passes += other.passes;
        self.stats.merge(&other.stats);
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds (+{} charged), {} messages, {} words, {} phases",
            self.rounds, self.charged_rounds, self.messages, self.words, self.runs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_and_total() {
        let mut s = SimStats::default();
        s.absorb(RunReport {
            rounds: 10,
            messages: 5,
            words: 9,
            ..RunReport::default()
        });
        s.absorb(RunReport {
            rounds: 3,
            messages: 1,
            words: 1,
            ..RunReport::default()
        });
        s.charged_rounds = 7;
        assert_eq!(s.rounds, 13);
        assert_eq!(s.total_rounds(), 20);
        assert_eq!(s.runs, 2);
        assert!(s.to_string().contains("13 rounds"));
    }

    #[test]
    fn pass_rollup_accumulates() {
        let mut r = PassRollup::default();
        r.record(&SimStats {
            rounds: 10,
            charged_rounds: 1,
            messages: 5,
            words: 9,
            runs: 2,
        });
        r.record(&SimStats {
            rounds: 4,
            ..SimStats::default()
        });
        assert_eq!(r.passes, 2);
        assert_eq!(r.stats.rounds, 14);
        assert_eq!(r.stats.total_rounds(), 15);

        let mut other = PassRollup::default();
        other.record(&SimStats {
            rounds: 100,
            ..SimStats::default()
        });
        r.merge(&other);
        assert_eq!(r.passes, 3);
        assert_eq!(r.stats.rounds, 114);
    }

    #[test]
    fn merge() {
        let mut a = SimStats {
            rounds: 1,
            charged_rounds: 2,
            messages: 3,
            words: 4,
            runs: 5,
        };
        let b = SimStats {
            rounds: 10,
            charged_rounds: 20,
            messages: 30,
            words: 40,
            runs: 50,
        };
        a.merge(&b);
        assert_eq!(
            a,
            SimStats {
                rounds: 11,
                charged_rounds: 22,
                messages: 33,
                words: 44,
                runs: 55
            }
        );
    }
}
