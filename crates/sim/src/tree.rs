//! Forest topologies with message-level broadcast and convergecast.
//!
//! Stage I of the tester maintains, per part, a rooted spanning tree known
//! only through each node's local parent/children pointers (Lemma 6 of the
//! paper). These primitives move information up and down such forests with
//! real messages: one hop per round, bandwidth-checked.

use std::fmt;

use planartest_graph::{Graph, NodeId};

use crate::engine::{Msg, NodeLogic, Outbox, SimError};
use crate::runtime::EngineCore;

/// A rooted forest over the nodes of a graph, where every parent link is a
/// graph edge. Nodes with no parent are roots (isolated nodes are trivial
/// roots).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeTopology {
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
}

/// Error constructing a [`TreeTopology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// `parent` had the wrong length.
    WrongLength {
        /// Entries supplied.
        got: usize,
        /// Entries expected.
        expected: usize,
    },
    /// A parent pointer is not a graph neighbour.
    ParentNotNeighbor {
        /// The child whose pointer is invalid.
        node: NodeId,
    },
    /// Parent pointers contain a cycle through this node.
    Cycle {
        /// A node on the cycle.
        node: NodeId,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::WrongLength { got, expected } => {
                write!(f, "parent vector has {got} entries, expected {expected}")
            }
            TreeError::ParentNotNeighbor { node } => {
                write!(f, "parent of {node:?} is not a neighbour in the graph")
            }
            TreeError::Cycle { node } => write!(f, "parent pointers cycle through {node:?}"),
        }
    }
}

impl std::error::Error for TreeError {}

impl TreeTopology {
    /// Builds and validates a forest from parent pointers.
    ///
    /// # Errors
    ///
    /// Rejects non-neighbour parents and cyclic pointer chains.
    pub fn from_parents(g: &Graph, parent: Vec<Option<NodeId>>) -> Result<Self, TreeError> {
        if parent.len() != g.n() {
            return Err(TreeError::WrongLength {
                got: parent.len(),
                expected: g.n(),
            });
        }
        for v in g.nodes() {
            if let Some(p) = parent[v.index()] {
                if !g.has_edge(v, p) {
                    return Err(TreeError::ParentNotNeighbor { node: v });
                }
            }
        }
        // Cycle check: iterative root-finding with memoization.
        let mut state = vec![0u8; g.n()]; // 0 unknown, 1 in progress, 2 ok
        for v in g.nodes() {
            if state[v.index()] != 0 {
                continue;
            }
            let mut path = vec![v];
            state[v.index()] = 1;
            let mut cur = v;
            loop {
                match parent[cur.index()] {
                    None => break,
                    Some(p) => match state[p.index()] {
                        0 => {
                            state[p.index()] = 1;
                            path.push(p);
                            cur = p;
                        }
                        1 => return Err(TreeError::Cycle { node: p }),
                        _ => break,
                    },
                }
            }
            for x in path {
                state[x.index()] = 2;
            }
        }
        let mut children = vec![Vec::new(); g.n()];
        for v in g.nodes() {
            if let Some(p) = parent[v.index()] {
                children[p.index()].push(v);
            }
        }
        Ok(TreeTopology { parent, children })
    }

    /// Parent of `v` (`None` for roots).
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// Children of `v`.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// Whether `v` is a root.
    pub fn is_root(&self, v: NodeId) -> bool {
        self.parent[v.index()].is_none()
    }

    /// The root of `v`'s tree (follows parent pointers).
    pub fn root_of(&self, v: NodeId) -> NodeId {
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            cur = p;
        }
        cur
    }

    /// Depth of `v` (root = 0).
    pub fn depth(&self, v: NodeId) -> u32 {
        let mut d = 0;
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the forest (maximum depth over all nodes).
    pub fn height(&self) -> u32 {
        (0..self.parent.len())
            .map(|v| self.depth(NodeId::new(v)))
            .max()
            .unwrap_or(0)
    }
}

struct BroadcastLogic<'t, F> {
    tree: &'t TreeTopology,
    payload: F,
    received: Vec<Option<Msg>>,
}

impl<F: FnMut(NodeId) -> Option<Msg>> NodeLogic for BroadcastLogic<'_, F> {
    fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        if self.tree.is_root(node) {
            if let Some(msg) = (self.payload)(node) {
                for &c in self.tree.children(node) {
                    out.send(c, msg.clone());
                }
                self.received[node.index()] = Some(msg);
            }
        }
    }

    fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        for (from, msg) in inbox {
            debug_assert_eq!(
                Some(*from),
                self.tree.parent(node),
                "broadcast came off-tree"
            );
            for &c in self.tree.children(node) {
                out.send(c, msg.clone());
            }
            self.received[node.index()] = Some(msg.clone());
        }
    }
}

/// Broadcasts one message per tree, from each root downward. Returns the
/// message each node ended up with (`None` for nodes of trees whose root
/// supplied no payload).
///
/// Takes `height(tree)` rounds.
///
/// # Errors
///
/// Propagates engine [`SimError`]s (e.g. payload over bandwidth).
pub fn broadcast<'g, E, F>(
    engine: &mut E,
    tree: &TreeTopology,
    payload: F,
    max_rounds: u64,
) -> Result<Vec<Option<Msg>>, SimError>
where
    E: EngineCore<'g>,
    F: FnMut(NodeId) -> Option<Msg>,
{
    let n = engine.graph().n();
    let mut logic = BroadcastLogic {
        tree,
        payload,
        received: vec![None; n],
    };
    engine.run_logic(&mut logic, max_rounds)?;
    Ok(logic.received)
}

struct ConvergecastLogic<'t, F> {
    tree: &'t TreeTopology,
    combine: F,
    pending: Vec<usize>,
    gathered: Vec<Vec<(NodeId, Msg)>>,
    result: Vec<Option<Msg>>,
}

impl<F: FnMut(NodeId, &[(NodeId, Msg)]) -> Msg> ConvergecastLogic<'_, F> {
    fn finish(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        let inputs = std::mem::take(&mut self.gathered[node.index()]);
        let value = (self.combine)(node, &inputs);
        match self.tree.parent(node) {
            Some(p) => out.send(p, value),
            None => self.result[node.index()] = Some(value),
        }
    }
}

impl<F: FnMut(NodeId, &[(NodeId, Msg)]) -> Msg> NodeLogic for ConvergecastLogic<'_, F> {
    fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        self.pending[node.index()] = self.tree.children(node).len();
        if self.pending[node.index()] == 0 {
            self.finish(node, out);
        }
    }

    fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        for (from, msg) in inbox {
            self.gathered[node.index()].push((*from, msg.clone()));
            self.pending[node.index()] -= 1;
        }
        if self.pending[node.index()] == 0 && !inbox.is_empty() {
            self.finish(node, out);
        }
    }
}

/// Aggregates a value up each tree: every node computes
/// `combine(node, children_values)` (leaves see an empty slice) and passes
/// it to its parent. Returns the root values.
///
/// Takes `height(tree)` rounds; each hop carries one combined message, so
/// `combine` must keep its output within bandwidth.
///
/// # Errors
///
/// Propagates engine [`SimError`]s.
pub fn convergecast<'g, E, F>(
    engine: &mut E,
    tree: &TreeTopology,
    combine: F,
    max_rounds: u64,
) -> Result<Vec<Option<Msg>>, SimError>
where
    E: EngineCore<'g>,
    F: FnMut(NodeId, &[(NodeId, Msg)]) -> Msg,
{
    let n = engine.graph().n();
    let mut logic = ConvergecastLogic {
        tree,
        combine,
        pending: vec![0; n],
        gathered: vec![Vec::new(); n],
        result: vec![None; n],
    };
    engine.run_logic(&mut logic, max_rounds)?;
    Ok(logic.result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SimConfig};

    /// A path 0-1-2-3-4 rooted at 0 plus an isolated root 5.
    fn setup() -> (Graph, TreeTopology) {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let parent = vec![
            None,
            Some(NodeId::new(0)),
            Some(NodeId::new(1)),
            Some(NodeId::new(2)),
            Some(NodeId::new(3)),
            None,
        ];
        let tree = TreeTopology::from_parents(&g, parent).unwrap();
        (g, tree)
    }

    #[test]
    fn topology_accessors() {
        let (_, tree) = setup();
        assert!(tree.is_root(NodeId::new(0)));
        assert!(tree.is_root(NodeId::new(5)));
        assert_eq!(tree.parent(NodeId::new(3)), Some(NodeId::new(2)));
        assert_eq!(tree.children(NodeId::new(1)), &[NodeId::new(2)]);
        assert_eq!(tree.root_of(NodeId::new(4)), NodeId::new(0));
        assert_eq!(tree.depth(NodeId::new(4)), 4);
        assert_eq!(tree.height(), 4);
    }

    #[test]
    fn invalid_topologies_rejected() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        // Wrong length.
        assert!(matches!(
            TreeTopology::from_parents(&g, vec![None]),
            Err(TreeError::WrongLength { .. })
        ));
        // Non-neighbour parent.
        let e = TreeTopology::from_parents(&g, vec![None, None, Some(NodeId::new(0))]);
        assert!(matches!(e, Err(TreeError::ParentNotNeighbor { .. })));
        // Cycle 0 <-> 1.
        let e =
            TreeTopology::from_parents(&g, vec![Some(NodeId::new(1)), Some(NodeId::new(0)), None]);
        assert!(matches!(e, Err(TreeError::Cycle { .. })));
        assert!(e.unwrap_err().to_string().contains("cycle"));
    }

    #[test]
    fn broadcast_reaches_everyone_in_depth_rounds() {
        let (g, tree) = setup();
        let mut engine = Engine::new(&g, SimConfig::default());
        let got = broadcast(
            &mut engine,
            &tree,
            |r| {
                if r.index() == 0 {
                    Some(Msg::words(&[99]))
                } else {
                    None
                }
            },
            100,
        )
        .unwrap();
        for (v, msg) in got.iter().enumerate().take(5) {
            assert_eq!(msg.as_ref().map(|m| m.word(0)), Some(99), "node {v}");
        }
        assert_eq!(got[5], None);
        assert_eq!(engine.stats().rounds, 4); // height of the path
    }

    #[test]
    fn convergecast_sums_subtree() {
        let (g, tree) = setup();
        let mut engine = Engine::new(&g, SimConfig::default());
        let roots = convergecast(
            &mut engine,
            &tree,
            |_node, kids: &[(NodeId, Msg)]| {
                let sum: u64 = 1 + kids.iter().map(|(_, m)| m.word(0)).sum::<u64>();
                Msg::words(&[sum])
            },
            100,
        )
        .unwrap();
        assert_eq!(roots[0].as_ref().map(|m| m.word(0)), Some(5)); // path of 5 nodes
        assert_eq!(roots[5].as_ref().map(|m| m.word(0)), Some(1)); // isolated
        for root in roots.iter().take(5).skip(1) {
            assert!(root.is_none());
        }
    }

    #[test]
    fn convergecast_on_star() {
        let g = Graph::from_edges(5, (1..5).map(|i| (0, i))).unwrap();
        let parent = vec![
            None,
            Some(NodeId::new(0)),
            Some(NodeId::new(0)),
            Some(NodeId::new(0)),
            Some(NodeId::new(0)),
        ];
        let tree = TreeTopology::from_parents(&g, parent).unwrap();
        let mut engine = Engine::new(&g, SimConfig::default());
        let roots = convergecast(
            &mut engine,
            &tree,
            |node, kids: &[(NodeId, Msg)]| {
                Msg::words(&[node.raw() as u64 + kids.iter().map(|(_, m)| m.word(0)).sum::<u64>()])
            },
            100,
        )
        .unwrap();
        assert_eq!(roots[0].as_ref().map(|m| m.word(0)), Some(1 + 2 + 3 + 4));
        assert_eq!(engine.stats().rounds, 1);
    }

    #[test]
    fn broadcast_oversized_payload_fails() {
        let (g, tree) = setup();
        let mut engine = Engine::new(
            &g,
            SimConfig {
                max_words_per_message: 2,
                ..SimConfig::default()
            },
        );
        let err = broadcast(&mut engine, &tree, |_| Some(Msg::words(&[0; 3])), 100).unwrap_err();
        assert!(matches!(err, SimError::MessageTooLarge { .. }));
    }
}
