//! A synchronous CONGEST-model simulator.
//!
//! The CONGEST model (Peleg, 2000) is a synchronous message-passing model:
//! in each round every node may send one message of `O(log n)` bits along
//! each incident edge, receive the messages sent to it in that round, and
//! perform unbounded local computation. This crate executes protocols
//! *message by message* under exactly those rules:
//!
//! * [`Engine::run`] drives a [`NodeLogic`] to quiescence, delivering
//!   messages with one-round latency;
//! * at most **one message per edge direction per round**, each of at most
//!   [`SimConfig::max_words_per_message`] machine words — violations are
//!   reported as [`SimError`]s, never silently allowed;
//! * rounds, messages and words are tallied in [`SimStats`], including
//!   explicitly *charged* rounds for substituted subroutines (see
//!   `DESIGN.md` §3).
//!
//! On top of the engine, [`tree`] provides broadcast/convergecast over
//! forests and [`bfs`] grows BFS trees distributedly — the workhorses of
//! the paper's Stage I and Stage II.
//!
//! # Example
//!
//! ```
//! use planartest_graph::{Graph, NodeId};
//! use planartest_sim::{Engine, Msg, NodeLogic, Outbox, SimConfig};
//!
//! /// Every node floods a token once; we count rounds until quiescence.
//! struct Flood {
//!     seen: Vec<bool>,
//! }
//!
//! impl NodeLogic for Flood {
//!     fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
//!         if node.index() == 0 {
//!             self.seen[0] = true;
//!             out.send_all(Msg::words(&[7]));
//!         }
//!     }
//!     fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
//!         if !self.seen[node.index()] && !inbox.is_empty() {
//!             self.seen[node.index()] = true;
//!             out.send_all(Msg::words(&[7]));
//!         }
//!     }
//! }
//!
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
//! let mut engine = Engine::new(&g, SimConfig::default());
//! let mut logic = Flood { seen: vec![false; 4] };
//! let report = engine.run(&mut logic, 100)?;
//! assert!(logic.seen.iter().all(|&s| s));
//! // Distance from node 0 to node 3 is 3; one extra round drains the
//! // last node's re-broadcast.
//! assert_eq!(report.rounds, 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod bfs;
mod engine;
pub mod runtime;
pub mod sampling;
mod stats;
pub mod tree;

pub use crate::engine::{
    Engine, Msg, NodeLogic, Outbox, RunReport, SimConfig, SimError, MSG_INLINE_WORDS,
};
pub use crate::runtime::{
    run_batch, Backend, BatchEngine, EngineCore, LaneBits, ParallelEngine, ParallelNodeLogic,
    TrialRunner,
};
pub use crate::stats::{PassRollup, SimStats};
