//! Execution backends for the CONGEST engine.
//!
//! The round-synchronous CONGEST model is embarrassingly parallel along
//! two independent axes, and this module exploits both:
//!
//! * **within a round** — every node's `round` hook depends only on the
//!   messages delivered *this* round and on the node's own state, so the
//!   per-round node sweep can fan out across a worker pool
//!   ([`ParallelEngine`], [`ParallelNodeLogic`]);
//! * **across trials** — Monte-Carlo acceptance sweeps and ε/n sweeps
//!   run independent seeded simulations, fanned across cores by
//!   [`TrialRunner`].
//!
//! # Determinism guarantee
//!
//! The parallel backend is **bit-for-bit equivalent** to the serial
//! [`Engine`](crate::Engine): for the same graph, logic and seed it
//! produces the same [`RunReport`], the same
//! [`SimStats`], the same per-round message sequences
//! (delivered in the same stable `(src, dst)` order) and the same final
//! node states, regardless of worker count or scheduling. This holds
//! because each round's sends are collected into per-worker buffers and
//! merged in active-node order — exactly the order the serial loop
//! produces — before the next round's stable flat-arena mailbox
//! delivery (see [`mailbox`]). The `runtime_equivalence` proptest suite
//! enforces the guarantee on random graphs and protocols.
//!
//! One scoping note: the guarantee as stated is for runs that end in
//! `Ok`. A run that ends in a [`SimError`] returns the
//! *same error value* on every backend (the one the serial engine hits
//! first), but caller-owned node states may reflect different partial
//! progress past the failing node — the serial loop aborts mid-round
//! while pool workers finish their chunks before the error is
//! collected. Error-path states are protocol-bug debris either way;
//! don't interpret them.
//!
//! # Why a second logic trait?
//!
//! [`NodeLogic`] hands every node the *same* `&mut
//! self`, which is inherently sequential: the borrow checker is right
//! that concurrent `round` calls on one aggregate object would race.
//! [`ParallelNodeLogic`] splits the protocol into an immutable shared
//! part (`&self`: the graph, parameters, lookup tables) and an owned
//! per-node [`State`](ParallelNodeLogic::State), which is what makes the
//! node sweep safely — and deterministically — parallel. Aggregate-state
//! [`NodeLogic`] protocols still run on any backend
//! through [`EngineCore::run_logic`]; they just stay on one thread.

pub mod batch;
pub mod lanes;
pub mod mailbox;
pub mod parallel;
pub mod trials;

pub use batch::{run_batch, BatchEngine};
pub use lanes::LaneBits;
pub use parallel::{ParallelEngine, ParallelNodeLogic};
pub use trials::TrialRunner;

use planartest_graph::Graph;

use crate::engine::{NodeLogic, RunReport, SimConfig, SimError};
use crate::stats::SimStats;

/// Which execution backend drives a simulation's rounds.
///
/// All backends implement identical CONGEST semantics; the choice only
/// affects wall-clock time (see the [module docs](self) for the
/// determinism guarantee).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Single-threaded reference engine.
    Serial,
    /// Worker-pool engine: per-node `round` calls fan out across
    /// `threads` OS threads (`0` = one per available core, overridden
    /// by the `PLANARTEST_THREADS` environment variable when set).
    Parallel {
        /// Worker count; `0` picks the hardware parallelism.
        threads: usize,
    },
    /// Per-run choice between the two: a run stays serial unless the
    /// network is at least [`Backend::AUTO_MIN_NODES`] wide *and* the
    /// `n × max_rounds` work product reaches
    /// [`Backend::AUTO_WORK_THRESHOLD`] (small or short runs lose to
    /// worker-pool coordination overhead — see `BENCH_runtime.json`);
    /// otherwise it fans out across the hardware. The resolved choice
    /// is recorded per run in
    /// [`RunReport::backend`](crate::RunReport::backend).
    #[default]
    Auto,
}

impl Backend {
    /// `Auto` work threshold: runs with `n × max_rounds` below this stay
    /// serial — a round budget too short to amortize spinning up the
    /// pool, no matter how wide the network.
    pub const AUTO_WORK_THRESHOLD: u64 = 1 << 22;

    /// `Auto` width threshold: networks narrower than this stay serial
    /// regardless of the round budget. The pool's win is per-round (the
    /// node sweep divides across workers, the channel barrier does
    /// not), so a small `n` loses at *every* round count — and round
    /// budgets are routinely loose upper bounds (the tester passes
    /// `max_rounds` in the hundreds of millions), so the work product
    /// alone must never be allowed to force a tiny graph onto the pool.
    /// Calibrated from `BENCH_runtime.json`, where pooled execution
    /// loses on small instances.
    pub const AUTO_MIN_NODES: usize = 1 << 11;

    /// The number of worker threads this backend resolves to (≥ 1)
    /// independent of any workload (`Auto` resolves to the hardware
    /// parallelism — its ceiling; use [`Backend::threads_for`] for the
    /// per-run decision).
    #[must_use]
    pub fn effective_threads(self) -> usize {
        match self {
            Backend::Serial => 1,
            Backend::Parallel { threads: 0 } | Backend::Auto => auto_threads(),
            Backend::Parallel { threads } => threads.max(1),
        }
    }

    /// The worker count for one run over `n` nodes with a round budget
    /// of `max_rounds` — this is where `Auto` applies its thresholds.
    #[must_use]
    pub fn threads_for(self, n: usize, max_rounds: u64) -> usize {
        match self {
            Backend::Auto => {
                let too_narrow = n < Backend::AUTO_MIN_NODES;
                let too_short =
                    (n as u64).saturating_mul(max_rounds) < Backend::AUTO_WORK_THRESHOLD;
                if too_narrow || too_short {
                    1
                } else {
                    auto_threads()
                }
            }
            other => other.effective_threads(),
        }
    }

    /// The worker count for one *batched* run of `instances` lockstep
    /// protocol instances over an `n`-node network
    /// (see [`batch`]).
    ///
    /// Batching changes the `Auto` arithmetic: the unit of parallel work
    /// is a whole instance (never split across workers), and every
    /// barrier carries the combined `instances × n` width of the batch.
    /// `Auto` therefore picks **batched-parallel** when that combined
    /// width reaches [`Backend::AUTO_MIN_NODES`] *and* the combined work
    /// product `instances × n × max_rounds` reaches
    /// [`Backend::AUTO_WORK_THRESHOLD`] — so many small instances
    /// together can justify a pool that each alone would not. The count
    /// is capped at `instances` (extra workers would idle), and a batch
    /// of one degrades to the single-run rule
    /// ([`Backend::threads_for`]).
    #[must_use]
    pub fn threads_for_batch(self, instances: usize, n: usize, max_rounds: u64) -> usize {
        if instances <= 1 {
            return self.threads_for(n, max_rounds);
        }
        match self {
            Backend::Auto => {
                let width = instances.saturating_mul(n);
                let too_narrow = width < Backend::AUTO_MIN_NODES;
                let too_short =
                    (width as u64).saturating_mul(max_rounds) < Backend::AUTO_WORK_THRESHOLD;
                if too_narrow || too_short {
                    1
                } else {
                    auto_threads().min(instances)
                }
            }
            other => other.effective_threads().min(instances),
        }
    }
}

/// Error parsing a [`Backend`] from its textual form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError;

impl std::fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("backend must be `serial`, `auto`, `parallel` or `parallel:<threads>`")
    }
}

impl std::error::Error for ParseBackendError {}

impl std::str::FromStr for Backend {
    type Err = ParseBackendError;

    /// Parses the textual backend form used by the service CLI and wire
    /// protocol: `serial`, `auto`, `parallel` (all cores) or
    /// `parallel:<threads>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "serial" => Ok(Backend::Serial),
            "auto" => Ok(Backend::Auto),
            "parallel" => Ok(Backend::Parallel { threads: 0 }),
            other => match other.strip_prefix("parallel:") {
                Some(t) => t
                    .parse::<usize>()
                    .map(|threads| Backend::Parallel { threads })
                    .map_err(|_| ParseBackendError),
                None => Err(ParseBackendError),
            },
        }
    }
}

/// Hardware parallelism, overridden by `PLANARTEST_THREADS` when it
/// holds a positive integer (the override may exceed the core count —
/// deliberately, so worker-pool paths can be exercised on small
/// machines; unparsable values fall back to the hardware count).
#[must_use]
pub fn auto_threads() -> usize {
    std::env::var("PLANARTEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// The engine interface the protocol drivers program against.
///
/// Implemented by the serial [`Engine`](crate::Engine) and by
/// [`ParallelEngine`]; drivers written against `EngineCore` (the
/// partition, Stage II, the applications, the baselines) run unchanged
/// on either backend. The lifetime `'g` is the graph borrow — logic
/// structs routinely hold `engine.graph()` across a `run_*` call, so the
/// trait preserves the graph's independence from `&self`.
pub trait EngineCore<'g> {
    /// The simulated network.
    fn graph(&self) -> &'g Graph;

    /// The network configuration.
    fn config(&self) -> SimConfig;

    /// Cumulative statistics over all runs (plus charged rounds).
    fn stats(&self) -> &SimStats;

    /// Adds explicitly charged rounds (substituted subroutines whose
    /// cost is taken from their paper's bound).
    fn charge_rounds(&mut self, rounds: u64);

    /// Runs aggregate-state [`NodeLogic`] to quiescence.
    ///
    /// Always executes on one thread (see the [module docs](self)); the
    /// result is identical on every backend.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on CONGEST violations or round-budget
    /// exhaustion.
    fn run_logic<L: NodeLogic>(
        &mut self,
        logic: &mut L,
        max_rounds: u64,
    ) -> Result<RunReport, SimError>;

    /// Runs a batch of independent [`NodeLogic`] instances to quiescence
    /// in lockstep — one shared round loop over per-instance mailbox
    /// lanes (see [`batch`]) — returning one result per instance,
    /// bit-for-bit identical to that many sequential
    /// [`run_logic`](EngineCore::run_logic) calls. Successful instances'
    /// reports are folded into [`stats`](EngineCore::stats) (one run
    /// each).
    ///
    /// Instance-level parallelism is backend-dependent: the serial
    /// engine steps the batch on one thread; the parallel engine fans
    /// whole instances across workers. `L: Send` is required because
    /// instances may migrate to worker threads (each stays on one
    /// thread for its entire run).
    fn run_logic_batch<L: NodeLogic + Send>(
        &mut self,
        logics: &mut [L],
        max_rounds: u64,
    ) -> Vec<Result<RunReport, SimError>>;

    /// Runs per-node-state [`ParallelNodeLogic`] to quiescence, in
    /// parallel when the backend allows it.
    ///
    /// `states[v]` is node `v`'s state; the slice length must equal the
    /// graph's node count.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on CONGEST violations or round-budget
    /// exhaustion.
    fn run_program<P: ParallelNodeLogic>(
        &mut self,
        program: &P,
        states: &mut [P::State],
        max_rounds: u64,
    ) -> Result<RunReport, SimError>;
}

impl<'g> EngineCore<'g> for crate::Engine<'g> {
    fn graph(&self) -> &'g Graph {
        crate::Engine::graph(self)
    }

    fn config(&self) -> SimConfig {
        crate::Engine::config(self)
    }

    fn stats(&self) -> &SimStats {
        crate::Engine::stats(self)
    }

    fn charge_rounds(&mut self, rounds: u64) {
        crate::Engine::charge_rounds(self, rounds);
    }

    fn run_logic<L: NodeLogic>(
        &mut self,
        logic: &mut L,
        max_rounds: u64,
    ) -> Result<RunReport, SimError> {
        self.run(logic, max_rounds)
    }

    fn run_logic_batch<L: NodeLogic + Send>(
        &mut self,
        logics: &mut [L],
        max_rounds: u64,
    ) -> Vec<Result<RunReport, SimError>> {
        // The serial engine steps the whole batch on one thread.
        let results = batch::execute_batch(self.graph(), self.config(), logics, max_rounds, 1);
        for report in results.iter().flatten() {
            self.absorb(*report);
        }
        results
    }

    fn run_program<P: ParallelNodeLogic>(
        &mut self,
        program: &P,
        states: &mut [P::State],
        max_rounds: u64,
    ) -> Result<RunReport, SimError> {
        // The serial engine always executes programs on one thread.
        let report =
            parallel::execute(self.graph(), self.config(), program, states, max_rounds, 1)?;
        self.absorb(report);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_thread_resolution() {
        assert_eq!(Backend::Serial.effective_threads(), 1);
        assert_eq!(Backend::Parallel { threads: 3 }.effective_threads(), 3);
        assert!(Backend::Parallel { threads: 0 }.effective_threads() >= 1);
        assert_eq!(Backend::default(), Backend::Auto);
    }

    #[test]
    fn auto_backend_applies_work_threshold() {
        // Tiny run: stays serial.
        assert_eq!(Backend::Auto.threads_for(100, 10), 1);
        // Small graph stays serial even under the tester's default
        // loose round budget (the budget is a bound, not the work).
        assert_eq!(Backend::Auto.threads_for(64, 100_000_000), 1);
        assert_eq!(
            Backend::Auto.threads_for(Backend::AUTO_MIN_NODES - 1, u64::MAX),
            1
        );
        // Wide graph with a trivial budget: nothing to amortize.
        assert_eq!(Backend::Auto.threads_for(1 << 20, 2), 1);
        // Wide *and* long: fans out to the hardware.
        assert_eq!(Backend::Auto.threads_for(1 << 20, 1 << 20), auto_threads());
        assert_eq!(
            Backend::Auto.threads_for(Backend::AUTO_MIN_NODES, 100_000_000),
            auto_threads()
        );
        // Fixed backends ignore the workload.
        assert_eq!(Backend::Serial.threads_for(1 << 20, 1 << 20), 1);
        assert_eq!(Backend::Parallel { threads: 3 }.threads_for(2, 1), 3);
        assert!(Backend::Auto.effective_threads() >= 1);
    }

    #[test]
    fn auto_backend_batch_thresholds_use_combined_width() {
        // One instance degrades to the single-run rule.
        assert_eq!(
            Backend::Auto.threads_for_batch(1, 64, 100_000_000),
            Backend::Auto.threads_for(64, 100_000_000)
        );
        // Many narrow instances together clear the width threshold that
        // each alone misses.
        let b = Backend::AUTO_MIN_NODES / 64;
        assert_eq!(Backend::Auto.threads_for(64, 100_000_000), 1);
        assert_eq!(
            Backend::Auto.threads_for_batch(b, 64, 100_000_000),
            auto_threads().min(b)
        );
        // A batch still too narrow or too short stays serial.
        assert_eq!(Backend::Auto.threads_for_batch(2, 64, 100_000_000), 1);
        assert_eq!(Backend::Auto.threads_for_batch(1 << 12, 1 << 12, 2), 1);
        // Fixed backends cap at the instance count (whole instances are
        // the unit of work).
        assert_eq!(
            Backend::Parallel { threads: 8 }.threads_for_batch(3, 2, 1),
            3
        );
        assert_eq!(Backend::Serial.threads_for_batch(5, 1 << 20, 1 << 20), 1);
    }

    #[test]
    fn backend_parses_from_text() {
        assert_eq!("serial".parse::<Backend>(), Ok(Backend::Serial));
        assert_eq!("auto".parse::<Backend>(), Ok(Backend::Auto));
        assert_eq!(
            "parallel".parse::<Backend>(),
            Ok(Backend::Parallel { threads: 0 })
        );
        assert_eq!(
            " parallel:4 ".parse::<Backend>(),
            Ok(Backend::Parallel { threads: 4 })
        );
        assert_eq!("parallel:x".parse::<Backend>(), Err(ParseBackendError));
        assert_eq!("fast".parse::<Backend>(), Err(ParseBackendError));
        assert!(ParseBackendError.to_string().contains("parallel"));
    }
}
