//! SWAR lane bitsets: the `woken` / wake-dedup state of batched runs.
//!
//! Under node-major batching ([`crate::runtime::batch`]) one node's `B`
//! instance lanes occupy one contiguous stripe of the per-lane state, so
//! the hot bookkeeping — "is this lane wake-flagged?", "clear every flag
//! this worker touched", "did anything survive the round?" — walks runs
//! of adjacent lanes. [`LaneBits`] stores those flags one **bit** per
//! lane and implements the bulk operations as explicit u64 SWAR
//! (SIMD-within-a-register): a word-at-a-time clear touches 64 lanes per
//! store, and the quiescence scan is a branch-free OR-reduction over the
//! words.
//!
//! Both the SWAR kernels and a portable per-bit scalar reference are
//! always compiled (`*_words` / `*_scalar`); the default dispatch picks
//! the SWAR path, and the `scalar-kernels` feature flips every dispatch
//! to the reference implementation so the whole test suite can run
//! against it (CI exercises both). The two paths are proven equivalent
//! by the `kernel_equivalence` proptests.

/// A fixed-length bitset over virtual lane ids (one bit per lane).
///
/// Replaces the historical `Vec<bool>` wake flags: 8× denser, and the
/// bulk clear/scan operations work a word (64 lanes) at a time.
#[derive(Debug, Clone)]
pub struct LaneBits {
    words: Vec<u64>,
    len: usize,
}

impl LaneBits {
    /// An all-clear bitset over `len` lanes.
    #[must_use]
    pub fn new(len: usize) -> Self {
        LaneBits {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset covers zero lanes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lane `i`'s flag.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// Sets lane `i`'s flag.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1 << (i & 63);
    }

    /// Clears lane `i`'s flag.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] &= !(1 << (i & 63));
    }

    /// Clears every flag — dispatched to the SWAR word-fill unless the
    /// `scalar-kernels` feature selects the per-bit reference.
    #[inline]
    pub fn clear_all(&mut self) {
        #[cfg(not(feature = "scalar-kernels"))]
        self.clear_all_words();
        #[cfg(feature = "scalar-kernels")]
        self.clear_all_scalar();
    }

    /// Whether any flag is set — dispatched to the branch-free SWAR
    /// OR-reduction unless the `scalar-kernels` feature selects the
    /// per-bit reference.
    #[inline]
    #[must_use]
    pub fn any_set(&self) -> bool {
        #[cfg(not(feature = "scalar-kernels"))]
        {
            self.any_set_words()
        }
        #[cfg(feature = "scalar-kernels")]
        {
            self.any_set_scalar()
        }
    }

    /// SWAR bulk clear: one store zeroes 64 lanes.
    #[doc(hidden)]
    pub fn clear_all_words(&mut self) {
        self.words.fill(0);
    }

    /// Scalar reference for [`clear_all`](LaneBits::clear_all): clears
    /// each lane individually.
    #[doc(hidden)]
    pub fn clear_all_scalar(&mut self) {
        for i in 0..self.len {
            self.clear(i);
        }
    }

    /// Branch-free SWAR scan: OR every word, compare once at the end.
    #[doc(hidden)]
    #[must_use]
    pub fn any_set_words(&self) -> bool {
        self.words.iter().fold(0u64, |acc, &w| acc | w) != 0
    }

    /// Scalar reference for [`any_set`](LaneBits::any_set): tests each
    /// lane individually.
    #[doc(hidden)]
    #[must_use]
    pub fn any_set_scalar(&self) -> bool {
        (0..self.len).any(|i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bits = LaneBits::new(130);
        assert_eq!(bits.len(), 130);
        assert!(!bits.is_empty());
        assert!(!bits.any_set());
        for i in [0, 63, 64, 129] {
            assert!(!bits.get(i));
            bits.set(i);
            assert!(bits.get(i));
        }
        assert!(bits.any_set());
        bits.clear(64);
        assert!(!bits.get(64));
        assert!(bits.get(63) && bits.get(129));
        bits.clear_all();
        assert!(!bits.any_set());
        assert!(LaneBits::new(0).is_empty());
    }

    #[test]
    fn swar_and_scalar_paths_agree() {
        // Deterministic pseudo-random patterns across word-boundary sizes.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for len in [1usize, 63, 64, 65, 127, 128, 200] {
            let mut a = LaneBits::new(len);
            let mut b = LaneBits::new(len);
            for i in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x & 1 == 1 {
                    a.set(i);
                    b.set(i);
                }
            }
            assert_eq!(a.any_set_words(), b.any_set_scalar(), "len={len}");
            a.clear_all_words();
            b.clear_all_scalar();
            for i in 0..len {
                assert_eq!(a.get(i), b.get(i), "len={len} lane={i}");
            }
            assert!(!a.any_set_words() && !b.any_set_scalar());
        }
    }
}
