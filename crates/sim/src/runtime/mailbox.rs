//! Flat arena mailboxes with deterministic delivery.
//!
//! One round's delivered messages live in a single recycled arena — a
//! flat `Vec<(src, Msg)>` grouped by destination — plus a per-node
//! `[start, end)` range table. Delivery is a two-pass counting sort of
//! the staged sends (which arrive in the documented stable `(src, dst)`
//! order: ascending active-node order, emission order within a node —
//! exactly what the serial engine produces):
//!
//! 1. count messages per destination, recording first-touch activations
//!    (a destination's first message activates it unless it is already
//!    wake-flagged — the serial engine's rule);
//! 2. prefix-sum the counts into arena ranges and place each send at its
//!    destination's cursor, preserving staged order within a
//!    destination.
//!
//! A node's inbox is then the slice `arena[start..end]` — no per-node
//! `Vec`, no take/recycle churn, and because the arena and the range
//! table are recycled across rounds, steady-state delivery allocates
//! nothing. The counting sort is stable, so the per-destination message
//! order (and with it the serial/parallel bit-for-bit equivalence) is
//! identical to the historical nested-`Vec` layout.

use planartest_graph::NodeId;

use crate::engine::{Msg, RunReport};
use crate::runtime::lanes::LaneBits;

/// One staged send: `(src, dst, payload)`.
pub type Staged = (NodeId, NodeId, Msg);

/// A node's inbox location in the delivery arena: `[start, end)`.
pub type InboxRange = (u32, u32);

/// The flat arena mailbox grid of one engine run.
#[derive(Debug)]
pub struct Mailboxes {
    /// This round's delivered `(src, msg)` pairs, grouped by destination.
    arena: Vec<(NodeId, Msg)>,
    /// `ranges[v]` = `v`'s `[start, end)` slice of `arena` this round.
    ranges: Vec<InboxRange>,
    /// Destinations with a non-empty range this round (cheap reset).
    touched: Vec<NodeId>,
}

impl Mailboxes {
    /// Creates empty mailboxes for an `n`-node network.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Mailboxes {
            arena: Vec::new(),
            ranges: vec![(0, 0); n],
            touched: Vec::new(),
        }
    }

    /// Delivers the staged sends of the previous round into the arena,
    /// recording message/word counts in `report` and appending every
    /// node that just became active (first message, not already
    /// wake-flagged) to `active` — exactly the serial engine's delivery
    /// semantics. The previous round's inboxes are discarded.
    pub fn deliver(
        &mut self,
        staged: &mut Vec<Staged>,
        woken: &LaneBits,
        active: &mut Vec<NodeId>,
        report: &mut RunReport,
    ) {
        // The degenerate one-instance batch: every destination is lane 0
        // of its node stripe, all counts land in the single report.
        self.deliver_lanes(staged, woken, active, std::slice::from_mut(report), 1);
    }

    /// Lane-aware [`deliver`](Mailboxes::deliver) for node-major batched
    /// execution: with `lanes` instances multiplexed, instance `i`'s node
    /// `v` is the virtual destination `v·lanes + i`, so each message's
    /// counts are attributed to `reports[dst % lanes]`.
    ///
    /// This is the delivery primitive behind instance-multiplexed
    /// execution ([`crate::runtime::batch`]): one node's `lanes` instance
    /// slots occupy one contiguous stripe of the range table and the
    /// `woken` bitset (the layout the SWAR kernels and sharding want),
    /// while the same stable counting sort still keys by `(node,
    /// instance)` — a lane only ever receives from its own instance, and
    /// only within-destination order is observable, so re-keying changes
    /// no delivered sequence. Activation, ordering and arena recycling
    /// semantics are identical to `deliver`.
    pub fn deliver_lanes(
        &mut self,
        staged: &mut Vec<Staged>,
        woken: &LaneBits,
        active: &mut Vec<NodeId>,
        reports: &mut [RunReport],
        lanes: usize,
    ) {
        for v in self.touched.drain(..) {
            self.ranges[v.index()] = (0, 0);
        }
        self.arena.clear();
        // Pass 1: count per destination (`end` temporarily holds the
        // count), recording activations in first-message order.
        for &(_, dst, ref msg) in staged.iter() {
            let report = &mut reports[dst.index() % lanes];
            report.messages += 1;
            report.words += msg.len() as u64;
            let r = &mut self.ranges[dst.index()];
            if r.1 == 0 {
                self.touched.push(dst);
                if !woken.get(dst.index()) {
                    active.push(dst);
                }
            }
            r.1 += 1;
        }
        // Pass 2: prefix-sum counts into ranges (layout in first-touch
        // order; only the within-destination order is observable).
        let mut cursor = 0u32;
        for &v in &self.touched {
            let r = &mut self.ranges[v.index()];
            let count = r.1;
            *r = (cursor, cursor);
            cursor += count;
        }
        // Pass 3: place each send at its destination's cursor (`end`
        // doubles as the cursor and finishes at the true end). Staged
        // order within a destination is preserved — a stable sort.
        self.arena
            .resize_with(staged.len(), || (NodeId::default(), Msg::ping()));
        for (src, dst, msg) in staged.drain(..) {
            let r = &mut self.ranges[dst.index()];
            self.arena[r.1 as usize] = (src, msg);
            r.1 += 1;
        }
    }

    /// Node `v`'s inbox for the current round (empty slice if nothing
    /// was delivered to it).
    #[inline]
    #[must_use]
    pub fn inbox(&self, v: NodeId) -> &[(NodeId, Msg)] {
        let (start, end) = self.ranges[v.index()];
        &self.arena[start as usize..end as usize]
    }

    /// Node `v`'s `[start, end)` arena range (for executors that ship
    /// ranges across threads instead of borrowing slices).
    #[inline]
    #[must_use]
    pub fn range(&self, v: NodeId) -> InboxRange {
        self.ranges[v.index()]
    }

    /// The whole delivery arena of the current round.
    #[inline]
    #[must_use]
    pub fn arena(&self) -> &[(NodeId, Msg)] {
        &self.arena
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> NodeId {
        NodeId::new(i as usize)
    }

    #[test]
    fn delivery_counts_and_activation() {
        let mut boxes = Mailboxes::new(4);
        let mut staged: Vec<Staged> = vec![
            (node(0), node(1), Msg::words(&[7, 8])),
            (node(2), node(1), Msg::ping()),
        ];
        let woken = LaneBits::new(4);
        let mut active = Vec::new();
        let mut report = RunReport::default();
        boxes.deliver(&mut staged, &woken, &mut active, &mut report);
        assert!(staged.is_empty());
        assert_eq!(report.messages, 2);
        assert_eq!(report.words, 2);
        // Node 1 activates once despite two messages.
        assert_eq!(active, vec![node(1)]);
        assert_eq!(
            boxes.inbox(node(1)),
            &[(node(0), Msg::words(&[7, 8])), (node(2), Msg::ping())]
        );
        assert!(boxes.inbox(node(0)).is_empty());
    }

    #[test]
    fn woken_nodes_not_reactivated_by_messages() {
        let mut boxes = Mailboxes::new(2);
        let mut staged: Vec<Staged> = vec![(node(0), node(1), Msg::ping())];
        let mut woken = LaneBits::new(2);
        woken.set(1); // node 1 already wake-flagged
        let mut active = Vec::new();
        let mut report = RunReport::default();
        boxes.deliver(&mut staged, &woken, &mut active, &mut report);
        assert!(active.is_empty(), "wake list owns node 1's activation");
        // Its inbox still holds the message.
        assert_eq!(boxes.inbox(node(1)).len(), 1);
    }

    #[test]
    fn interleaved_destinations_grouped_stably() {
        let mut boxes = Mailboxes::new(4);
        // Sends to 3 and 1 interleave; each inbox must keep staged order.
        let mut staged: Vec<Staged> = vec![
            (node(0), node(3), Msg::words(&[10])),
            (node(0), node(1), Msg::words(&[20])),
            (node(2), node(3), Msg::words(&[11])),
            (node(2), node(1), Msg::words(&[21])),
        ];
        let woken = LaneBits::new(4);
        let mut active = Vec::new();
        let mut report = RunReport::default();
        boxes.deliver(&mut staged, &woken, &mut active, &mut report);
        assert_eq!(active, vec![node(3), node(1)], "first-message order");
        assert_eq!(
            boxes.inbox(node(3)),
            &[(node(0), Msg::words(&[10])), (node(2), Msg::words(&[11]))]
        );
        assert_eq!(
            boxes.inbox(node(1)),
            &[(node(0), Msg::words(&[20])), (node(2), Msg::words(&[21]))]
        );
        let (s, e) = boxes.range(node(3));
        assert_eq!(&boxes.arena()[s as usize..e as usize], boxes.inbox(node(3)));
    }

    #[test]
    fn arena_is_recycled_across_rounds() {
        let mut boxes = Mailboxes::new(3);
        let mut ptrs = Vec::new();
        for round in 0..4u64 {
            let mut staged: Vec<Staged> = vec![(node(0), node(2), Msg::words(&[round]))];
            let woken = LaneBits::new(3);
            let mut active = Vec::new();
            let mut report = RunReport::default();
            boxes.deliver(&mut staged, &woken, &mut active, &mut report);
            assert_eq!(boxes.inbox(node(2)), &[(node(0), Msg::words(&[round]))]);
            ptrs.push(boxes.arena().as_ptr() as usize);
            // The previous round's inbox is gone.
            assert!(boxes.inbox(node(0)).is_empty());
        }
        // After the first round the same allocation cycles through.
        assert_eq!(ptrs[1], ptrs[2]);
        assert_eq!(ptrs[2], ptrs[3]);
    }
}
