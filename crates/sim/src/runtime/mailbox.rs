//! Double-buffered per-node mailboxes with deterministic delivery.
//!
//! Each round of the CONGEST loop alternates two buffer roles: the
//! **back** buffer receives the previous round's merged sends (in
//! stable `(src, dst)` order — ascending active-node order, emission
//! order within a node, exactly what the serial engine produces), and
//! the **front** buffers are the taken-out inboxes being *read* by the
//! current round's `round` hooks. Returning a front buffer through
//! [`Mailboxes::recycle`] feeds an allocation pool that delivery draws
//! from, so steady-state rounds allocate nothing.

use planartest_graph::NodeId;

use crate::engine::{Msg, RunReport};

/// One staged send: `(src, dst, payload)`.
pub type Staged = (NodeId, NodeId, Msg);

/// The double-buffered mailbox grid of one engine run.
#[derive(Debug)]
pub struct Mailboxes {
    /// Back buffer: per-node inboxes being filled for the next round.
    back: Vec<Vec<(NodeId, Msg)>>,
    /// Allocation pool of recycled front buffers.
    spare: Vec<Vec<(NodeId, Msg)>>,
}

impl Mailboxes {
    /// Creates empty mailboxes for an `n`-node network.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Mailboxes {
            back: vec![Vec::new(); n],
            spare: Vec::new(),
        }
    }

    /// Delivers the staged sends of the previous round into the back
    /// buffer, recording message/word counts in `report` and appending
    /// every node that just became active (first message, not already
    /// wake-flagged) to `active` — exactly the serial engine's delivery
    /// semantics.
    pub fn deliver(
        &mut self,
        staged: &mut Vec<Staged>,
        woken: &[bool],
        active: &mut Vec<NodeId>,
        report: &mut RunReport,
    ) {
        for (src, dst, msg) in staged.drain(..) {
            report.messages += 1;
            report.words += msg.len() as u64;
            let slot = &mut self.back[dst.index()];
            if slot.is_empty() {
                if !woken[dst.index()] {
                    active.push(dst);
                }
                if slot.capacity() == 0 {
                    if let Some(recycled) = self.spare.pop() {
                        *slot = recycled;
                    }
                }
            }
            slot.push((src, msg));
        }
    }

    /// Moves node `v`'s freshly delivered inbox to the front (leaving
    /// the back slot empty for the next round's delivery).
    #[must_use]
    pub fn take_inbox(&mut self, v: NodeId) -> Vec<(NodeId, Msg)> {
        std::mem::take(&mut self.back[v.index()])
    }

    /// Returns a front buffer to the allocation pool.
    pub fn recycle(&mut self, mut inbox: Vec<(NodeId, Msg)>) {
        if inbox.capacity() > 0 {
            inbox.clear();
            self.spare.push(inbox);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> NodeId {
        NodeId::new(i as usize)
    }

    #[test]
    fn delivery_counts_and_activation() {
        let mut boxes = Mailboxes::new(4);
        let mut staged: Vec<Staged> = vec![
            (node(0), node(1), Msg::words(&[7, 8])),
            (node(2), node(1), Msg::ping()),
        ];
        let woken = vec![false; 4];
        let mut active = Vec::new();
        let mut report = RunReport::default();
        boxes.deliver(&mut staged, &woken, &mut active, &mut report);
        assert!(staged.is_empty());
        assert_eq!(report.messages, 2);
        assert_eq!(report.words, 2);
        // Node 1 activates once despite two messages.
        assert_eq!(active, vec![node(1)]);
        let inbox = boxes.take_inbox(node(1));
        assert_eq!(
            inbox,
            vec![(node(0), Msg::words(&[7, 8])), (node(2), Msg::ping())]
        );
        assert!(
            boxes.take_inbox(node(1)).is_empty(),
            "taking empties the slot"
        );
        boxes.recycle(inbox);
    }

    #[test]
    fn woken_nodes_not_reactivated_by_messages() {
        let mut boxes = Mailboxes::new(2);
        let mut staged: Vec<Staged> = vec![(node(0), node(1), Msg::ping())];
        let woken = vec![false, true]; // node 1 already wake-flagged
        let mut active = Vec::new();
        let mut report = RunReport::default();
        boxes.deliver(&mut staged, &woken, &mut active, &mut report);
        assert!(active.is_empty(), "wake list owns node 1's activation");
        // Its inbox still holds the message.
        assert_eq!(boxes.take_inbox(node(1)).len(), 1);
    }

    #[test]
    fn recycled_buffers_are_reused() {
        let mut boxes = Mailboxes::new(3);
        let mut ptrs = Vec::new();
        for round in 0..4u64 {
            let mut staged: Vec<Staged> = vec![(node(0), node(2), Msg::words(&[round]))];
            let woken = vec![false; 3];
            let mut active = Vec::new();
            let mut report = RunReport::default();
            boxes.deliver(&mut staged, &woken, &mut active, &mut report);
            let inbox = boxes.take_inbox(node(2));
            assert_eq!(inbox, vec![(node(0), Msg::words(&[round]))]);
            ptrs.push(inbox.as_ptr() as usize);
            boxes.recycle(inbox);
        }
        // After the first round the same allocation cycles through.
        assert_eq!(ptrs[1], ptrs[2]);
        assert_eq!(ptrs[2], ptrs[3]);
    }
}
