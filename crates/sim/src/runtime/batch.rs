//! Instance-multiplexed execution: drive batches of independent
//! protocol runs through one executor.
//!
//! Monte-Carlo testers get their confidence from many *independent*
//! protocol instances (acceptance trials, sweep points, per-seed
//! sub-protocol runs). Executing them one [`Engine::run`](crate::Engine)
//! at a time pays the full per-run fixed cost — allocation, setup, and
//! (on the pool) one barrier per instance per round. [`run_batch`]
//! instead serves `B` independent [`NodeLogic`] instances over the
//! *same* [`Graph`] as one multiplexed batch: on the worker pool they
//! step in lockstep through one shared round loop (every barrier
//! carries `B×` more work); on a single worker they run consecutively
//! over one set of recycled arenas (the per-run setup cost is paid
//! once).
//!
//! # Execution scheme — pooled path
//!
//! On the worker pool, instance `i`'s node `v` is mapped to the
//! **node-major virtual lane id** `v·B + i`: one node's `B` instance
//! lanes occupy one contiguous stripe of the range table and the
//! [`LaneBits`] wake bitset (the layout the SWAR bookkeeping kernels —
//! and, down the road, sharding and out-of-core CSR — operate on). The
//! flat-arena counting sort ([`Mailboxes::deliver_lanes`]) keys
//! deliveries by `(node, instance)`; since a lane only ever receives
//! from its own instance and the sort is stable within a lane, the
//! re-keying changes no delivered sequence. The shared sorted active
//! list comes out node-major, but restricted to any one instance it is
//! still ascending node order — exactly the per-instance serial order —
//! and per-instance message accounting is the lane index `dst % B`.
//! Each worker stores the `edge_stamp` epochs of its owned instances
//! edge-major (`slot·owned + local`, the same contiguous-stripe shape)
//! and its wake-dedup flags as per-instance `LaneBits`, cleared a word
//! (64 lanes) at a time. Every channel barrier carries all instances'
//! node sweeps at once — `B×` more work per barrier than a single run
//! gives it.
//!
//! # Execution scheme — serial path
//!
//! Instances are *independent*: nothing semantically requires stepping
//! them in lockstep, and on a single worker a lockstep interleave would
//! only trade cache locality (each round touches every instance's
//! state) for a shared loop it gains nothing from. The serial path
//! therefore runs the instances **consecutively over one set of
//! recycled arenas** — edge stamps, wake flags, the mailbox arena and
//! the active list persist in a thread-local scratch that outlives the
//! batch, so repeated batches over the same graph (a [`TrialRunner`]
//! sweep, the tester's per-seed sub-protocols) re-enter warm arenas
//! with **zero** per-instance re-zeroing: edge stamps use monotone
//! epoch bases (a stale stamp can never equal a fresh one) and the wake
//! bitset is restored clear on every exit path of the reference loop.
//!
//! [`TrialRunner`]: crate::runtime::TrialRunner
//! [`LaneBits`]: crate::runtime::lanes::LaneBits
//!
//! # Round accounting: semantic rounds are per-instance
//!
//! Only wall-clock collapses under batching — the CONGEST accounting
//! does not. Every instance's [`RunReport::rounds`] is *its own* count
//! (on the pooled path an instance that quiesces simply drops out of
//! the shared active set; the batch round at which it last acted is by
//! construction its own round number, since all instances start at
//! round 0 together). The per-instance `RunReport`s — rounds, messages,
//! words — and any per-instance [`SimError`] are **bit-for-bit
//! identical** to what `B` sequential [`Engine::run`]s produce, on both
//! paths (enforced by the `runtime_equivalence` proptest suite). An
//! instance that violates the CONGEST model fails alone: its staged
//! sends from the aborted sweep are discarded (the sequential engine
//! would never have delivered them) and the remaining instances
//! continue unperturbed.
//!
//! # Parallelism axis
//!
//! Aggregate-state [`NodeLogic`] hands every node the same `&mut self`,
//! so a single instance is inherently sequential — but *instances* are
//! independent, which makes the batch the natural parallel axis. The
//! pooled path assigns instances to workers by fixed affinity
//! (`instance % threads`), keeping each instance's node sweep on one
//! thread (preserving its serial order and error semantics) while
//! different instances run concurrently. Cross-instance merge order
//! does not matter for delivery: a lane only ever receives messages
//! from its own instance, and the counting sort is stable within a
//! lane.
//!
//! [`Engine::run`]: crate::Engine::run

use std::cell::RefCell;
use std::sync::mpsc::{channel, Receiver, Sender};

use planartest_graph::{Graph, NodeId};

use crate::engine::{LaneCtx, NodeLogic, Outbox, RunReport, SimConfig, SimError};
use crate::runtime::lanes::LaneBits;
use crate::runtime::mailbox::{InboxRange, Mailboxes, Staged};
use crate::runtime::parallel::{finish_active, merge_wake, ArenaPtr};
use crate::stats::SimStats;

/// Runs `B` independent [`NodeLogic`] instances over `g` in lockstep,
/// returning one `Result<RunReport, SimError>` per instance —
/// bit-for-bit identical to what `B` sequential
/// [`Engine::run`](crate::Engine::run)s produce (see the
/// [module docs](self) for the round-accounting semantics).
///
/// The worker count is resolved from `cfg.backend` via
/// [`Backend::threads_for_batch`](crate::runtime::Backend::threads_for_batch);
/// parallelism is across instances, which is why `L: Send` is required
/// even though each individual instance stays on one thread.
pub fn run_batch<L: NodeLogic + Send>(
    g: &Graph,
    cfg: SimConfig,
    logics: &mut [L],
    max_rounds: u64,
) -> Vec<Result<RunReport, SimError>> {
    let threads = cfg
        .backend
        .threads_for_batch(logics.len(), g.n(), max_rounds);
    execute_batch(g, cfg, logics, max_rounds, threads)
}

/// The batch façade mirroring [`Engine`](crate::Engine): owns cumulative
/// [`SimStats`] across batch runs so multi-phase batched algorithms can
/// account their totals on one object.
///
/// # Example
///
/// ```
/// use planartest_graph::{Graph, NodeId};
/// use planartest_sim::{BatchEngine, Msg, NodeLogic, Outbox, SimConfig};
///
/// /// Node 0 floods a token; `seen` is per-instance aggregate state.
/// struct Flood {
///     hops: u64,
///     seen: Vec<bool>,
/// }
/// impl NodeLogic for Flood {
///     fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
///         if node.index() == 0 {
///             self.seen[0] = true;
///             out.send_all(Msg::words(&[self.hops]));
///         }
///     }
///     fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
///         if !self.seen[node.index()] && !inbox.is_empty() {
///             self.seen[node.index()] = true;
///             out.send_all(Msg::words(&[self.hops]));
///         }
///     }
/// }
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let mut logics: Vec<Flood> = (0..3)
///     .map(|i| Flood { hops: i, seen: vec![false; 4] })
///     .collect();
/// let mut batch = BatchEngine::new(&g, SimConfig::default());
/// let reports = batch.run(&mut logics, 100);
/// assert_eq!(reports.len(), 3);
/// for r in &reports {
///     assert_eq!(r.as_ref().unwrap().rounds, 4);
/// }
/// assert_eq!(batch.stats().runs, 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct BatchEngine<'g> {
    g: &'g Graph,
    cfg: SimConfig,
    /// Fixed worker count; `None` resolves per batch from the backend.
    threads: Option<usize>,
    stats: SimStats,
}

impl<'g> BatchEngine<'g> {
    /// Creates a batch engine over `g`; the worker count comes from
    /// `cfg.backend` (resolved per batch for `Auto`).
    #[must_use]
    pub fn new(g: &'g Graph, cfg: SimConfig) -> Self {
        BatchEngine {
            g,
            cfg,
            threads: None,
            stats: SimStats::default(),
        }
    }

    /// Overrides the worker count (`0` = hardware parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(if threads == 0 {
            crate::runtime::auto_threads()
        } else {
            threads
        });
        self
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.cfg
    }

    /// Cumulative statistics over all completed instances.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Adds explicitly charged rounds.
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.stats.charged_rounds += rounds;
    }

    /// Runs the instances to quiescence in lockstep; successful
    /// instances' reports are folded into [`stats`](BatchEngine::stats).
    pub fn run<L: NodeLogic + Send>(
        &mut self,
        logics: &mut [L],
        max_rounds: u64,
    ) -> Vec<Result<RunReport, SimError>> {
        let threads = self.threads.unwrap_or_else(|| {
            self.cfg
                .backend
                .threads_for_batch(logics.len(), self.g.n(), max_rounds)
        });
        let results = execute_batch(self.g, self.cfg, logics, max_rounds, threads);
        for report in results.iter().flatten() {
            self.stats.absorb(*report);
        }
        results
    }
}

/// Executes the batch with an explicit worker count (1 = inline).
pub(crate) fn execute_batch<L: NodeLogic + Send>(
    g: &Graph,
    cfg: SimConfig,
    logics: &mut [L],
    max_rounds: u64,
    threads: usize,
) -> Vec<Result<RunReport, SimError>> {
    let b = logics.len();
    if b == 0 {
        return Vec::new();
    }
    assert!(
        b.saturating_mul(g.n().max(1)) <= u32::MAX as usize,
        "batch too wide: {b} instances x {} nodes exceeds the virtual id space",
        g.n()
    );
    if threads <= 1 || b <= 1 {
        batch_consecutive(g, cfg, logics, max_rounds)
    } else {
        batch_pool(g, cfg, logics, max_rounds, threads.min(b))
    }
}

/// Per-instance progress tracking shared by both batch loops.
struct BatchState {
    /// Per-instance semantic message/word tallies (lane-attributed by
    /// [`Mailboxes::deliver_lanes`]); `rounds` frozen at finalization.
    reports: Vec<RunReport>,
    /// `Some` once an instance has quiesced or failed.
    outcome: Vec<Option<Result<RunReport, SimError>>>,
}

impl BatchState {
    fn new(b: usize, backend: crate::runtime::Backend) -> Self {
        BatchState {
            reports: vec![
                RunReport {
                    backend,
                    ..RunReport::default()
                };
                b
            ],
            outcome: vec![None; b],
        }
    }

    /// Freezes instance `i`'s report at its final (own) round count.
    fn quiesce(&mut self, i: usize, round: u64) {
        debug_assert!(self.outcome[i].is_none(), "instance settled twice");
        let mut report = self.reports[i];
        report.rounds = round;
        self.outcome[i] = Some(Ok(report));
    }

    /// Records instance `i`'s CONGEST violation.
    fn fail(&mut self, i: usize, e: SimError) {
        debug_assert!(self.outcome[i].is_none(), "instance settled twice");
        self.outcome[i] = Some(Err(e));
    }

    /// Every still-live instance exceeds the round budget together (each
    /// would have hit the same limit sequentially).
    fn round_limit(&mut self, limit: u64) {
        for slot in &mut self.outcome {
            if slot.is_none() {
                *slot = Some(Err(SimError::RoundLimitExceeded { limit }));
            }
        }
    }

    fn into_results(self) -> Vec<Result<RunReport, SimError>> {
        self.outcome
            .into_iter()
            .map(|o| o.expect("every instance settles before the loop exits"))
            .collect()
    }
}

/// The recycled arenas of the consecutive batch path, persisted in a
/// thread-local so *successive batches* — not just successive instances
/// — reuse one warm allocation set. [`TrialRunner`] sweeps re-enter
/// `run_batch` thousands of times over the same graph from the same
/// (scoped-pool or main) threads, and every re-entry finds these
/// buffers already sized.
///
/// No inter-instance or inter-batch re-zeroing happens at all:
/// `stamp_base` carries the monotone edge-stamp epoch across runs (a
/// stale stamp can never equal a fresh epoch), and the reference loop
/// restores `woken`/`staged`/`wake` to their clear state on every exit
/// path. A batch over a *different* graph shape simply rebuilds the
/// scratch.
///
/// [`TrialRunner`]: crate::runtime::TrialRunner
struct BatchScratch {
    /// Graph shape this scratch is sized for: `(n, m)`.
    key: (usize, usize),
    edge_stamp: Vec<u64>,
    woken: LaneBits,
    staged: Vec<Staged>,
    wake: Vec<NodeId>,
    active: Vec<NodeId>,
    boxes: Mailboxes,
    /// Monotone edge-stamp epoch base (see
    /// [`run_serial_recycled`](crate::engine)).
    stamp_base: u64,
}

impl BatchScratch {
    fn for_graph(g: &Graph) -> Self {
        BatchScratch {
            key: (g.n(), g.m()),
            edge_stamp: vec![0; 2 * g.m()],
            woken: LaneBits::new(g.n()),
            staged: Vec::new(),
            wake: Vec::new(),
            active: Vec::new(),
            boxes: Mailboxes::new(g.n()),
            stamp_base: 0,
        }
    }
}

thread_local! {
    /// One recycled scratch per thread; `None` until first use (and
    /// while a batch on this thread has it checked out, which makes
    /// re-entrant batches allocate fresh instead of aliasing).
    static BATCH_SCRATCH: RefCell<Option<BatchScratch>> = const { RefCell::new(None) };
}

/// The single-worker batch path: each instance runs to quiescence in
/// turn — bit-for-bit the reference serial loop — over the thread's
/// recycled [`BatchScratch`] (see the [module docs](self) for why
/// consecutive beats lockstep on one worker).
fn batch_consecutive<L: NodeLogic>(
    g: &Graph,
    cfg: SimConfig,
    logics: &mut [L],
    max_rounds: u64,
) -> Vec<Result<RunReport, SimError>> {
    let key = (g.n(), g.m());
    let mut scratch = match BATCH_SCRATCH.with(|cell| cell.borrow_mut().take()) {
        Some(s) if s.key == key => s,
        _ => BatchScratch::for_graph(g),
    };
    let results = logics
        .iter_mut()
        .map(|logic| {
            debug_assert!(
                !scratch.woken.any_set() && scratch.staged.is_empty() && scratch.wake.is_empty(),
                "recycled scratch must arrive clean"
            );
            // The reference loop itself, re-entered per instance — a
            // batch of one is structurally Engine::run, not a copy.
            crate::engine::run_serial_recycled(
                g,
                cfg,
                logic,
                max_rounds,
                &mut scratch.edge_stamp,
                &mut scratch.woken,
                &mut scratch.staged,
                &mut scratch.wake,
                &mut scratch.active,
                &mut scratch.boxes,
                &mut scratch.stamp_base,
            )
        })
        .collect();
    BATCH_SCRATCH.with(|cell| *cell.borrow_mut() = Some(scratch));
    results
}

/// Shared `&mut`-per-instance access to the logic slice.
///
/// Safety protocol: instance `i` is owned by worker `i % threads` for
/// the whole run (fixed affinity), so all `&mut` references derived
/// from this pointer are disjoint across workers, and the coordinator
/// never touches the slice while a round is in flight (it blocks on
/// every worker's result).
struct LogicsPtr<L>(*mut L);

impl<L> Clone for LogicsPtr<L> {
    fn clone(&self) -> Self {
        LogicsPtr(self.0)
    }
}

unsafe impl<L: Send> Send for LogicsPtr<L> {}
unsafe impl<L: Send> Sync for LogicsPtr<L> {}

/// One instance's sweep segment this round: `(instance, nodes)`, where
/// `None` inbox ranges encode the round-0 `init` sweep.
type Segment = (usize, Vec<(NodeId, Option<InboxRange>)>);

struct BatchWorkItem {
    round: u64,
    arena: ArenaPtr,
    segments: Vec<Segment>,
}

struct BatchWorkResult {
    /// Staged sends with virtual destinations; within-instance order is
    /// the serial order (cross-instance order is immaterial — lanes are
    /// instance-private).
    staged: Vec<Staged>,
    /// Wake requests (virtual ids).
    wake: Vec<NodeId>,
    /// Instances whose sweep raised a CONGEST violation this round.
    failures: Vec<(usize, SimError)>,
    /// Instances that were active this round and produced nothing —
    /// they quiesce at this round.
    quiesced: Vec<usize>,
}

/// The pooled batch loop: persistent scoped workers, fixed
/// instance-to-worker affinity, channel-barrier rounds.
fn batch_pool<L: NodeLogic + Send>(
    g: &Graph,
    cfg: SimConfig,
    logics: &mut [L],
    max_rounds: u64,
    threads: usize,
) -> Vec<Result<RunReport, SimError>> {
    let b = logics.len();
    let n = g.n();
    let ptr = LogicsPtr(logics.as_mut_ptr());
    std::thread::scope(|scope| {
        let mut task_txs: Vec<Sender<BatchWorkItem>> = Vec::with_capacity(threads);
        let mut result_rxs: Vec<Receiver<BatchWorkResult>> = Vec::with_capacity(threads);
        for w in 0..threads {
            let (task_tx, task_rx) = channel::<BatchWorkItem>();
            let (result_tx, result_rx) = channel::<BatchWorkResult>();
            task_txs.push(task_tx);
            result_rxs.push(result_rx);
            let ptr = ptr.clone();
            // Worker w owns instances w, w + threads, w + 2·threads, …
            let owned = (b - w).div_ceil(threads);
            scope.spawn(move || {
                batch_worker_loop(g, cfg, &ptr, b, owned, threads, &task_rx, &result_tx)
            });
        }

        let mut staged: Vec<Staged> = Vec::new();
        let mut wake: Vec<NodeId> = Vec::new();
        let mut woken = LaneBits::new(b * n);
        let mut state = BatchState::new(b, crate::runtime::Backend::Parallel { threads });
        let mut boxes = Mailboxes::new(b * n);

        // Dispatches one round's segments (already grouped per worker),
        // merges the results in worker order, and settles failed /
        // quiesced instances. Workers with no active instances this
        // round are left blocked on their task channel — no message,
        // no barrier participation.
        let dispatch = |round: u64,
                        arena: ArenaPtr,
                        per_worker: Vec<Vec<Segment>>,
                        staged: &mut Vec<Staged>,
                        woken: &mut LaneBits,
                        wake: &mut Vec<NodeId>,
                        state: &mut BatchState| {
            let mut dispatched: Vec<usize> = Vec::with_capacity(threads);
            for (w, segments) in per_worker.into_iter().enumerate() {
                if segments.is_empty() {
                    continue;
                }
                task_txs[w]
                    .send(BatchWorkItem {
                        round,
                        arena,
                        segments,
                    })
                    .expect("worker alive");
                dispatched.push(w);
            }
            for w in dispatched {
                let mut result = result_rxs[w].recv().expect("worker alive");
                staged.append(&mut result.staged);
                merge_wake(&mut result.wake, woken, wake);
                for (i, e) in result.failures {
                    state.fail(i, e);
                }
                for i in result.quiesced {
                    state.quiesce(i, round);
                }
            }
        };

        // Round 0: every instance's full init sweep, on its owner.
        let init_segments: Vec<Vec<Segment>> = (0..threads)
            .map(|w| {
                (w..b)
                    .step_by(threads)
                    .map(|i| (i, g.nodes().map(|v| (v, None)).collect()))
                    .collect()
            })
            .collect();
        dispatch(
            0,
            ArenaPtr(boxes.arena().as_ptr()),
            init_segments,
            &mut staged,
            &mut woken,
            &mut wake,
            &mut state,
        );

        let mut active: Vec<NodeId> = Vec::new();
        // Per-instance sweep buffers, recycled across rounds (an
        // instance's Vec is shipped to its worker and replaced by an
        // empty one; reuse kicks in once capacities stabilize).
        let mut per_instance: Vec<Vec<(NodeId, Option<InboxRange>)>> =
            (0..b).map(|_| Vec::new()).collect();
        let mut round: u64 = 0;
        while !staged.is_empty() || !wake.is_empty() {
            round += 1;
            if round > max_rounds {
                state.round_limit(max_rounds);
                return state.into_results();
            }
            active.clear();
            boxes.deliver_lanes(&mut staged, &woken, &mut active, &mut state.reports, b);
            finish_active(&mut active, &mut wake, &mut woken);
            // Unzip the node-major active list (sorted by (node,
            // instance)) into per-instance segments: restricted to one
            // instance the traversal order is ascending node order —
            // exactly the serial sweep — and each segment is routed to
            // its instance's owning worker.
            for &vv in &active {
                let id = vv.index();
                per_instance[id % b].push((NodeId::new(id / b), Some(boxes.range(vv))));
            }
            let mut per_worker: Vec<Vec<Segment>> = (0..threads).map(|_| Vec::new()).collect();
            for (i, nodes) in per_instance.iter_mut().enumerate() {
                if !nodes.is_empty() {
                    per_worker[i % threads].push((i, std::mem::take(nodes)));
                }
            }
            dispatch(
                round,
                ArenaPtr(boxes.arena().as_ptr()),
                per_worker,
                &mut staged,
                &mut woken,
                &mut wake,
                &mut state,
            );
        }
        state.into_results()
    })
}

#[allow(clippy::too_many_arguments)]
fn batch_worker_loop<L: NodeLogic>(
    g: &Graph,
    cfg: SimConfig,
    logics: &LogicsPtr<L>,
    b: usize,
    owned: usize,
    threads: usize,
    tasks: &Receiver<BatchWorkItem>,
    results: &Sender<BatchWorkResult>,
) {
    let n = g.n();
    let limit = cfg.max_words_per_message;
    // Worker-local per-instance state for the owned instances only.
    // Under the fixed `w, w + threads, w + 2·threads, …` affinity,
    // instance `i`'s local stripe is simply `i / threads`. Edge stamps
    // are stored edge-major (`slot·owned + stripe`): one edge
    // direction's owned-instance epochs sit in one contiguous run, the
    // node-major shape on the edge axis.
    let mut edge_stamp: Vec<u64> = vec![0; 2 * g.m() * owned];
    // Per-call wake-dedup flags (scratch: bulk-cleared after every
    // round, a word at a time).
    let mut flags: Vec<LaneBits> = (0..owned).map(|_| LaneBits::new(n)).collect();
    let mut dirty: Vec<bool> = vec![false; owned];
    let mut staged: Vec<Staged> = Vec::new();
    let mut wake: Vec<NodeId> = Vec::new();
    while let Ok(BatchWorkItem {
        round,
        arena,
        segments,
    }) = tasks.recv()
    {
        let mut failures = Vec::new();
        let mut quiesced = Vec::new();
        for (i, nodes) in segments {
            let stripe = i / threads;
            let (smark, wmark) = (staged.len(), wake.len());
            let mut error: Option<SimError> = None;
            let lane = LaneCtx {
                lane_stride: b,
                lane_off: i,
                stamp_stride: owned,
                stamp_off: stripe,
                stamp: round + 1,
            };
            for (v, range) in nodes {
                // SAFETY: see `LogicsPtr` — instance i is owned by this
                // worker alone, and the coordinator blocks on our result
                // before touching the slice again.
                let logic = unsafe { &mut *logics.0.add(i) };
                // SAFETY: see `ArenaPtr` — the arena is immutable and
                // alive until the coordinator receives this round's
                // result, and ranges partition its initialized length.
                let inbox = range.map(|(start, end)| unsafe {
                    std::slice::from_raw_parts(arena.0.add(start as usize), (end - start) as usize)
                });
                let mut out = Outbox::assemble(
                    v,
                    g,
                    limit,
                    round,
                    lane,
                    &mut staged,
                    &mut edge_stamp,
                    &mut wake,
                    &mut flags[stripe],
                    &mut error,
                );
                match inbox {
                    None => logic.init(v, &mut out),
                    Some(inbox) => logic.round(v, inbox, &mut out),
                }
                if error.is_some() {
                    break;
                }
            }
            if let Some(e) = error {
                // Within a round each instance sweeps once, so this
                // stripe's flags are exactly the wake entries staged
                // since `wmark`: drop both wholesale (word-at-a-time).
                staged.truncate(smark);
                wake.truncate(wmark);
                flags[stripe].clear_all();
                failures.push((i, e));
            } else if staged.len() == smark && wake.len() == wmark {
                quiesced.push(i);
            }
        }
        // Reset the surviving wake-dedup flags before shipping the
        // batch: mark the stripes that woke anything, then bulk-clear
        // each dirty stripe a word (64 lanes) at a time.
        let staged_out = std::mem::take(&mut staged);
        let wake_out = std::mem::take(&mut wake);
        for &vv in &wake_out {
            dirty[(vv.index() % b) / threads] = true;
        }
        for (stripe, d) in dirty.iter_mut().enumerate() {
            if *d {
                flags[stripe].clear_all();
                *d = false;
            }
        }
        if results
            .send(BatchWorkResult {
                staged: staged_out,
                wake: wake_out,
                failures,
                quiesced,
            })
            .is_err()
        {
            return; // coordinator gone (round limit); shut down
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Msg};

    fn path(k: usize) -> Graph {
        Graph::from_edges(k, (0..k - 1).map(|i| (i, i + 1))).unwrap()
    }

    /// Floods from a configurable source; run length depends on the
    /// source position, so instances drop out of the batch at
    /// different rounds.
    struct FloodFrom {
        src: usize,
        seen: Vec<bool>,
    }
    impl FloodFrom {
        fn new(src: usize, n: usize) -> Self {
            FloodFrom {
                src,
                seen: vec![false; n],
            }
        }
    }
    impl NodeLogic for FloodFrom {
        fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
            if node.index() == self.src {
                self.seen[self.src] = true;
                out.send_all(Msg::words(&[1]));
            }
        }
        fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
            if !self.seen[node.index()] && !inbox.is_empty() {
                self.seen[node.index()] = true;
                out.send_all(Msg::words(&[1]));
            }
        }
    }

    fn sequential_baseline(g: &Graph, srcs: &[usize]) -> Vec<(RunReport, Vec<bool>)> {
        srcs.iter()
            .map(|&s| {
                let mut engine = Engine::new(g, SimConfig::default());
                let mut logic = FloodFrom::new(s, g.n());
                let report = engine.run(&mut logic, 10_000).unwrap();
                (report, logic.seen)
            })
            .collect()
    }

    #[test]
    fn early_dropout_keeps_per_instance_rounds() {
        let g = path(12);
        let srcs = [0usize, 5, 11, 6];
        let expected = sequential_baseline(&g, &srcs);
        for threads in [1, 2, 3] {
            let mut logics: Vec<FloodFrom> =
                srcs.iter().map(|&s| FloodFrom::new(s, g.n())).collect();
            let reports = execute_batch(&g, SimConfig::default(), &mut logics, 10_000, threads);
            for (k, report) in reports.iter().enumerate() {
                let report = report.as_ref().unwrap();
                assert_eq!(*report, expected[k].0, "instance {k} threads {threads}");
                assert_eq!(logics[k].seen, expected[k].1, "instance {k}");
            }
            // The source in the middle finishes sooner than the corner
            // sources: per-instance round counts genuinely differ.
            assert_ne!(
                reports[0].as_ref().unwrap().rounds,
                reports[3].as_ref().unwrap().rounds
            );
        }
    }

    #[test]
    fn failing_instance_does_not_disturb_the_rest() {
        struct MaybeViolate {
            violate: bool,
            inner: FloodFrom,
        }
        impl NodeLogic for MaybeViolate {
            fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
                self.inner.init(node, out);
            }
            fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
                if self.violate && node.index() == 3 {
                    out.send(NodeId::new(4), Msg::words(&[0; 9])); // over bandwidth
                    return;
                }
                self.inner.round(node, inbox, out);
            }
        }
        let g = path(8);
        let clean = sequential_baseline(&g, &[0]);
        for threads in [1, 2] {
            let mut logics = vec![
                MaybeViolate {
                    violate: false,
                    inner: FloodFrom::new(0, 8),
                },
                MaybeViolate {
                    violate: true,
                    inner: FloodFrom::new(0, 8),
                },
                MaybeViolate {
                    violate: false,
                    inner: FloodFrom::new(0, 8),
                },
            ];
            let reports = execute_batch(&g, SimConfig::default(), &mut logics, 100, threads);
            assert_eq!(*reports[0].as_ref().unwrap(), clean[0].0);
            assert!(matches!(
                reports[1],
                Err(SimError::MessageTooLarge { words: 9, .. })
            ));
            assert_eq!(*reports[2].as_ref().unwrap(), clean[0].0);
            assert_eq!(logics[0].inner.seen, clean[0].1);
            assert_eq!(logics[2].inner.seen, clean[0].1);
        }
    }

    #[test]
    fn round_limit_hits_every_live_instance() {
        struct PingPong;
        impl NodeLogic for PingPong {
            fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
                if node.index() == 0 {
                    out.send(NodeId::new(1), Msg::ping());
                }
            }
            fn round(&mut self, _: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
                for (from, _) in inbox {
                    out.send(*from, Msg::ping());
                }
            }
        }
        let g = path(2);
        for threads in [1, 2] {
            let mut logics = vec![PingPong, PingPong];
            let reports = execute_batch(&g, SimConfig::default(), &mut logics, 9, threads);
            for r in reports {
                assert_eq!(r.unwrap_err(), SimError::RoundLimitExceeded { limit: 9 });
            }
        }
    }

    #[test]
    fn empty_and_silent_batches() {
        struct Silent;
        impl NodeLogic for Silent {
            fn init(&mut self, _: NodeId, _: &mut Outbox<'_>) {}
            fn round(&mut self, _: NodeId, _: &[(NodeId, Msg)], _: &mut Outbox<'_>) {}
        }
        let g = path(3);
        let mut none: Vec<Silent> = Vec::new();
        assert!(run_batch(&g, SimConfig::default(), &mut none, 10).is_empty());
        let mut some = vec![Silent, Silent];
        let reports = run_batch(&g, SimConfig::default(), &mut some, 10);
        for r in reports {
            assert_eq!(r.unwrap().rounds, 0);
        }
    }

    #[test]
    fn batch_engine_accumulates_stats() {
        let g = path(6);
        let mut batch = BatchEngine::new(&g, SimConfig::default()).with_threads(2);
        let mut logics: Vec<FloodFrom> = (0..3).map(|s| FloodFrom::new(s, 6)).collect();
        let reports = batch.run(&mut logics, 100);
        let total_msgs: u64 = reports.iter().map(|r| r.as_ref().unwrap().messages).sum();
        assert_eq!(batch.stats().messages, total_msgs);
        assert_eq!(batch.stats().runs, 3);
        batch.charge_rounds(5);
        assert_eq!(batch.stats().charged_rounds, 5);
        assert_eq!(batch.graph().n(), 6);
        assert_eq!(batch.config(), SimConfig::default());
    }
}
