//! Trial-level parallelism: fan independent seeded simulations across
//! cores.
//!
//! Monte-Carlo acceptance sweeps, ε/n sweeps and equivalence checks all
//! run many *independent* simulations; [`TrialRunner`] distributes them
//! over a worker pool while keeping the result order deterministic
//! (results come back indexed, so `run(k, f)[i] == f(i)` regardless of
//! scheduling).

/// A deterministic fan-out executor for independent trials.
///
/// # Example
///
/// ```
/// use planartest_sim::runtime::TrialRunner;
///
/// let runner = TrialRunner::new(4);
/// let squares = runner.run(8, |trial| trial * trial);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug, Clone)]
pub struct TrialRunner {
    threads: usize,
}

impl Default for TrialRunner {
    fn default() -> Self {
        TrialRunner::auto()
    }
}

impl TrialRunner {
    /// A runner with an explicit worker count (`0` = hardware
    /// parallelism, overridden by `PLANARTEST_THREADS`).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            super::auto_threads()
        } else {
            threads
        };
        TrialRunner { threads }
    }

    /// A runner sized to the hardware.
    #[must_use]
    pub fn auto() -> Self {
        TrialRunner::new(0)
    }

    /// The worker count trials fan across.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), …, f(trials - 1)` across the pool and returns
    /// the results in trial order.
    pub fn run<T, F>(&self, trials: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map((0..trials).collect(), f)
    }

    /// Applies `f` to every item of a *borrowed* slice across the pool,
    /// returning results in input order.
    ///
    /// This is the reuse hook for callers whose work items live in
    /// longer-lived structures — the query service's scheduler fans its
    /// coalesced engine groups through here every drain cycle without
    /// moving them out of the cycle state.
    pub fn map_ref<'a, I, T, F>(&self, items: &'a [I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&'a I) -> T + Sync,
    {
        self.run(items.len(), |i| f(&items[i]))
    }

    /// Applies `f` to every item across the pool, returning results in
    /// input order.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Work-steal over an indexed queue; each worker returns
        // (index, result) pairs through its join handle, so placement is
        // deterministic no matter which worker computed what.
        let queue: Vec<std::sync::Mutex<Option<I>>> = items
            .into_iter()
            .map(|i| std::sync::Mutex::new(Some(i)))
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= n {
                                return out;
                            }
                            let item = queue[i]
                                .lock()
                                .expect("no panics while holding the slot")
                                .take()
                                .expect("each index claimed once");
                            out.push((i, f(item)));
                        }
                    })
                })
                .collect();
            for handle in handles {
                for (i, value) in handle.join().expect("trial worker panicked") {
                    slots[i] = Some(value);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every index computed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_order_regardless_of_threads() {
        for threads in [1, 2, 3, 16] {
            let runner = TrialRunner::new(threads);
            assert_eq!(runner.threads(), threads);
            let out = runner.run(17, |i| 3 * i + 1);
            assert_eq!(out, (0..17).map(|i| 3 * i + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_ref_borrows_items() {
        let items: Vec<Vec<u32>> = (0..7).map(|i| vec![i; i as usize]).collect();
        for threads in [1, 3, 8] {
            let out = TrialRunner::new(threads).map_ref(&items, |v| v.iter().sum::<u32>());
            assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36]);
        }
        // The items are still owned by the caller afterwards.
        assert_eq!(items.len(), 7);
    }

    #[test]
    fn map_moves_items() {
        let runner = TrialRunner::new(4);
        let items: Vec<String> = (0..9).map(|i| format!("s{i}")).collect();
        let out = runner.map(items, |s| s.len());
        assert_eq!(out, vec![2; 9]);
    }

    #[test]
    fn empty_and_single() {
        let runner = TrialRunner::new(8);
        assert_eq!(runner.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(runner.run(1, |i| i + 5), vec![5]);
    }

    #[test]
    fn auto_is_at_least_one() {
        assert!(TrialRunner::auto().threads() >= 1);
        assert!(TrialRunner::default().threads() >= 1);
    }
}
