//! The worker-pool CONGEST engine.
//!
//! [`ParallelEngine`] executes [`ParallelNodeLogic`] protocols with the
//! per-round node sweep fanned across OS threads. See the
//! [runtime module docs](super) for the determinism guarantee and the
//! rationale behind the per-node-state logic trait.
//!
//! # Execution scheme
//!
//! One run spawns a scoped worker pool. Every round:
//!
//! 1. the coordinator delivers the previous round's merged sends into
//!    the flat-arena [mailboxes](super::mailbox) and computes the
//!    sorted active-node list (identical to the serial engine);
//! 2. the active list is split into contiguous chunks, one per worker;
//!    workers receive `(node, arena range)` pairs — inboxes stay in the
//!    coordinator's arena, nothing is copied — and run their nodes'
//!    `round` hooks against worker-local scratch (outbound buffer, edge
//!    stamps, wake flags); a per-round barrier is implicit in the
//!    task/result channel pair;
//! 3. the coordinator merges the workers' outbound buffers *in worker
//!    order* — which is ascending active-node order — restoring the
//!    exact staging order of the serial loop, and folds message/word
//!    counts into the [`RunReport`].
//!
//! CONGEST validation (bandwidth, topology, one message per edge
//! direction per round) runs inside the workers with zero shared state:
//! a duplicate send on an edge direction can only originate from that
//! direction's single sender, which is processed by exactly one worker,
//! so the edge-stamp check is worker-local by construction. When several
//! nodes violate the model in one round, the error reported is the one
//! the serial engine would have hit first (lowest active position).

use std::sync::mpsc::{channel, Receiver, Sender};

use planartest_graph::{Graph, NodeId};

use crate::engine::{self, LaneCtx, Msg, NodeLogic, Outbox, RunReport, SimConfig, SimError};
use crate::runtime::lanes::LaneBits;
use crate::runtime::mailbox::{InboxRange, Mailboxes, Staged};
use crate::runtime::EngineCore;
use crate::stats::SimStats;

/// Per-node protocol logic with the state split out, safe to drive in
/// parallel.
///
/// The implementor is the *shared* part — parameters, the graph, lookup
/// tables — and must be [`Sync`]; everything a node mutates lives in its
/// own [`State`](Self::State). The hooks mirror
/// [`NodeLogic`] exactly otherwise.
pub trait ParallelNodeLogic: Sync {
    /// A single node's mutable state.
    type State: Send;

    /// Round-0 hook: seed initial messages/wake-ups.
    fn init(&self, node: NodeId, state: &mut Self::State, out: &mut Outbox<'_>);

    /// Called once per round per *active* node with the messages that
    /// arrived this round (possibly empty if the node was merely woken).
    fn round(
        &self,
        node: NodeId,
        state: &mut Self::State,
        inbox: &[(NodeId, Msg)],
        out: &mut Outbox<'_>,
    );
}

/// The worker-pool engine: drop-in alternative to
/// [`Engine`](crate::Engine) for [`ParallelNodeLogic`] protocols.
///
/// # Example
///
/// ```
/// use planartest_graph::{Graph, NodeId};
/// use planartest_sim::runtime::{Backend, ParallelEngine, ParallelNodeLogic};
/// use planartest_sim::{Msg, Outbox, SimConfig};
///
/// /// Every node learns the minimum id in its component.
/// struct MinId;
/// impl ParallelNodeLogic for MinId {
///     type State = u64;
///     fn init(&self, node: NodeId, state: &mut u64, out: &mut Outbox<'_>) {
///         *state = node.raw() as u64;
///         out.send_all(Msg::words(&[*state]));
///     }
///     fn round(&self, _: NodeId, state: &mut u64, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
///         let best = inbox.iter().map(|(_, m)| m.word(0)).min().expect("active => messages");
///         if best < *state {
///             *state = best;
///             out.send_all(Msg::words(&[best]));
///         }
///     }
/// }
///
/// let g = Graph::from_edges(5, [(4, 3), (3, 2), (2, 1), (1, 0)])?;
/// let cfg = SimConfig::default().with_backend(Backend::Parallel { threads: 2 });
/// let mut engine = ParallelEngine::new(&g, cfg);
/// let mut states = vec![0u64; g.n()];
/// engine.run(&MinId, &mut states, 100)?;
/// assert!(states.iter().all(|&s| s == 0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ParallelEngine<'g> {
    g: &'g Graph,
    cfg: SimConfig,
    /// Fixed worker count; `None` resolves per run from the backend's
    /// work threshold (the `Auto` backend).
    threads: Option<usize>,
    stats: SimStats,
}

impl<'g> ParallelEngine<'g> {
    /// Creates an engine over `g`; the worker count comes from
    /// `cfg.backend` (a `Serial` backend degrades to one worker; an
    /// `Auto` backend decides per run from the workload).
    #[must_use]
    pub fn new(g: &'g Graph, cfg: SimConfig) -> Self {
        ParallelEngine {
            g,
            cfg,
            threads: match cfg.backend {
                crate::runtime::Backend::Auto => None,
                fixed => Some(fixed.effective_threads()),
            },
            stats: SimStats::default(),
        }
    }

    /// Overrides the worker count (`0` = hardware parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(if threads == 0 {
            crate::runtime::auto_threads()
        } else {
            threads
        });
        self
    }

    /// The fixed worker count used for `run` calls, or `0` when the
    /// `Auto` backend resolves it per run.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or(0)
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.cfg
    }

    /// Cumulative statistics over all runs (plus charged rounds).
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Adds explicitly charged rounds.
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.stats.charged_rounds += rounds;
    }

    /// Runs `logic` to quiescence across the worker pool.
    ///
    /// `states[v]` is node `v`'s state; `states.len()` must equal the
    /// node count.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the protocol violates the CONGEST
    /// constraints or fails to quiesce within `max_rounds`.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != graph().n()`.
    pub fn run<P: ParallelNodeLogic>(
        &mut self,
        logic: &P,
        states: &mut [P::State],
        max_rounds: u64,
    ) -> Result<RunReport, SimError> {
        let threads = self
            .threads
            .unwrap_or_else(|| self.cfg.backend.threads_for(self.g.n(), max_rounds));
        let report = execute(self.g, self.cfg, logic, states, max_rounds, threads)?;
        self.stats.absorb(report);
        Ok(report)
    }
}

impl<'g> EngineCore<'g> for ParallelEngine<'g> {
    fn graph(&self) -> &'g Graph {
        self.g
    }

    fn config(&self) -> SimConfig {
        self.cfg
    }

    fn stats(&self) -> &SimStats {
        &self.stats
    }

    fn charge_rounds(&mut self, rounds: u64) {
        ParallelEngine::charge_rounds(self, rounds);
    }

    fn run_logic<L: NodeLogic>(
        &mut self,
        logic: &mut L,
        max_rounds: u64,
    ) -> Result<RunReport, SimError> {
        // Aggregate-state logic is inherently sequential (see the module
        // docs); it runs on the reference loop regardless of backend.
        let report = engine::run_serial(self.g, self.cfg, logic, max_rounds)?;
        self.stats.absorb(report);
        Ok(report)
    }

    fn run_logic_batch<L: NodeLogic + Send>(
        &mut self,
        logics: &mut [L],
        max_rounds: u64,
    ) -> Vec<Result<RunReport, SimError>> {
        // A batch of aggregate-state instances *does* parallelize: the
        // instance, not the node, is the unit of work (see
        // [`crate::runtime::batch`]).
        let threads = self.threads.unwrap_or_else(|| {
            self.cfg
                .backend
                .threads_for_batch(logics.len(), self.g.n(), max_rounds)
        });
        let results =
            crate::runtime::batch::execute_batch(self.g, self.cfg, logics, max_rounds, threads);
        for report in results.iter().flatten() {
            self.stats.absorb(*report);
        }
        results
    }

    fn run_program<P: ParallelNodeLogic>(
        &mut self,
        program: &P,
        states: &mut [P::State],
        max_rounds: u64,
    ) -> Result<RunReport, SimError> {
        self.run(program, states, max_rounds)
    }
}

/// Worker-local buffers for one engine run.
struct Scratch<'g> {
    g: &'g Graph,
    limit: usize,
    /// `edge_stamp[2e + dir] = round + 1` of the last send on that
    /// direction. Worker-local is sufficient: a direction's single
    /// sender is processed by exactly one worker per round.
    edge_stamp: Vec<u64>,
    /// Per-call wake dedup flags (only `self` can wake a node, so these
    /// never need cross-worker reconciliation). Reset via `wake` after
    /// each batch.
    woken: LaneBits,
    staged: Vec<Staged>,
    wake: Vec<NodeId>,
    error: Option<SimError>,
}

impl<'g> Scratch<'g> {
    fn new(g: &'g Graph, cfg: SimConfig) -> Self {
        Scratch {
            g,
            limit: cfg.max_words_per_message,
            edge_stamp: vec![0; 2 * g.m()],
            woken: LaneBits::new(g.n()),
            staged: Vec::new(),
            wake: Vec::new(),
            error: None,
        }
    }

    /// Runs one node hook; returns `false` once an error is recorded.
    fn drive<P: ParallelNodeLogic>(
        &mut self,
        logic: &P,
        node: NodeId,
        state: &mut P::State,
        inbox: Option<&[(NodeId, Msg)]>,
        round: u64,
    ) -> bool {
        let mut out = Outbox::assemble(
            node,
            self.g,
            self.limit,
            round,
            LaneCtx::solo(round + 1),
            &mut self.staged,
            &mut self.edge_stamp,
            &mut self.wake,
            &mut self.woken,
            &mut self.error,
        );
        match inbox {
            None => logic.init(node, state, &mut out),
            Some(inbox) => logic.round(node, state, inbox, &mut out),
        }
        self.error.is_none()
    }

    /// Extracts this batch's results, resetting the wake flags.
    fn take_batch(&mut self) -> Batch {
        let wake = std::mem::take(&mut self.wake);
        for &v in &wake {
            self.woken.clear(v.index());
        }
        Batch {
            staged: std::mem::take(&mut self.staged),
            wake,
            error: self.error.take(),
        }
    }

    /// Single-worker variant of [`Scratch::take_batch`]: applies the
    /// pending wake requests to the global wake state in place, leaving
    /// the staged sends untouched for the next delivery.
    fn flush_wake(&mut self, woken: &mut LaneBits, wake: &mut Vec<NodeId>) {
        let mut batch = std::mem::take(&mut self.wake);
        for &v in &batch {
            self.woken.clear(v.index());
        }
        merge_wake(&mut batch, woken, wake);
    }
}

/// One worker's per-round output.
struct Batch {
    staged: Vec<Staged>,
    wake: Vec<NodeId>,
    /// Error plus its *chunk-local* node position.
    error: Option<SimError>,
}

/// A round's work for one worker: `(node, inbox range)` pairs in
/// active-list order, plus the base pointer of the round's delivery
/// arena the ranges index into.
struct WorkItem {
    round: u64,
    arena: ArenaPtr,
    nodes: Vec<NodeWork>,
}

/// One node's work: `(node, inbox range)`, where `None` encodes the
/// round-0 `init` sweep. Shipping `[start, end)` ranges instead of owned
/// message vectors keeps the channel traffic flat and allocation-free.
type NodeWork = (NodeId, Option<InboxRange>);

/// Shared read-only access to the coordinator's delivery arena for one
/// round (also used by the batch executor, [`crate::runtime::batch`]).
///
/// Safety protocol: the coordinator sends a fresh pointer each round and
/// blocks on every worker's result before touching the mailboxes again,
/// so the pointed-to arena is immutable and alive whenever a worker
/// reconstructs an inbox slice from it.
#[derive(Clone, Copy)]
pub(crate) struct ArenaPtr(pub(crate) *const (NodeId, Msg));

unsafe impl Send for ArenaPtr {}

struct WorkResult {
    batch: Batch,
    /// Chunk-local index of the node whose hook raised `batch.error`.
    error_at: usize,
}

/// Shared `&mut`-per-node access to the state slice.
///
/// Safety protocol: within one round every node id appears in at most
/// one worker's `WorkItem` (the active list is sorted and deduplicated,
/// then chunked), and the coordinator never touches `states` while a
/// round is in flight (it blocks on the result channels). Hence all
/// `&mut` references derived from this pointer are disjoint.
struct StatesPtr<S>(*mut S);

impl<S> Clone for StatesPtr<S> {
    fn clone(&self) -> Self {
        StatesPtr(self.0)
    }
}

unsafe impl<S: Send> Send for StatesPtr<S> {}
unsafe impl<S: Send> Sync for StatesPtr<S> {}

/// Executes `logic` with `threads` workers (1 = inline, no spawning).
///
/// This is the single implementation behind every backend combination,
/// which is what makes the serial/parallel equivalence structural
/// rather than coincidental.
pub(crate) fn execute<P: ParallelNodeLogic>(
    g: &Graph,
    cfg: SimConfig,
    logic: &P,
    states: &mut [P::State],
    max_rounds: u64,
    threads: usize,
) -> Result<RunReport, SimError> {
    assert_eq!(
        states.len(),
        g.n(),
        "states slice must hold exactly one state per node"
    );
    if threads <= 1 || g.n() <= 1 {
        execute_inline(g, cfg, logic, states, max_rounds)
    } else {
        execute_pool(g, cfg, logic, states, max_rounds, threads)
    }
}

/// The one-worker path: the reference loop with per-node states.
fn execute_inline<P: ParallelNodeLogic>(
    g: &Graph,
    cfg: SimConfig,
    logic: &P,
    states: &mut [P::State],
    max_rounds: u64,
) -> Result<RunReport, SimError> {
    let mut scratch = Scratch::new(g, cfg);
    let mut report = RunReport::default();
    let mut boxes = Mailboxes::new(g.n());
    let mut woken = LaneBits::new(g.n());
    let mut wake: Vec<NodeId> = Vec::new();

    for v in g.nodes() {
        if !scratch.drive(logic, v, &mut states[v.index()], None, 0) {
            return Err(scratch.error.take().expect("drive reported an error"));
        }
    }
    scratch.flush_wake(&mut woken, &mut wake);

    // Recycled across rounds: cleared, never re-allocated at steady state.
    let mut active: Vec<NodeId> = Vec::new();
    let mut round: u64 = 0;
    while !scratch.staged.is_empty() || !wake.is_empty() {
        round += 1;
        if round > max_rounds {
            return Err(SimError::RoundLimitExceeded { limit: max_rounds });
        }
        active.clear();
        boxes.deliver(&mut scratch.staged, &woken, &mut active, &mut report);
        finish_active(&mut active, &mut wake, &mut woken);
        for &v in &active {
            if !scratch.drive(
                logic,
                v,
                &mut states[v.index()],
                Some(boxes.inbox(v)),
                round,
            ) {
                return Err(scratch.error.take().expect("drive reported an error"));
            }
        }
        scratch.flush_wake(&mut woken, &mut wake);
    }
    report.rounds = round;
    report.backend = crate::runtime::Backend::Serial;
    Ok(report)
}

/// The pooled path: persistent scoped workers, channel-barrier rounds.
fn execute_pool<P: ParallelNodeLogic>(
    g: &Graph,
    cfg: SimConfig,
    logic: &P,
    states: &mut [P::State],
    max_rounds: u64,
    threads: usize,
) -> Result<RunReport, SimError> {
    let n = g.n();
    let ptr = StatesPtr(states.as_mut_ptr());
    std::thread::scope(|scope| {
        let mut task_txs: Vec<Sender<WorkItem>> = Vec::with_capacity(threads);
        let mut result_rxs: Vec<Receiver<WorkResult>> = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (task_tx, task_rx) = channel::<WorkItem>();
            let (result_tx, result_rx) = channel::<WorkResult>();
            task_txs.push(task_tx);
            result_rxs.push(result_rx);
            let ptr = ptr.clone();
            scope.spawn(move || worker_loop(g, cfg, logic, &ptr, &task_rx, &result_tx));
        }

        let dispatch = |round: u64,
                        arena: ArenaPtr,
                        work: Vec<NodeWork>,
                        staged: &mut Vec<Staged>,
                        woken: &mut LaneBits,
                        wake: &mut Vec<NodeId>|
         -> Result<(), SimError> {
            // Contiguous chunks preserve ascending node order under the
            // in-order merge below.
            let chunk = work.len().div_ceil(threads).max(1);
            let mut chunks: Vec<Vec<_>> = Vec::with_capacity(threads);
            let mut work = work.into_iter();
            for _ in 0..threads {
                chunks.push(work.by_ref().take(chunk).collect());
            }
            let bases: Vec<usize> = (0..threads).map(|w| w * chunk).collect();
            for (tx, nodes) in task_txs.iter().zip(chunks) {
                tx.send(WorkItem {
                    round,
                    arena,
                    nodes,
                })
                .expect("worker alive");
            }
            let mut first_error: Option<(usize, SimError)> = None;
            for (w, rx) in result_rxs.iter().enumerate() {
                let WorkResult { batch, error_at } = rx.recv().expect("worker alive");
                if let Some(e) = batch.error {
                    let pos = bases[w] + error_at;
                    if first_error.as_ref().is_none_or(|(p, _)| pos < *p) {
                        first_error = Some((pos, e));
                    }
                }
                // In-order merge: worker w's sends precede worker w+1's,
                // i.e. ascending active-node order — the serial order.
                staged.extend(batch.staged);
                merge_wake(&mut { batch.wake }, woken, wake);
            }
            match first_error {
                Some((_, e)) => Err(e),
                None => Ok(()),
            }
        };

        let mut staged: Vec<Staged> = Vec::new();
        let mut woken = LaneBits::new(n);
        let mut wake: Vec<NodeId> = Vec::new();
        let mut report = RunReport::default();
        let mut boxes = Mailboxes::new(n);

        let init_work: Vec<_> = g.nodes().map(|v| (v, None)).collect();
        dispatch(
            0,
            ArenaPtr(boxes.arena().as_ptr()),
            init_work,
            &mut staged,
            &mut woken,
            &mut wake,
        )?;

        // Recycled across rounds: cleared, never re-allocated at
        // steady state.
        let mut active: Vec<NodeId> = Vec::new();
        let mut round: u64 = 0;
        while !staged.is_empty() || !wake.is_empty() {
            round += 1;
            if round > max_rounds {
                return Err(SimError::RoundLimitExceeded { limit: max_rounds });
            }
            active.clear();
            boxes.deliver(&mut staged, &woken, &mut active, &mut report);
            finish_active(&mut active, &mut wake, &mut woken);
            let work: Vec<_> = active.iter().map(|&v| (v, Some(boxes.range(v)))).collect();
            dispatch(
                round,
                ArenaPtr(boxes.arena().as_ptr()),
                work,
                &mut staged,
                &mut woken,
                &mut wake,
            )?;
        }
        report.rounds = round;
        report.backend = crate::runtime::Backend::Parallel { threads };
        Ok(report)
    })
}

fn worker_loop<P: ParallelNodeLogic>(
    g: &Graph,
    cfg: SimConfig,
    logic: &P,
    states: &StatesPtr<P::State>,
    tasks: &Receiver<WorkItem>,
    results: &Sender<WorkResult>,
) {
    let mut scratch = Scratch::new(g, cfg);
    while let Ok(WorkItem {
        round,
        arena,
        nodes,
    }) = tasks.recv()
    {
        let mut error_at = 0;
        for (i, (node, range)) in nodes.into_iter().enumerate() {
            // SAFETY: see `StatesPtr` — node ids are unique across all
            // workers' items this round, and the coordinator blocks on
            // our result before touching `states` again.
            let state = unsafe { &mut *states.0.add(node.index()) };
            // SAFETY: see `ArenaPtr` — the arena is immutable and alive
            // until the coordinator has received this round's result,
            // and ranges partition its initialized length.
            let inbox = range.map(|(start, end)| unsafe {
                std::slice::from_raw_parts(arena.0.add(start as usize), (end - start) as usize)
            });
            let ok = scratch.drive(logic, node, state, inbox, round);
            if !ok {
                error_at = i;
                break;
            }
        }
        if results
            .send(WorkResult {
                batch: scratch.take_batch(),
                error_at,
            })
            .is_err()
        {
            return; // coordinator gone (earlier error); shut down
        }
    }
}

/// Applies one batch's wake requests to the global wake state.
pub(crate) fn merge_wake(
    batch_wake: &mut Vec<NodeId>,
    woken: &mut LaneBits,
    wake: &mut Vec<NodeId>,
) {
    for v in batch_wake.drain(..) {
        // Only `v` itself can request `v`'s wake-up and each node runs
        // once per round, so no dedup check is needed here; the flag
        // feeds the next delivery's activation logic.
        woken.set(v.index());
        wake.push(v);
    }
}

/// Completes a round's active list: append the woken nodes, sort,
/// dedup, clear their wake flags. Shared with the serial reference loop
/// (`engine::run_serial`) so the activation rule exists exactly once.
pub(crate) fn finish_active(
    active: &mut Vec<NodeId>,
    wake: &mut Vec<NodeId>,
    woken: &mut LaneBits,
) {
    active.append(wake);
    active.sort_unstable();
    active.dedup();
    for &v in active.iter() {
        woken.clear(v.index());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Backend;

    fn grid(rows: usize, cols: usize) -> Graph {
        let mut edges = Vec::new();
        let id = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        Graph::from_edges(rows * cols, edges).unwrap()
    }

    /// Distance-from-source flood: per-node state is `Option<level>`.
    struct Levels;
    impl ParallelNodeLogic for Levels {
        type State = Option<u64>;
        fn init(&self, node: NodeId, state: &mut Self::State, out: &mut Outbox<'_>) {
            if node.index() == 0 {
                *state = Some(0);
                out.send_all(Msg::words(&[0]));
            }
        }
        fn round(
            &self,
            _node: NodeId,
            state: &mut Self::State,
            inbox: &[(NodeId, Msg)],
            out: &mut Outbox<'_>,
        ) {
            if state.is_none() {
                let lvl = inbox.iter().map(|(_, m)| m.word(0)).min().expect("msgs") + 1;
                *state = Some(lvl);
                out.send_all(Msg::words(&[lvl]));
            }
        }
    }

    fn run_levels(threads: usize) -> (Vec<Option<u64>>, RunReport) {
        let g = grid(9, 11);
        let mut engine = ParallelEngine::new(&g, SimConfig::default()).with_threads(threads);
        let mut states = vec![None; g.n()];
        let report = engine.run(&Levels, &mut states, 10_000).unwrap();
        (states, report)
    }

    #[test]
    fn flood_levels_are_bfs_distances() {
        let (states, report) = run_levels(4);
        // Manhattan distance on a grid from corner (0,0).
        for r in 0..9u64 {
            for c in 0..11u64 {
                assert_eq!(states[(r * 11 + c) as usize], Some(r + c));
            }
        }
        assert!(report.rounds >= 9 + 11 - 2);
    }

    #[test]
    fn thread_count_does_not_change_anything() {
        let baseline = run_levels(1);
        for threads in [2, 3, 8] {
            assert_eq!(run_levels(threads), baseline, "threads={threads}");
        }
    }

    #[test]
    fn errors_match_serial_choice() {
        // Two violators in one round; the serial engine reports the
        // smaller node id first. All thread counts must agree.
        struct TwoViolators;
        impl ParallelNodeLogic for TwoViolators {
            type State = ();
            fn init(&self, node: NodeId, _: &mut (), out: &mut Outbox<'_>) {
                if node.index() == 3 || node.index() == 7 {
                    out.send_all(Msg::words(&[0; 9])); // over bandwidth
                }
            }
            fn round(&self, _: NodeId, _: &mut (), _: &[(NodeId, Msg)], _: &mut Outbox<'_>) {}
        }
        let g = grid(3, 4);
        for threads in [1, 2, 5] {
            let mut engine = ParallelEngine::new(&g, SimConfig::default()).with_threads(threads);
            let err = engine
                .run(&TwoViolators, &mut vec![(); g.n()], 10)
                .unwrap_err();
            assert!(
                matches!(err, SimError::MessageTooLarge { from, .. } if from.index() == 3),
                "threads={threads}: {err}"
            );
        }
    }

    #[test]
    fn round_limit_enforced() {
        struct PingPong;
        impl ParallelNodeLogic for PingPong {
            type State = ();
            fn init(&self, node: NodeId, _: &mut (), out: &mut Outbox<'_>) {
                if node.index() == 0 {
                    out.send(NodeId::new(1), Msg::ping());
                }
            }
            fn round(&self, _: NodeId, _: &mut (), inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
                for (from, _) in inbox {
                    out.send(*from, Msg::ping());
                }
            }
        }
        let g = grid(1, 2);
        let mut engine = ParallelEngine::new(&g, SimConfig::default()).with_threads(2);
        let err = engine.run(&PingPong, &mut [(); 2], 7).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 7 });
    }

    #[test]
    fn wake_semantics_preserved() {
        // A node that wakes itself twice, then quiesces.
        struct Snooze;
        impl ParallelNodeLogic for Snooze {
            type State = u32;
            fn init(&self, node: NodeId, _: &mut u32, out: &mut Outbox<'_>) {
                if node.index() == 5 {
                    out.wake();
                }
            }
            fn round(
                &self,
                node: NodeId,
                state: &mut u32,
                inbox: &[(NodeId, Msg)],
                out: &mut Outbox<'_>,
            ) {
                assert_eq!(node.index(), 5);
                assert!(inbox.is_empty());
                *state += 1;
                if *state < 3 {
                    out.wake();
                    out.wake(); // dedup: still one activation
                }
            }
        }
        let g = grid(2, 4);
        for threads in [1, 4] {
            let mut states = vec![0u32; g.n()];
            let mut engine = ParallelEngine::new(&g, SimConfig::default()).with_threads(threads);
            let report = engine.run(&Snooze, &mut states, 100).unwrap();
            assert_eq!(states[5], 3);
            assert_eq!(report.rounds, 3);
            assert_eq!(report.messages, 0);
        }
    }

    #[test]
    fn backend_selects_thread_count() {
        let g = grid(2, 2);
        let cfg = SimConfig::default().with_backend(Backend::Parallel { threads: 6 });
        assert_eq!(ParallelEngine::new(&g, cfg).threads(), 6);
        let serial = SimConfig::default().with_backend(Backend::Serial);
        assert_eq!(ParallelEngine::new(&g, serial).threads(), 1);
        // The default Auto backend resolves per run: threads() reports 0.
        assert_eq!(ParallelEngine::new(&g, SimConfig::default()).threads(), 0);
    }

    #[test]
    fn run_report_records_resolved_backend() {
        let g = grid(3, 4);
        // Tiny workload under Auto: resolves to the serial path.
        let mut auto_engine = ParallelEngine::new(&g, SimConfig::default());
        let report = auto_engine
            .run(&Levels, &mut vec![None; g.n()], 50)
            .unwrap();
        assert_eq!(report.backend, Backend::Serial);
        // Forced pool: records the worker count actually used.
        let mut pooled = ParallelEngine::new(&g, SimConfig::default()).with_threads(3);
        let report = pooled.run(&Levels, &mut vec![None; g.n()], 50).unwrap();
        assert_eq!(report.backend, Backend::Parallel { threads: 3 });
        // Backend is telemetry: the reports still compare equal.
        assert_eq!(
            auto_engine
                .run(&Levels, &mut vec![None; g.n()], 50)
                .unwrap(),
            report
        );
    }

    #[test]
    fn engine_core_runs_aggregate_logic_serially() {
        struct Count(u64);
        impl NodeLogic for Count {
            fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
                if node.index() == 0 {
                    out.send_all(Msg::ping());
                }
            }
            fn round(&mut self, _: NodeId, inbox: &[(NodeId, Msg)], _: &mut Outbox<'_>) {
                self.0 += inbox.len() as u64;
            }
        }
        let g = grid(2, 3);
        let mut engine = ParallelEngine::new(&g, SimConfig::default()).with_threads(4);
        let mut logic = Count(0);
        let report = EngineCore::run_logic(&mut engine, &mut logic, 100).unwrap();
        assert_eq!(logic.0, 2);
        assert_eq!(report.messages, 2);
        assert_eq!(engine.stats().runs, 1);
    }
}
