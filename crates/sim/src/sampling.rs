//! Seeded samplers for open-loop load generation.
//!
//! The load harness (`crates/bench`, `e15_load`) needs two
//! distributions, both **deterministic under a seed** so a sweep is
//! bit-reproducible across runs and machines:
//!
//! * [`PoissonArrivals`] — an open-loop arrival schedule. A Poisson
//!   process at rate λ has i.i.d. exponential inter-arrival gaps; each
//!   gap is drawn by inverse-CDF transform `-ln(1 - U) / λ` over the
//!   vendored xoshiro256** stream, accumulated in microseconds.
//! * [`Zipf`] — graph popularity. Rank `k` (0-based) carries weight
//!   `1 / (k + 1)^s`; sampling is one uniform draw plus a binary
//!   search over the precomputed CDF, so a draw consumes exactly one
//!   `u64` of the RNG stream (a property the determinism proptests
//!   rely on).
//!
//! Both samplers consume the [`StdRng`] stream only through the
//! standard `f64` sample, which is platform-independent (53-bit
//! mantissa fill), so schedules agree across hosts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic Poisson arrival-time generator.
///
/// Yields strictly non-decreasing arrival offsets in microseconds
/// since the schedule origin. The same `(seed, rate)` pair always
/// yields the identical sequence.
#[derive(Debug)]
pub struct PoissonArrivals {
    rng: StdRng,
    /// Mean inter-arrival gap in microseconds (`1e6 / rate`).
    mean_gap_micros: f64,
    /// Cumulative arrival time, kept in f64 so sub-microsecond gap
    /// fractions accumulate instead of truncating away at high rates.
    next_micros: f64,
}

impl PoissonArrivals {
    /// A schedule at `rate_per_sec` arrivals per second.
    ///
    /// # Panics
    /// If `rate_per_sec` is not strictly positive and finite.
    #[must_use]
    pub fn new(seed: u64, rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive and finite, got {rate_per_sec}"
        );
        Self {
            rng: StdRng::seed_from_u64(seed),
            mean_gap_micros: 1_000_000.0 / rate_per_sec,
            next_micros: 0.0,
        }
    }

    /// The next arrival offset in microseconds since the origin.
    pub fn next_arrival_micros(&mut self) -> u64 {
        // U ∈ [0, 1) ⇒ 1 - U ∈ (0, 1] ⇒ ln is finite and ≤ 0.
        let u: f64 = self.rng.random();
        self.next_micros += -(1.0 - u).ln() * self.mean_gap_micros;
        self.next_micros as u64
    }

    /// Every arrival strictly before `horizon_micros`, in order.
    #[must_use]
    pub fn schedule(seed: u64, rate_per_sec: f64, horizon_micros: u64) -> Vec<u64> {
        let mut gen = Self::new(seed, rate_per_sec);
        let mut out = Vec::with_capacity(
            ((rate_per_sec * horizon_micros as f64 / 1_000_000.0) as usize).saturating_add(16),
        );
        loop {
            let at = gen.next_arrival_micros();
            if at >= horizon_micros {
                return out;
            }
            out.push(at);
        }
    }
}

/// A Zipf(s) distribution over ranks `0..n` (rank 0 most popular).
///
/// Weight of rank `k` is `1 / (k + 1)^s`, normalized. Strictly
/// monotone decreasing in rank for any `s > 0`, so the harness's
/// "popular graphs dominate" assumption is exact, not just empirical.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cdf[k]` = P(rank ≤ k); the last entry is exactly 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// If `n == 0` or `s` is not finite and positive.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s > 0.0,
            "Zipf exponent must be positive and finite, got {s}"
        );
        let weights: Vec<f64> = (0..n).map(|k| ((k + 1) as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cdf: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        // Float summation can land a hair under 1.0; pin the tail so a
        // uniform draw of 0.999999… can never fall off the end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Exact probability mass of `rank`.
    ///
    /// # Panics
    /// If `rank >= n`.
    #[must_use]
    pub fn probability(&self, rank: usize) -> f64 {
        let above = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - above
    }

    /// Draw a rank. Consumes exactly one `u64` from the RNG stream.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // First index whose CDF strictly exceeds u; u < 1.0 ≤ last
        // entry guarantees the partition point is in range.
        self.cdf.partition_point(|&c| c <= u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_seed_deterministic_and_monotone() {
        let a = PoissonArrivals::schedule(9, 5_000.0, 200_000);
        let b = PoissonArrivals::schedule(9, 5_000.0, 200_000);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|&t| t < 200_000));
        // ~1000 expected arrivals; a factor-of-two band is enormous
        // slack for a unit smoke test.
        assert!(a.len() > 500 && a.len() < 2000, "got {} arrivals", a.len());
    }

    #[test]
    fn distinct_seeds_diverge() {
        assert_ne!(
            PoissonArrivals::schedule(1, 1_000.0, 100_000),
            PoissonArrivals::schedule(2, 1_000.0, 100_000),
        );
    }

    #[test]
    fn zipf_masses_are_monotone_and_sum_to_one() {
        let z = Zipf::new(12, 1.1);
        let total: f64 = (0..z.n()).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..z.n() {
            assert!(z.probability(k - 1) > z.probability(k));
        }
    }

    #[test]
    fn zipf_draws_are_seed_deterministic_and_in_range() {
        let z = Zipf::new(7, 0.9);
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..256).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw(3);
        assert_eq!(a, draw(3));
        assert!(a.iter().all(|&r| r < 7));
        // Rank 0 carries the most mass; in 256 draws it must appear.
        assert!(a.contains(&0));
    }
}
