//! The synchronous round-driving engine.

use std::fmt;

use planartest_graph::{Graph, NodeId};

use crate::runtime::lanes::LaneBits;
use crate::stats::SimStats;

/// Payload words a [`Msg`] stores inline, without touching the heap.
///
/// Covers the default [`SimConfig::max_words_per_message`] of 4, so under
/// the default bandwidth every message of a run is allocation-free —
/// the `O(log n)`-bit CONGEST bandwidth bound is structural in the
/// representation, not just checked at send time.
pub const MSG_INLINE_WORDS: usize = 4;

/// A CONGEST message: a short sequence of machine words (`u64`). Each word
/// models `O(log n)` bits; [`SimConfig::max_words_per_message`] bounds how
/// many words fit in one round's message on one edge.
///
/// Payloads of up to [`MSG_INLINE_WORDS`] words are stored inline in the
/// value itself; only larger payloads (possible when the bandwidth limit
/// is raised) spill to the heap. Equality and hashing are over the
/// payload words alone, uniform across the inline/spill boundary.
#[derive(Clone, Default)]
pub struct Msg {
    /// Payload length in words.
    len: u32,
    /// The payload when `len <= MSG_INLINE_WORDS` (zero-padded).
    inline: [u64; MSG_INLINE_WORDS],
    /// The full payload when `len > MSG_INLINE_WORDS`.
    spill: Option<Box<[u64]>>,
}

impl Msg {
    /// Creates a message from payload words.
    #[must_use]
    pub fn words(words: &[u64]) -> Self {
        let len = u32::try_from(words.len()).expect("message length exceeds u32");
        if words.len() <= MSG_INLINE_WORDS {
            let mut inline = [0u64; MSG_INLINE_WORDS];
            inline[..words.len()].copy_from_slice(words);
            Msg {
                len,
                inline,
                spill: None,
            }
        } else {
            Msg {
                len,
                inline: [0; MSG_INLINE_WORDS],
                spill: Some(words.into()),
            }
        }
    }

    /// Creates an empty (0-word) "ping" message.
    #[must_use]
    pub fn ping() -> Self {
        Msg::default()
    }

    /// The payload words.
    #[inline]
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        match &self.spill {
            Some(boxed) => boxed,
            None => &self.inline[..self.len as usize],
        }
    }

    /// Number of payload words.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the payload is empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the payload lives inline in the value (no heap storage).
    #[inline]
    #[must_use]
    pub fn is_inline(&self) -> bool {
        self.spill.is_none()
    }

    /// Word `i`, panicking with a protocol-bug message if absent.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    #[must_use]
    pub fn word(&self, i: usize) -> u64 {
        match self.as_words().get(i) {
            Some(&w) => w,
            None => panic!(
                "protocol bug: word {i} requested from a {}-word message {:?} \
                 (sender and receiver disagree on the message layout)",
                self.len(),
                self.as_words()
            ),
        }
    }
}

impl PartialEq for Msg {
    fn eq(&self, other: &Self) -> bool {
        self.as_words() == other.as_words()
    }
}

impl Eq for Msg {}

impl std::hash::Hash for Msg {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_words().hash(state);
    }
}

impl fmt::Debug for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Msg")
            .field("words", &self.as_words())
            .finish()
    }
}

impl From<Vec<u64>> for Msg {
    fn from(words: Vec<u64>) -> Self {
        if words.len() <= MSG_INLINE_WORDS {
            Msg::words(&words)
        } else {
            // Move the vector into the spill storage — no re-copy.
            Msg {
                len: u32::try_from(words.len()).expect("message length exceeds u32"),
                inline: [0; MSG_INLINE_WORDS],
                spill: Some(words.into_boxed_slice()),
            }
        }
    }
}

/// Configuration of the simulated CONGEST network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Bandwidth: maximum payload words per message (per edge per round).
    /// The default of 4 models a constant number of `O(log n)`-bit fields.
    pub max_words_per_message: usize,
    /// Which execution backend drives the rounds (see
    /// [`Backend`](crate::runtime::Backend)). The serial and parallel
    /// backends are bit-for-bit equivalent; the choice only affects
    /// wall-clock time.
    pub backend: crate::runtime::Backend,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_words_per_message: 4,
            backend: crate::runtime::Backend::Auto,
        }
    }
}

impl SimConfig {
    /// Returns the configuration with `backend` selected.
    #[must_use]
    pub fn with_backend(mut self, backend: crate::runtime::Backend) -> Self {
        self.backend = backend;
        self
    }
}

/// Errors raised by the engine when a protocol violates the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A message exceeded the per-edge bandwidth.
    MessageTooLarge {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Words in the offending message.
        words: usize,
        /// Configured limit.
        limit: usize,
    },
    /// A node addressed a non-neighbour.
    NotANeighbor {
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
    },
    /// Two messages were sent on the same edge direction in one round.
    DuplicateMessage {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// The run exceeded its round budget without quiescing.
    RoundLimitExceeded {
        /// The budget that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MessageTooLarge {
                from,
                to,
                words,
                limit,
            } => write!(
                f,
                "message {from:?} -> {to:?} has {words} words, bandwidth limit is {limit}"
            ),
            SimError::NotANeighbor { from, to } => {
                write!(f, "node {from:?} attempted to message non-neighbour {to:?}")
            }
            SimError::DuplicateMessage { from, to } => {
                write!(f, "two messages on edge {from:?} -> {to:?} in one round")
            }
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not quiesce within {limit} rounds")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Report of a single [`Engine::run`].
///
/// Equality compares the CONGEST-semantic fields (`rounds`, `messages`,
/// `words`) only: `backend` is wall-clock telemetry, and the
/// serial/parallel determinism guarantee is exactly that reports from
/// different backends are equal.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// Rounds executed (the last round in which any message was delivered
    /// or any node was woken).
    pub rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Total payload words delivered.
    pub words: u64,
    /// The backend that executed this run, with `Auto` resolved to the
    /// concrete choice it made (telemetry; excluded from equality).
    pub backend: crate::runtime::Backend,
}

impl Default for RunReport {
    fn default() -> Self {
        RunReport {
            rounds: 0,
            messages: 0,
            words: 0,
            backend: crate::runtime::Backend::Serial,
        }
    }
}

impl PartialEq for RunReport {
    fn eq(&self, other: &Self) -> bool {
        self.rounds == other.rounds && self.messages == other.messages && self.words == other.words
    }
}

impl Eq for RunReport {}

/// Per-node protocol logic, driven synchronously by the [`Engine`].
///
/// The engine calls [`init`](NodeLogic::init) for every node before round
/// 1, then, in each round, [`round`](NodeLogic::round) for every node that
/// received a message or requested a wake-up. Local computation is free
/// (CONGEST); only messages cost rounds.
pub trait NodeLogic {
    /// Round-0 hook: seed initial messages/wake-ups.
    fn init(&mut self, node: NodeId, out: &mut Outbox<'_>);

    /// Called once per round per *active* node with the messages that
    /// arrived this round (possibly empty if the node was merely woken).
    fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>);
}

/// Lane geometry of one [`Outbox`]: how this instance's *local* node and
/// edge state maps into the (possibly shared, node-major) batch arrays.
///
/// Node-major batching ([`crate::runtime::batch`]) stores instance `i`'s
/// node `v` at the virtual lane `v·B + i` and its edge-direction slot
/// `s` at `s·owned + slot` in the owning worker's stamp stripe; a
/// single-instance run is the degenerate stride-1 geometry. The `stamp`
/// field carries the pre-computed "sent this round" epoch value, which
/// lets recycled executors skip re-zeroing `edge_stamp` between
/// instances: a fresh epoch base makes every stale stamp unequal by
/// construction.
#[derive(Clone, Copy)]
pub(crate) struct LaneCtx {
    /// Local node `v` lives at virtual lane `v·lane_stride + lane_off`.
    pub lane_stride: usize,
    /// See [`lane_stride`](LaneCtx::lane_stride).
    pub lane_off: usize,
    /// Edge slot `s` stamps at `s·stamp_stride + stamp_off`.
    pub stamp_stride: usize,
    /// See [`stamp_stride`](LaneCtx::stamp_stride).
    pub stamp_off: usize,
    /// The epoch value marking "sent this round" (base + round + 1).
    pub stamp: u64,
}

impl LaneCtx {
    /// The single-instance geometry: identity lanes, stamp epoch `stamp`.
    pub(crate) fn solo(stamp: u64) -> Self {
        LaneCtx {
            lane_stride: 1,
            lane_off: 0,
            stamp_stride: 1,
            stamp_off: 0,
            stamp,
        }
    }
}

/// Per-call send interface handed to [`NodeLogic`] methods.
///
/// Sends are validated against the CONGEST constraints; the first
/// violation aborts the run with the corresponding [`SimError`].
pub struct Outbox<'a> {
    src: NodeId,
    g: &'a Graph,
    limit: usize,
    round: u64,
    /// Lane geometry: maps local node/edge state into the shared batch
    /// arrays (identity for single-instance runs).
    lane: LaneCtx,
    staged: &'a mut Vec<(NodeId, NodeId, Msg)>,
    /// `edge_stamp[slot·stride + off] = epoch` of the last send on that
    /// direction (see [`LaneCtx`]).
    edge_stamp: &'a mut [u64],
    wake: &'a mut Vec<NodeId>,
    woken: &'a mut LaneBits,
    error: &'a mut Option<SimError>,
}

impl<'a> Outbox<'a> {
    /// Assembles an outbox over caller-owned buffers (used by the serial
    /// loop, the parallel runtime's per-worker scratch, and the batch
    /// executor's per-instance lanes).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        src: NodeId,
        g: &'a Graph,
        limit: usize,
        round: u64,
        lane: LaneCtx,
        staged: &'a mut Vec<(NodeId, NodeId, Msg)>,
        edge_stamp: &'a mut [u64],
        wake: &'a mut Vec<NodeId>,
        woken: &'a mut LaneBits,
        error: &'a mut Option<SimError>,
    ) -> Self {
        Outbox {
            src,
            g,
            limit,
            round,
            lane,
            staged,
            edge_stamp,
            wake,
            woken,
            error,
        }
    }

    /// Stages `msg` on the already-validated edge `e` toward neighbour
    /// `to`, enforcing the one-message-per-edge-direction rule — the
    /// single home of the staging semantics behind [`Outbox::send`] and
    /// [`Outbox::send_all`].
    fn stage_on_edge(&mut self, to: NodeId, e: planartest_graph::EdgeId, msg: Msg) {
        let (u, _) = self.g.endpoints(e);
        let dir = usize::from(self.src != u);
        let slot = (2 * e.index() + dir) * self.lane.stamp_stride + self.lane.stamp_off;
        if self.edge_stamp[slot] == self.lane.stamp {
            *self.error = Some(SimError::DuplicateMessage { from: self.src, to });
            return;
        }
        self.edge_stamp[slot] = self.lane.stamp;
        self.staged.push((
            self.src,
            NodeId::new(to.index() * self.lane.lane_stride + self.lane.lane_off),
            msg,
        ));
    }

    /// Sends `msg` to neighbour `to`, to be delivered next round.
    pub fn send(&mut self, to: NodeId, msg: Msg) {
        if self.error.is_some() {
            return;
        }
        if msg.len() > self.limit {
            *self.error = Some(SimError::MessageTooLarge {
                from: self.src,
                to,
                words: msg.len(),
                limit: self.limit,
            });
            return;
        }
        let Some(e) = self.g.edge_between(self.src, to) else {
            *self.error = Some(SimError::NotANeighbor { from: self.src, to });
            return;
        };
        self.stage_on_edge(to, e, msg);
    }

    /// Sends a copy of `msg` to every neighbour.
    ///
    /// Iterates the CSR neighbour slice directly — no per-call allocation
    /// and no per-neighbour edge lookup (the slice already carries the
    /// edge ids). This is the hottest primitive in flood workloads.
    pub fn send_all(&mut self, msg: Msg) {
        if self.error.is_some() {
            return;
        }
        let g = self.g;
        let deg = g.neighbors(self.src).len();
        if deg == 0 {
            return;
        }
        if msg.len() > self.limit {
            // Same error a `send` loop would raise on the first neighbour.
            *self.error = Some(SimError::MessageTooLarge {
                from: self.src,
                to: g.neighbors(self.src)[0].0,
                words: msg.len(),
                limit: self.limit,
            });
            return;
        }
        for i in 0..deg {
            let (w, e) = g.neighbors(self.src)[i];
            self.stage_on_edge(w, e, msg.clone());
            if self.error.is_some() {
                return;
            }
        }
    }

    /// Requests that this node's `round` hook runs next round even without
    /// incoming messages (models an internal timer; costs a round only if
    /// nothing else is happening — it never creates messages).
    pub fn wake(&mut self) {
        if !self.woken.get(self.src.index()) {
            self.woken.set(self.src.index());
            self.wake.push(NodeId::new(
                self.src.index() * self.lane.lane_stride + self.lane.lane_off,
            ));
        }
    }

    /// The node this outbox belongs to.
    pub fn node(&self) -> NodeId {
        self.src
    }

    /// The network graph (for neighbour discovery inside logic hooks).
    pub fn graph(&self) -> &'a Graph {
        self.g
    }

    /// The current round number (0 during `init`).
    pub fn round(&self) -> u64 {
        self.round
    }
}

/// The simulator: owns the cumulative [`SimStats`] across many runs, so a
/// multi-phase algorithm (like the paper's tester) can account its total
/// round complexity by sequencing `run` calls on one engine.
#[derive(Debug)]
pub struct Engine<'g> {
    g: &'g Graph,
    cfg: SimConfig,
    stats: SimStats,
}

impl<'g> Engine<'g> {
    /// Creates an engine over `g`.
    pub fn new(g: &'g Graph, cfg: SimConfig) -> Self {
        Engine {
            g,
            cfg,
            stats: SimStats::default(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The configuration.
    pub fn config(&self) -> SimConfig {
        self.cfg
    }

    /// Cumulative statistics over all runs (plus charged rounds).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Adds `rounds` explicitly charged rounds (for substituted
    /// subroutines whose cost is taken from their paper's bound).
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.stats.charged_rounds += rounds;
    }

    /// Folds one run's report into the cumulative statistics.
    pub(crate) fn absorb(&mut self, report: RunReport) {
        self.stats.absorb(report);
    }

    /// Runs `logic` to quiescence (no staged messages and no wake-ups).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the protocol violates the CONGEST
    /// constraints or fails to quiesce within `max_rounds`.
    pub fn run<L: NodeLogic>(
        &mut self,
        logic: &mut L,
        max_rounds: u64,
    ) -> Result<RunReport, SimError> {
        let report = run_serial(self.g, self.cfg, logic, max_rounds)?;
        self.stats.absorb(report);
        Ok(report)
    }
}

/// The reference serial round loop, shared by [`Engine::run`] and the
/// parallel runtime's sequential fallback for aggregate-state logic.
///
/// Delivery, activation and wake semantics live in
/// [`Mailboxes`](crate::runtime::mailbox::Mailboxes) and
/// [`finish_active`](crate::runtime::parallel::finish_active) — the
/// same primitives the parallel executor runs on — so the CONGEST
/// semantics exist exactly once and the serial/parallel bit-for-bit
/// equivalence is structural, not a matter of keeping two hand-written
/// loops in sync.
pub(crate) fn run_serial<L: NodeLogic>(
    g: &Graph,
    cfg: SimConfig,
    logic: &mut L,
    max_rounds: u64,
) -> Result<RunReport, SimError> {
    let mut staged: Vec<(NodeId, NodeId, Msg)> = Vec::new();
    // `edge_stamp[2e + dir] = round + 1` of the last send; 0 = never.
    let mut edge_stamp = vec![0u64; 2 * g.m()];
    let mut wake: Vec<NodeId> = Vec::new();
    let mut woken = LaneBits::new(g.n());
    let mut active: Vec<NodeId> = Vec::new();
    let mut boxes = crate::runtime::mailbox::Mailboxes::new(g.n());
    let mut stamp_base = 0;
    run_serial_recycled(
        g,
        cfg,
        logic,
        max_rounds,
        &mut edge_stamp,
        &mut woken,
        &mut staged,
        &mut wake,
        &mut active,
        &mut boxes,
        &mut stamp_base,
    )
}

/// The reference round loop over caller-owned buffers: the batch
/// executor's consecutive path ([`crate::runtime::batch`]) re-enters it
/// with one set of recycled arenas per batch, so a batch of one is
/// *structurally* the same run as [`Engine::run`] — not a copy kept in
/// sync.
///
/// `stamp_base` is the edge-stamp epoch base: this run marks "sent in
/// round `r`" as `stamp_base + r + 1` and advances the base past every
/// stamp it wrote before returning. Recycling callers therefore never
/// re-zero `edge_stamp` between instances — stale stamps from earlier
/// runs compare unequal to every new epoch by construction. The vectors
/// and wake flags must arrive empty/clear; this function restores that
/// state on **every** exit path (including CONGEST violations and
/// round-budget exhaustion), so consecutive recycled runs need no
/// inter-instance scrubbing at all.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_serial_recycled<L: NodeLogic>(
    g: &Graph,
    cfg: SimConfig,
    logic: &mut L,
    max_rounds: u64,
    edge_stamp: &mut [u64],
    woken: &mut LaneBits,
    staged: &mut Vec<(NodeId, NodeId, Msg)>,
    wake: &mut Vec<NodeId>,
    active: &mut Vec<NodeId>,
    boxes: &mut crate::runtime::mailbox::Mailboxes,
    stamp_base: &mut u64,
) -> Result<RunReport, SimError> {
    let limit = cfg.max_words_per_message;
    let base = *stamp_base;
    let mut error: Option<SimError> = None;
    let mut report = RunReport::default();

    // Restores the buffers' reset invariant after an aborted run: drop
    // the undelivered sends and clear the pending wake flags (lane id =
    // node id under the solo geometry).
    let abort = |staged: &mut Vec<(NodeId, NodeId, Msg)>,
                 wake: &mut Vec<NodeId>,
                 woken: &mut LaneBits,
                 stamp_base: &mut u64,
                 round: u64,
                 e: SimError| {
        staged.clear();
        for v in wake.drain(..) {
            woken.clear(v.index());
        }
        *stamp_base = base + round + 2;
        Err(e)
    };

    // Round 0: init.
    for v in g.nodes() {
        let mut out = Outbox::assemble(
            v,
            g,
            limit,
            0,
            LaneCtx::solo(base + 1),
            staged,
            edge_stamp,
            wake,
            woken,
            &mut error,
        );
        logic.init(v, &mut out);
        if let Some(e) = error {
            return abort(staged, wake, woken, stamp_base, 0, e);
        }
    }

    let mut round: u64 = 0;
    while !staged.is_empty() || !wake.is_empty() {
        round += 1;
        if round > max_rounds {
            return abort(
                staged,
                wake,
                woken,
                stamp_base,
                round,
                SimError::RoundLimitExceeded { limit: max_rounds },
            );
        }
        // `active` is recycled across rounds: cleared, never
        // re-allocated at steady state.
        active.clear();
        boxes.deliver(staged, woken, active, &mut report);
        crate::runtime::parallel::finish_active(active, wake, woken);
        for &v in active.iter() {
            let mut out = Outbox::assemble(
                v,
                g,
                limit,
                round,
                LaneCtx::solo(base + round + 1),
                staged,
                edge_stamp,
                wake,
                woken,
                &mut error,
            );
            logic.round(v, boxes.inbox(v), &mut out);
            if let Some(e) = error {
                return abort(staged, wake, woken, stamp_base, round, e);
            }
        }
    }
    *stamp_base = base + round + 2;
    report.rounds = round;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    /// Node 0 sends its id to node 1; everyone else is silent.
    struct OneShot {
        got: Vec<Option<u64>>,
    }
    impl NodeLogic for OneShot {
        fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
            if node.index() == 0 {
                out.send(NodeId::new(1), Msg::words(&[42]));
            }
        }
        fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], _out: &mut Outbox<'_>) {
            for (from, m) in inbox {
                assert_eq!(from.index(), 0);
                self.got[node.index()] = Some(m.word(0));
            }
        }
    }

    #[test]
    fn one_shot_delivery() {
        let g = path4();
        let mut engine = Engine::new(&g, SimConfig::default());
        let mut logic = OneShot { got: vec![None; 4] };
        let rep = engine.run(&mut logic, 10).unwrap();
        assert_eq!(rep.rounds, 1);
        assert_eq!(rep.messages, 1);
        assert_eq!(rep.words, 1);
        assert_eq!(logic.got[1], Some(42));
        assert_eq!(engine.stats().rounds, 1);
    }

    struct SendTooBig;
    impl NodeLogic for SendTooBig {
        fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
            if node.index() == 0 {
                out.send(NodeId::new(1), Msg::words(&[0; 9]));
            }
        }
        fn round(&mut self, _: NodeId, _: &[(NodeId, Msg)], _: &mut Outbox<'_>) {}
    }

    #[test]
    fn bandwidth_enforced() {
        let g = path4();
        let mut engine = Engine::new(
            &g,
            SimConfig {
                max_words_per_message: 4,
                ..SimConfig::default()
            },
        );
        let err = engine.run(&mut SendTooBig, 10).unwrap_err();
        assert!(matches!(
            err,
            SimError::MessageTooLarge {
                words: 9,
                limit: 4,
                ..
            }
        ));
        assert!(err.to_string().contains("bandwidth"));
    }

    struct SendToStranger;
    impl NodeLogic for SendToStranger {
        fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
            if node.index() == 0 {
                out.send(NodeId::new(3), Msg::ping());
            }
        }
        fn round(&mut self, _: NodeId, _: &[(NodeId, Msg)], _: &mut Outbox<'_>) {}
    }

    #[test]
    fn topology_enforced() {
        let g = path4();
        let mut engine = Engine::new(&g, SimConfig::default());
        let err = engine.run(&mut SendToStranger, 10).unwrap_err();
        assert_eq!(
            err,
            SimError::NotANeighbor {
                from: NodeId::new(0),
                to: NodeId::new(3)
            }
        );
    }

    struct DoubleSend;
    impl NodeLogic for DoubleSend {
        fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
            if node.index() == 0 {
                out.send(NodeId::new(1), Msg::ping());
                out.send(NodeId::new(1), Msg::ping());
            }
        }
        fn round(&mut self, _: NodeId, _: &[(NodeId, Msg)], _: &mut Outbox<'_>) {}
    }

    #[test]
    fn one_message_per_edge_direction_per_round() {
        let g = path4();
        let mut engine = Engine::new(&g, SimConfig::default());
        let err = engine.run(&mut DoubleSend, 10).unwrap_err();
        assert!(matches!(err, SimError::DuplicateMessage { .. }));
    }

    /// Both directions of one edge in the same round are allowed.
    struct CrossTalk {
        ok: [bool; 2],
    }
    impl NodeLogic for CrossTalk {
        fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
            if node.index() <= 1 {
                out.send(
                    NodeId::new(1 - node.index()),
                    Msg::words(&[node.index() as u64]),
                );
            }
        }
        fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], _: &mut Outbox<'_>) {
            if node.index() <= 1 && inbox.len() == 1 {
                self.ok[node.index()] = true;
            }
        }
    }

    #[test]
    fn both_directions_allowed() {
        let g = path4();
        let mut engine = Engine::new(&g, SimConfig::default());
        let mut logic = CrossTalk { ok: [false; 2] };
        engine.run(&mut logic, 10).unwrap();
        assert_eq!(logic.ok, [true, true]);
    }

    struct Chatter;
    impl NodeLogic for Chatter {
        fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
            if node.index() == 0 {
                out.send(NodeId::new(1), Msg::ping());
            }
        }
        fn round(&mut self, _: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
            // Bounce forever.
            for (from, _) in inbox {
                out.send(*from, Msg::ping());
            }
        }
    }

    #[test]
    fn round_limit_enforced() {
        let g = path4();
        let mut engine = Engine::new(&g, SimConfig::default());
        let err = engine.run(&mut Chatter, 25).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 25 });
    }

    struct Sleeper {
        fired: bool,
    }
    impl NodeLogic for Sleeper {
        fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
            if node.index() == 2 {
                out.wake();
            }
        }
        fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], _: &mut Outbox<'_>) {
            assert_eq!(node.index(), 2);
            assert!(inbox.is_empty());
            self.fired = true;
        }
    }

    #[test]
    fn wake_without_messages() {
        let g = path4();
        let mut engine = Engine::new(&g, SimConfig::default());
        let mut logic = Sleeper { fired: false };
        let rep = engine.run(&mut logic, 10).unwrap();
        assert!(logic.fired);
        assert_eq!(rep.rounds, 1);
        assert_eq!(rep.messages, 0);
    }

    #[test]
    fn quiescent_immediately() {
        struct Silent;
        impl NodeLogic for Silent {
            fn init(&mut self, _: NodeId, _: &mut Outbox<'_>) {}
            fn round(&mut self, _: NodeId, _: &[(NodeId, Msg)], _: &mut Outbox<'_>) {}
        }
        let g = path4();
        let mut engine = Engine::new(&g, SimConfig::default());
        let rep = engine.run(&mut Silent, 10).unwrap();
        assert_eq!(rep.rounds, 0);
    }

    #[test]
    fn charged_rounds_accumulate() {
        let g = path4();
        let mut engine = Engine::new(&g, SimConfig::default());
        engine.charge_rounds(17);
        assert_eq!(engine.stats().charged_rounds, 17);
        assert_eq!(engine.stats().total_rounds(), 17);
    }

    #[test]
    fn msg_accessors() {
        let m = Msg::words(&[1, 2, 3]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.word(2), 3);
        assert_eq!(m.as_words(), &[1, 2, 3]);
        assert!(Msg::ping().is_empty());
        let m2: Msg = vec![5u64].into();
        assert_eq!(m2.word(0), 5);
    }
}
