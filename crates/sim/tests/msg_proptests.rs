//! Property tests for the inline/spill `Msg` representation.
//!
//! Payloads of up to [`MSG_INLINE_WORDS`] words live inline in the
//! value; longer ones spill to the heap. These tests pin the contract
//! that the boundary is unobservable: round-trips, accessors, equality
//! and hashing behave identically on both sides of it.

use std::hash::{DefaultHasher, Hash, Hasher};

use planartest_sim::{Msg, MSG_INLINE_WORDS};
use proptest::prelude::*;

fn hash_of(m: &Msg) -> u64 {
    let mut h = DefaultHasher::new();
    m.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Construction round-trips through every accessor, on both sides
    /// of the inline boundary (lengths 0..=2×cap).
    #[test]
    fn words_round_trip(ws in prop::collection::vec(0u64..u64::MAX, 0..(2 * MSG_INLINE_WORDS + 1))) {
        let m = Msg::words(&ws);
        prop_assert_eq!(m.as_words(), ws.as_slice());
        prop_assert_eq!(m.len(), ws.len());
        prop_assert_eq!(m.is_empty(), ws.is_empty());
        prop_assert_eq!(m.is_inline(), ws.len() <= MSG_INLINE_WORDS);
        for (i, &w) in ws.iter().enumerate() {
            prop_assert_eq!(m.word(i), w);
        }
        // The two construction paths agree.
        let via_vec: Msg = ws.clone().into();
        prop_assert_eq!(&via_vec, &m);
        prop_assert_eq!(hash_of(&via_vec), hash_of(&m));
        // Clones are payload-equal (and cheap for inline payloads).
        #[allow(clippy::redundant_clone)]
        let c = m.clone();
        prop_assert_eq!(c, m);
    }

    /// Equality and hashing are functions of the payload words alone:
    /// equal payloads agree, and any prefix/extension pair straddling
    /// the inline boundary differs.
    #[test]
    fn eq_and_hash_across_inline_boundary(
        ws in prop::collection::vec(0u64..u64::MAX, 0..(2 * MSG_INLINE_WORDS + 1)),
        extra in 0u64..u64::MAX,
    ) {
        let m = Msg::words(&ws);
        let same = Msg::words(&ws);
        prop_assert_eq!(&same, &m);
        prop_assert_eq!(hash_of(&same), hash_of(&m));

        // Extending by one word — possibly crossing the boundary —
        // always breaks equality.
        let mut longer_words = ws.clone();
        longer_words.push(extra);
        let longer = Msg::words(&longer_words);
        prop_assert_ne!(&longer, &m);
        prop_assert_eq!(longer.is_inline(), longer_words.len() <= MSG_INLINE_WORDS);
    }
}

#[test]
fn ping_is_inline_and_empty() {
    let p = Msg::ping();
    assert!(p.is_inline());
    assert!(p.is_empty());
    assert_eq!(p, Msg::words(&[]));
    assert_eq!(hash_of(&p), hash_of(&Msg::words(&[])));
}

#[test]
fn boundary_lengths_pin_inline_flag() {
    let at_cap = Msg::words(&[7; MSG_INLINE_WORDS]);
    assert!(at_cap.is_inline(), "cap-sized payload must not allocate");
    let over_cap = Msg::words(&[7; MSG_INLINE_WORDS + 1]);
    assert!(!over_cap.is_inline());
    assert_ne!(at_cap, over_cap);
}
