//! Layout-equivalence golden pin: `run_batch` reports must stay
//! bit-identical across the instance-major → node-major lane flip.
//!
//! The `GOLDEN` table below was captured from the **instance-major**
//! (`lane = i·n + v`) batch executor before the node-major (`v·B + i`)
//! refactor, by running `cargo test -p planartest-sim --test
//! layout_golden -- --nocapture` with `PRINT_GOLDEN` temporarily
//! enabled. Any layout change that perturbs per-instance rounds,
//! message counts or word counts — on any thread count 1–8, at any
//! batch width B ∈ {1, 3, 16} — fails this test.

use planartest_graph::{Graph, GraphBuilder, NodeId};
use planartest_sim::{Msg, NodeLogic, Outbox, SimConfig, SimError};
use proptest::prelude::*;

/// SplitMix64 step — the deterministic per-(seed, node, activation)
/// decision stream (independent of any engine internals).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic gossip protocol whose traffic pattern depends on the
/// seed: random fan-out, random payload widths, occasional wake-ups.
struct Gossip {
    seed: u64,
    budget: u32,
    activations: Vec<u32>,
    digest: Vec<u64>,
}

impl Gossip {
    fn new(seed: u64, n: usize) -> Self {
        Gossip {
            seed,
            budget: 5,
            activations: vec![0; n],
            digest: vec![0; n],
        }
    }

    fn act(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        let v = node.index();
        let r = mix(self.seed ^ mix(v as u64) ^ mix(u64::from(self.activations[v])));
        let g = out.graph();
        let deg = g.neighbors(node).len();
        for i in 0..deg {
            let (w, _) = g.neighbors(node)[i];
            let d = mix(r ^ i as u64);
            if d.is_multiple_of(3) {
                let words: Vec<u64> = (0..(d % 4)).map(|k| mix(d ^ k)).collect();
                out.send(w, Msg::words(&words));
            }
        }
        if r % 7 == 1 {
            out.wake();
        }
    }
}

impl NodeLogic for Gossip {
    fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        if mix(self.seed ^ mix(node.index() as u64)).is_multiple_of(3) {
            self.act(node, out);
        }
    }
    fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        let v = node.index();
        for (from, m) in inbox {
            self.digest[v] = mix(self.digest[v] ^ mix(from.index() as u64));
            for &w in m.as_words() {
                self.digest[v] = mix(self.digest[v] ^ w);
            }
        }
        self.activations[v] += 1;
        if self.activations[v] < self.budget {
            self.act(node, out);
        }
    }
}

/// The two fixed networks the pin runs on: a 4×5 grid with diagonals
/// and a 14-node path with chords.
fn graphs() -> Vec<Graph> {
    let mut edges = Vec::new();
    let id = |r: usize, c: usize| r * 5 + c;
    for r in 0..4 {
        for c in 0..5 {
            if c + 1 < 5 {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < 4 {
                edges.push((id(r, c), id(r + 1, c)));
                if c + 1 < 5 {
                    edges.push((id(r, c), id(r + 1, c + 1)));
                }
            }
        }
    }
    let grid = Graph::from_edges(20, edges).unwrap();
    let mut path_edges: Vec<(usize, usize)> = (0..13).map(|i| (i, i + 1)).collect();
    path_edges.extend([(0, 7), (3, 11), (2, 13)]);
    let chorded = Graph::from_edges(14, path_edges).unwrap();
    vec![grid, chorded]
}

/// One pinned per-instance report: (rounds, messages, words).
type GoldenRow = (u64, u64, u64);

/// (graph index, B) → per-instance reports, captured from the
/// instance-major executor (see module docs).
const GOLDEN: &[(usize, usize, &[GoldenRow])] = &[
    (0, 1, GOLDEN_G0_B1),
    (0, 3, GOLDEN_G0_B3),
    (0, 16, GOLDEN_G0_B16),
    (1, 1, GOLDEN_G1_B1),
    (1, 3, GOLDEN_G1_B3),
    (1, 16, GOLDEN_G1_B16),
];

const GOLDEN_G0_B1: &[(u64, u64, u64)] = &[(12, 98, 144)];
const GOLDEN_G0_B3: &[(u64, u64, u64)] = &[(12, 98, 144), (11, 111, 179), (13, 104, 142)];
const GOLDEN_G0_B16: &[(u64, u64, u64)] = &[
    (12, 98, 144),
    (11, 111, 179),
    (13, 104, 142),
    (9, 126, 193),
    (9, 108, 148),
    (10, 103, 143),
    (11, 117, 173),
    (8, 141, 211),
    (9, 120, 186),
    (11, 120, 185),
    (10, 137, 220),
    (11, 112, 176),
    (9, 121, 185),
    (8, 104, 159),
    (8, 122, 186),
    (9, 104, 148),
];
const GOLDEN_G1_B1: &[(u64, u64, u64)] = &[(9, 12, 19)];
const GOLDEN_G1_B3: &[(u64, u64, u64)] = &[(9, 12, 19), (6, 20, 38), (9, 28, 33)];
const GOLDEN_G1_B16: &[(u64, u64, u64)] = &[
    (9, 12, 19),
    (6, 20, 38),
    (9, 28, 33),
    (6, 17, 23),
    (6, 14, 15),
    (2, 6, 8),
    (7, 18, 20),
    (10, 50, 82),
    (14, 38, 56),
    (6, 17, 24),
    (6, 24, 44),
    (4, 8, 6),
    (10, 31, 42),
    (3, 12, 25),
    (8, 16, 26),
    (4, 31, 42),
];

fn run_case(g: &Graph, b: usize, threads: usize) -> Vec<(u64, u64, u64)> {
    let mut logics: Vec<Gossip> = (0..b as u64).map(|s| Gossip::new(s, g.n())).collect();
    let cfg = SimConfig::default();
    let results: Vec<Result<planartest_sim::RunReport, SimError>> = if threads == 0 {
        planartest_sim::run_batch(g, cfg, &mut logics, 10_000)
    } else {
        let mut engine = planartest_sim::BatchEngine::new(g, cfg).with_threads(threads);
        engine.run(&mut logics, 10_000)
    };
    results
        .into_iter()
        .map(|r| {
            let rep = r.expect("gossip never violates CONGEST");
            (rep.rounds, rep.messages, rep.words)
        })
        .collect()
}

/// Full per-instance reports of `b` sequential reference-engine runs —
/// the layout-independent ground truth.
fn run_sequential(g: &Graph, b: usize, seed_base: u64) -> Vec<(u64, u64, u64)> {
    (0..b as u64)
        .map(|s| {
            let mut engine = planartest_sim::Engine::new(g, SimConfig::default());
            let mut logic = Gossip::new(seed_base + s, g.n());
            let rep = engine
                .run(&mut logic, 10_000)
                .expect("gossip never violates CONGEST");
            (rep.rounds, rep.messages, rep.words)
        })
        .collect()
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..30,
        prop::collection::vec((0usize..30, 0usize..30), 0..90),
    )
        .prop_map(|(n, pairs)| {
            let mut builder = GraphBuilder::new(n);
            for (u, v) in pairs {
                let (u, v) = (u % n, v % n);
                if u != v {
                    builder.add_edge(u, v).expect("in range");
                }
            }
            builder.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Layout-equivalence property: on random graphs, the node-major
    /// batch executor's per-instance reports are bit-identical to `B`
    /// sequential reference runs, for every B ∈ {1, 3, 16} and every
    /// worker count 1–8 (plus the backend-resolved entry point).
    #[test]
    fn node_major_batches_match_sequential_runs(
        g in arb_graph(),
        seed_base in 0u64..1_000_000,
    ) {
        for b in [1usize, 3, 16] {
            let expected = run_sequential(&g, b, seed_base);
            for threads in 1..=8usize {
                let mut logics: Vec<Gossip> =
                    (0..b as u64).map(|s| Gossip::new(seed_base + s, g.n())).collect();
                let mut engine =
                    planartest_sim::BatchEngine::new(&g, SimConfig::default()).with_threads(threads);
                let got: Vec<(u64, u64, u64)> = engine
                    .run(&mut logics, 10_000)
                    .into_iter()
                    .map(|r| {
                        let rep = r.expect("gossip never violates CONGEST");
                        (rep.rounds, rep.messages, rep.words)
                    })
                    .collect();
                prop_assert_eq!(&got, &expected, "B={} threads={}", b, threads);
            }
            let mut logics: Vec<Gossip> =
                (0..b as u64).map(|s| Gossip::new(seed_base + s, g.n())).collect();
            let got: Vec<(u64, u64, u64)> =
                planartest_sim::run_batch(&g, SimConfig::default(), &mut logics, 10_000)
                    .into_iter()
                    .map(|r| {
                        let rep = r.expect("gossip never violates CONGEST");
                        (rep.rounds, rep.messages, rep.words)
                    })
                    .collect();
            prop_assert_eq!(&got, &expected, "B={} auto", b);
        }
    }
}

#[test]
fn batch_reports_match_the_pinned_instance_major_golden() {
    let graphs = graphs();
    let print = std::env::var("PRINT_GOLDEN").is_ok();
    for &(gi, b, golden) in GOLDEN {
        let g = &graphs[gi];
        for threads in 1..=8usize {
            let got = run_case(g, b, threads);
            if print && threads == 1 {
                let rows: Vec<String> = got
                    .iter()
                    .map(|(r, m, w)| format!("({r}, {m}, {w})"))
                    .collect();
                println!("GOLDEN_G{gi}_B{b}: &[{}]", rows.join(", "));
            }
            if !print {
                assert_eq!(
                    got,
                    golden.to_vec(),
                    "graph {gi} B={b} threads={threads} diverged from the \
                     pinned instance-major reports"
                );
            }
        }
        // The backend-resolved entry point observes the same batch.
        if !print {
            assert_eq!(run_case(g, b, 0), golden.to_vec(), "graph {gi} B={b} auto");
        }
    }
}
