//! Equivalence property tests: the parallel runtime is bit-for-bit
//! identical to the serial reference engine.
//!
//! A seeded "chaos" protocol — random fan-out, random payload sizes,
//! random wake-ups, occasional deliberate CONGEST violations — is
//! expressed twice over shared step functions: once as aggregate-state
//! [`NodeLogic`] for the serial [`Engine`], once as per-node-state
//! [`ParallelNodeLogic`] for the [`ParallelEngine`]. For every random
//! graph and seed, every backend and thread count must produce the same
//! run result (report *or* error), the same cumulative stats, the same
//! per-node delivery logs (order included) and the same final states.

use planartest_graph::{Graph, GraphBuilder, NodeId};
use planartest_sim::{
    run_batch, BatchEngine, Engine, Msg, NodeLogic, Outbox, ParallelEngine, ParallelNodeLogic,
    RunReport, SimConfig, SimError, SimStats,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64: the per-(seed, node, round) decision stream.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn decision_stream(seed: u64, node: NodeId, round: u64) -> u64 {
    mix(seed ^ mix(node.raw() as u64) ^ mix(round.rotate_left(17)))
}

/// One node's protocol state: an order-sensitive delivery log digest,
/// the full log, and an activity budget.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct ChaosState {
    digest: u64,
    log: Vec<(u32, Vec<u64>)>,
    activations: u32,
}

/// The shared protocol parameters.
#[derive(Debug, Clone)]
struct Chaos {
    seed: u64,
    /// Per-node activation budget: bounds the run length.
    budget: u32,
    /// Whether this instance may emit deliberately illegal sends.
    violations: bool,
}

impl Chaos {
    fn step_init(&self, node: NodeId, state: &mut ChaosState, out: &mut Outbox<'_>) {
        let r = decision_stream(self.seed, node, u64::MAX);
        if r.is_multiple_of(3) {
            self.spray(node, state, r, out);
        }
        if r % 7 == 1 {
            out.wake();
        }
    }

    fn step_round(
        &self,
        node: NodeId,
        state: &mut ChaosState,
        inbox: &[(NodeId, Msg)],
        out: &mut Outbox<'_>,
    ) {
        // Fold the inbox in delivery order: any reordering between
        // backends changes the digest.
        for (from, msg) in inbox {
            state.digest = mix(state.digest ^ mix(from.raw() as u64));
            for &w in msg.as_words() {
                state.digest = mix(state.digest ^ w);
            }
            state.log.push((from.raw(), msg.as_words().to_vec()));
        }
        state.activations += 1;
        if state.activations >= self.budget {
            return; // quiesce
        }
        let r = decision_stream(self.seed, node, u64::from(state.activations));
        if !r.is_multiple_of(4) {
            self.spray(node, state, r, out);
        }
        if r % 11 == 2 {
            out.wake();
        }
    }

    /// Sends messages to a pseudo-random subset of neighbours; with
    /// `violations` enabled, occasionally exceeds bandwidth, duplicates
    /// a send, or addresses a stranger.
    fn spray(&self, node: NodeId, state: &ChaosState, r: u64, out: &mut Outbox<'_>) {
        let g = out.graph();
        let neighbors: Vec<NodeId> = g.neighbors(node).iter().map(|&(w, _)| w).collect();
        if self.violations && r % 97 == 13 {
            let stranger = NodeId::new((node.index() + 1) % g.n().max(1));
            if g.edge_between(node, stranger).is_none() {
                out.send(stranger, Msg::ping());
                return;
            }
        }
        for (i, &w) in neighbors.iter().enumerate() {
            let d = mix(r ^ (i as u64));
            if d.is_multiple_of(3) {
                let words: Vec<u64> = (0..(d % 4)).map(|k| mix(d ^ k) ^ state.digest).collect();
                out.send(w, Msg::words(&words));
                if self.violations && d % 101 == 7 {
                    out.send(w, Msg::ping()); // duplicate on the edge direction
                }
            } else if self.violations && d % 89 == 11 {
                out.send(w, Msg::words(&[0; 9])); // over bandwidth
            }
        }
    }
}

/// Aggregate-state expression for the serial engine.
struct ChaosLogic {
    chaos: Chaos,
    states: Vec<ChaosState>,
}

impl NodeLogic for ChaosLogic {
    fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        let mut state = std::mem::take(&mut self.states[node.index()]);
        self.chaos.step_init(node, &mut state, out);
        self.states[node.index()] = state;
    }
    fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        let mut state = std::mem::take(&mut self.states[node.index()]);
        self.chaos.step_round(node, &mut state, inbox, out);
        self.states[node.index()] = state;
    }
}

/// Per-node-state expression for the parallel engine.
impl ParallelNodeLogic for Chaos {
    type State = ChaosState;
    fn init(&self, node: NodeId, state: &mut ChaosState, out: &mut Outbox<'_>) {
        self.step_init(node, state, out);
    }
    fn round(
        &self,
        node: NodeId,
        state: &mut ChaosState,
        inbox: &[(NodeId, Msg)],
        out: &mut Outbox<'_>,
    ) {
        self.step_round(node, state, inbox, out);
    }
}

type Observation = (Result<RunReport, SimError>, SimStats, Vec<ChaosState>);

fn run_serial(g: &Graph, chaos: &Chaos, max_rounds: u64) -> Observation {
    let mut engine = Engine::new(g, SimConfig::default());
    let mut logic = ChaosLogic {
        chaos: chaos.clone(),
        states: vec![ChaosState::default(); g.n()],
    };
    let result = engine.run(&mut logic, max_rounds);
    (result, *engine.stats(), logic.states)
}

fn run_parallel(g: &Graph, chaos: &Chaos, max_rounds: u64, threads: usize) -> Observation {
    let mut engine = ParallelEngine::new(g, SimConfig::default()).with_threads(threads);
    let mut states = vec![ChaosState::default(); g.n()];
    let result = engine.run(chaos, &mut states, max_rounds);
    (result, *engine.stats(), states)
}

/// Core assertion: every backend observes the same run.
fn assert_equivalent(g: &Graph, seed: u64, violations: bool) {
    let chaos = Chaos {
        seed,
        budget: 6,
        violations,
    };
    let max_rounds = 400;
    let serial = run_serial(g, &chaos, max_rounds);
    for threads in [1usize, 2, 3, 8] {
        let par = run_parallel(g, &chaos, max_rounds, threads);
        check_against_serial(&serial, &par, threads, seed);
    }
    // The default `Auto` backend resolves its own worker count per run;
    // whatever it picks must observe the same run.
    let auto = {
        let mut engine = ParallelEngine::new(g, SimConfig::default());
        let mut states = vec![ChaosState::default(); g.n()];
        let result = engine.run(&chaos, &mut states, max_rounds);
        (result, *engine.stats(), states)
    };
    check_against_serial(&serial, &auto, usize::MAX, seed);
}

fn check_against_serial(serial: &Observation, par: &Observation, threads: usize, seed: u64) {
    {
        match (&serial.0, &par.0) {
            (Ok(_), Ok(_)) => {
                assert_eq!(par, serial, "threads={threads} seed={seed}");
            }
            // On errors the runs abort at different completion points by
            // design (the serial loop stops mid-round); the *error* and
            // the message accounting up to the failing round must agree.
            (Err(se), Err(pe)) => {
                assert_eq!(pe, se, "threads={threads} seed={seed}");
            }
            (s, p) => panic!("verdict diverged (threads={threads} seed={seed}): {s:?} vs {p:?}"),
        }
    }
}

/// Batch-executor assertion: `run_batch` over one instance per seed —
/// on the serial path and across pooled worker counts — must yield
/// per-instance reports, errors and final states bit-identical to that
/// many sequential [`Engine`] runs.
fn assert_batch_equivalent(g: &Graph, seeds: &[u64], violations: bool) {
    let max_rounds = 400;
    let chaoses: Vec<Chaos> = seeds
        .iter()
        .map(|&seed| Chaos {
            seed,
            budget: 6,
            violations,
        })
        .collect();
    let sequential: Vec<Observation> = chaoses
        .iter()
        .map(|c| run_serial(g, c, max_rounds))
        .collect();

    let make_logics = || -> Vec<ChaosLogic> {
        chaoses
            .iter()
            .map(|c| ChaosLogic {
                chaos: c.clone(),
                states: vec![ChaosState::default(); g.n()],
            })
            .collect()
    };
    let check = |results: &[Result<RunReport, SimError>], logics: &[ChaosLogic], tag: &str| {
        assert_eq!(results.len(), seeds.len());
        for (k, (result, logic)) in results.iter().zip(logics).enumerate() {
            match (&sequential[k].0, result) {
                (Ok(sr), Ok(br)) => {
                    assert_eq!(br, sr, "{tag} instance {k}");
                    assert_eq!(logic.states, sequential[k].2, "{tag} instance {k}");
                }
                // Error-path states are protocol-bug debris on every
                // backend; only the error value must agree.
                (Err(se), Err(be)) => assert_eq!(be, se, "{tag} instance {k}"),
                (s, b) => panic!("verdict diverged ({tag} instance {k}): {s:?} vs {b:?}"),
            }
        }
    };

    for threads in [1usize, 2, 3, 8] {
        let mut logics = make_logics();
        let mut batch = BatchEngine::new(g, SimConfig::default()).with_threads(threads);
        let results = batch.run(&mut logics, max_rounds);
        check(&results, &logics, &format!("threads={threads}"));
        // Cumulative stats absorb exactly the successful instances.
        let expect_runs = results.iter().filter(|r| r.is_ok()).count() as u64;
        assert_eq!(batch.stats().runs, expect_runs);
    }
    // The backend-resolved entry point must observe the same batch.
    let mut logics = make_logics();
    let results = run_batch(g, SimConfig::default(), &mut logics, max_rounds);
    check(&results, &logics, "auto");
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..40,
        prop::collection::vec((0usize..40, 0usize..40), 0..120),
    )
        .prop_map(|(n, pairs)| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                let (u, v) = (u % n, v % n);
                if u != v {
                    b.add_edge(u, v).expect("in range");
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Arbitrary multigraph-free random graphs, well-behaved protocol.
    #[test]
    fn equivalent_on_random_graphs(g in arb_graph(), seed in 0u64..1_000_000) {
        assert_equivalent(&g, seed, false);
    }

    /// Same, with deliberate CONGEST violations mixed in: the reported
    /// error must be the one the serial engine reports.
    #[test]
    fn equivalent_under_violations(g in arb_graph(), seed in 0u64..1_000_000) {
        assert_equivalent(&g, seed, true);
    }

    /// Batched instances (one per seed) match that many sequential runs
    /// bit for bit, on the serial and pooled batch paths alike.
    #[test]
    fn batch_equivalent_on_random_graphs(
        g in arb_graph(),
        seeds in prop::collection::vec(0u64..1_000_000, 1..6),
    ) {
        assert_batch_equivalent(&g, &seeds, false);
    }

    /// Same, with deliberate CONGEST violations: each failing instance
    /// reports its own sequential error and leaves the rest untouched.
    #[test]
    fn batch_equivalent_under_violations(
        g in arb_graph(),
        seeds in prop::collection::vec(0u64..1_000_000, 1..6),
    ) {
        assert_batch_equivalent(&g, &seeds, true);
    }

    /// Planar and far-from-planar generator families (the tester's
    /// actual workloads).
    #[test]
    fn equivalent_on_generator_families(seed in 0u64..100_000, pick in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = match pick {
            0 => planartest_graph::generators::planar::random_planar(30, 0.7, &mut rng).graph,
            1 => planartest_graph::generators::planar::triangulated_grid(5, 6).graph,
            2 => planartest_graph::generators::nonplanar::gnp(30, 0.15, &mut rng).graph,
            _ => planartest_graph::generators::planar::random_tree(25, &mut rng).graph,
        };
        assert_equivalent(&g, seed, false);
    }
}

/// A long pipeline stresses multi-round wake/deliver interleavings.
#[test]
fn equivalent_on_deep_path() {
    let g = Graph::from_edges(120, (0..119).map(|i| (i, i + 1))).unwrap();
    for seed in 0..8u64 {
        assert_equivalent(&g, seed, false);
    }
}

/// Disconnected graphs exercise never-active nodes.
#[test]
fn equivalent_on_disconnected() {
    let g = Graph::from_edges(20, [(0, 1), (2, 3), (5, 6), (6, 7), (10, 11)]).unwrap();
    for seed in 0..8u64 {
        assert_equivalent(&g, seed, true);
    }
}
