//! E15 — open-loop mixed-workload load harness with saturation sweep,
//! written both as tables and as machine-readable `BENCH_load.json`.
//!
//! Everything before this bench was **closed-loop**: the next request
//! waited for the last response, so the system could never be offered
//! more work than it finished and queueing collapse was structurally
//! invisible. This harness is **open-loop**: requests are sent on a
//! pre-computed arrival schedule regardless of responses, exactly the
//! way independent users behave, so offered load can exceed capacity
//! and the collapse becomes measurable.
//!
//! Per sweep rate, against a fresh in-process [`Server`]:
//!
//! * **Poisson arrivals** at the offered QPS
//!   ([`planartest_sim::sampling::PoissonArrivals`], seeded — the
//!   schedule is bit-reproducible), assigned round-robin to
//!   [`CONNECTIONS`] unix-socket clients;
//! * **Zipf graph popularity** over a multi-family corpus (planar
//!   accept-path graphs, certified-far reject/certificate-path graphs)
//!   — a few graphs soak most of the traffic, the tail stays warm-ish;
//! * a **weighted op mix**: warm `query` traffic across all three
//!   properties, fresh-seed queries that pay engine passes mid-load,
//!   `batch` fan-outs, `stats` probes and `ingest` ops (the control
//!   ops wake the drain loop immediately, so the mix exercises both
//!   wake paths);
//! * latency comes from the service's own telemetry histograms
//!   (`queue → resolve → execute → respond`, one timebase), windowed
//!   to the measured run via [`Histogram::subtract`] so cache warmup
//!   does not pollute the percentiles.
//!
//! The sweep walks rates upward (escalating ×4 past the initial list
//! if needed) until it finds the **saturation knee**: the first rate
//! where achieved throughput falls below [`KNEE_FRACTION`] of the
//! schedule's realized offered rate. The knee criterion compares
//! against the *realized* schedule rate (requests ÷ last arrival
//! time), not the nominal one, so Poisson sampling variance at small
//! request counts cannot fake a knee. The lowest rate is then re-run
//! under the same seed and the per-connection response digests are
//! asserted identical — the reproducibility contract.
//!
//! After the sweep, a **slow-reader fairness scenario** runs the same
//! rate point twice — once with four healthy clients, once with one
//! client throttled to ~1 byte/ms — and compares the *healthy*
//! connections' client-side p99 between the runs. With per-connection
//! outbound writers a stalled reader sheds only its own responses;
//! the gate rejects any regression toward the old shared write path,
//! where one unread socket buffer stalled the drain cycle for
//! everyone.
//!
//! The `--check` gate ([`LoadGate`]): a knee was found above the
//! lowest rate and at or above the [`LoadGate::KNEE_FLOOR_QPS`]
//! ratchet, p99 at the highest sub-knee rate meets the
//! [`LoadGate::P99_SLO_MICROS`] SLO, the warm-hit p99 there meets the
//! (much tighter) [`LoadGate::WARM_P99_CEIL_MICROS`] fast-path
//! ceiling, no response was lost mid-flight, the double-run digests
//! matched, and the slow-reader scenario left healthy connections
//! within [`LoadGate::FAIRNESS_FACTOR`]× of their all-healthy p99.

use crate::json::Json;
use crate::quick;

/// Workload-schedule seed; `BENCH_load.json` records it, and the
/// determinism section proves a re-run under it is bit-identical.
pub const LOAD_SEED: u64 = 0x0b5e_55ed;

/// Concurrent unix-socket client connections per rate point.
pub const CONNECTIONS: usize = 4;

/// Knee criterion: the first rate whose achieved throughput drops
/// below this fraction of the realized offered rate is saturated.
pub const KNEE_FRACTION: f64 = 0.9;

/// What one scheduled request is, for response accounting: every op
/// kind gets exactly one response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Single property query (any of the three properties).
    Query,
    /// A `batch` op carrying several queries in one frame.
    Batch,
    /// A `stats` probe (control op: wakes the drain loop).
    Stats,
    /// An `ingest` op registering a (content-deduplicated) graph.
    Ingest,
}

/// One scheduled request: when it is sent, what it is, and the exact
/// wire line (newline included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Send time in microseconds after the schedule origin.
    pub at_micros: u64,
    /// Op kind (drives response digesting).
    pub kind: OpKind,
    /// The LDJSON request line, `\n`-terminated.
    pub line: String,
}

/// A full per-rate request schedule, split per connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Arrival lists per connection, each in schedule order.
    pub per_conn: Vec<Vec<Arrival>>,
    /// Total request lines across connections.
    pub requests: usize,
    /// Total queries including batch members (for telemetry
    /// cross-checks; `stats`/`ingest` ops are not queries).
    pub queries: usize,
    /// When the last request is scheduled, in microseconds.
    pub last_arrival_micros: u64,
}

/// The graph corpus: mostly planar families (accept path, per-seed
/// cache stripes) plus certified-far ones (reject path, permanent
/// certificates). The leading entries carry most of the Zipf mass.
fn corpus() -> Vec<(&'static str, String, bool)> {
    if quick() {
        vec![
            ("g0", "tri_grid(12,12)".to_string(), true),
            ("g1", "grid(14,14)".to_string(), true),
            ("g2", "random_planar(140, 0.7, seed=3)".to_string(), true),
            ("g3", "k5_chain(10)".to_string(), false),
            ("g4", "cycle(180)".to_string(), true),
            ("g5", "complete(9)".to_string(), false),
        ]
    } else {
        vec![
            ("g0", "tri_grid(18,18)".to_string(), true),
            ("g1", "grid(22,22)".to_string(), true),
            ("g2", "random_planar(300, 0.7, seed=3)".to_string(), true),
            ("g3", "k5_chain(20)".to_string(), false),
            ("g4", "cycle(400)".to_string(), true),
            ("g5", "complete(12)".to_string(), false),
            ("g6", "apollonian(6)".to_string(), true),
            ("g7", "complete_bipartite(4,5)".to_string(), false),
        ]
    }
}

/// Distance parameters the warm pool covers.
const EPSILONS: [f64; 2] = [0.1, 0.2];
/// Phase count for every query (practical regime, see E4).
const PHASES: u64 = 6;

fn warm_seeds() -> u64 {
    if quick() {
        4
    } else {
        6
    }
}

fn query_line(graph: &str, property: &str, eps: f64, seed: u64) -> String {
    let prop = if property == "planarity" {
        String::new()
    } else {
        format!("\"property\":\"{property}\",")
    };
    format!(
        "{{\"op\":\"query\",\"graph\":\"{graph}\",{prop}\"epsilon\":{eps},\
         \"phases\":{PHASES},\"seed\":{seed}}}\n"
    )
}

/// Builds the deterministic request schedule for one rate point.
///
/// Op mix (drawn per arrival from one seeded RNG stream, so the whole
/// workload — times, targets, ops — reproduces from `(seed, rate)`):
///
/// * 72% warm planarity query (Zipf graph, warm-pool seed/epsilon);
/// * 8% warm hereditary-property query (cycle-freeness or
///   bipartiteness — seed-independent cache entries);
/// * 5% fresh-seed planarity query on a *planar* graph: pays a cold
///   engine pass mid-load (planar-only keeps the verdict independent
///   of cross-connection arrival order — planarity is one-sided, so
///   planar graphs accept under every seed);
/// * 4% `batch` of three warm queries;
/// * 7% `stats` probe;
/// * 4% `ingest` of a small spec under a fresh name (content-level
///   dedup makes it an alias registration).
#[must_use]
pub fn build_workload(seed: u64, rate_per_sec: f64, horizon_micros: u64) -> Workload {
    use planartest_sim::sampling::{PoissonArrivals, Zipf};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let corpus = corpus();
    let planar_graphs: Vec<&str> = corpus
        .iter()
        .filter(|(_, _, planar)| *planar)
        .map(|(name, _, _)| *name)
        .collect();
    let zipf = Zipf::new(corpus.len(), 1.1);
    let planar_zipf = Zipf::new(planar_graphs.len(), 1.1);
    let seeds = warm_seeds();

    let schedule = PoissonArrivals::schedule(seed, rate_per_sec, horizon_micros);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut per_conn: Vec<Vec<Arrival>> = vec![Vec::new(); CONNECTIONS];
    let mut queries = 0usize;
    let mut fresh = 0u64;
    let mut ingests = 0u64;

    let warm_query = |rng: &mut StdRng| -> String {
        let graph = corpus[zipf.sample(rng)].0;
        let eps = EPSILONS[rng.random_range(0..EPSILONS.len())];
        let s = rng.random_range(0..seeds);
        query_line(graph, "planarity", eps, s)
    };

    for (i, &at) in schedule.iter().enumerate() {
        let draw: f64 = rng.random();
        let (kind, line) = if draw < 0.72 {
            queries += 1;
            (OpKind::Query, warm_query(&mut rng))
        } else if draw < 0.80 {
            queries += 1;
            let graph = corpus[zipf.sample(&mut rng)].0;
            let eps = EPSILONS[rng.random_range(0..EPSILONS.len())];
            let property = if rng.random_range(0..2u32) == 0 {
                "cycle_freeness"
            } else {
                "bipartiteness"
            };
            (OpKind::Query, query_line(graph, property, eps, 0))
        } else if draw < 0.85 {
            queries += 1;
            let graph = planar_graphs[planar_zipf.sample(&mut rng)];
            let eps = EPSILONS[rng.random_range(0..EPSILONS.len())];
            fresh += 1;
            (
                OpKind::Query,
                query_line(graph, "planarity", eps, 10_000 + fresh),
            )
        } else if draw < 0.89 {
            let members: Vec<String> = (0..3)
                .map(|_| {
                    queries += 1;
                    let q = warm_query(&mut rng);
                    q.trim_end().to_string()
                })
                .collect();
            (
                OpKind::Batch,
                format!("{{\"op\":\"batch\",\"queries\":[{}]}}\n", members.join(",")),
            )
        } else if draw < 0.96 {
            (OpKind::Stats, "{\"op\":\"stats\"}\n".to_string())
        } else {
            ingests += 1;
            (
                OpKind::Ingest,
                format!("{{\"op\":\"ingest\",\"name\":\"ld{ingests}\",\"spec\":\"cycle(24)\"}}\n"),
            )
        };
        per_conn[i % CONNECTIONS].push(Arrival {
            at_micros: at,
            kind,
            line,
        });
    }
    Workload {
        requests: schedule.len(),
        queries,
        last_arrival_micros: schedule.last().copied().unwrap_or(0),
        per_conn,
    }
}

/// The CI gate over `BENCH_load.json`.
#[derive(Debug, Clone, Copy)]
pub struct LoadGate {
    /// A saturation knee was located above the lowest sweep rate.
    pub knee_detected: bool,
    /// Realized offered QPS at the knee itself (the first saturated
    /// rate) — the capacity ratchet [`LoadGate::KNEE_FLOOR_QPS`]
    /// guards.
    pub knee_offered_qps: f64,
    /// Realized offered QPS at the highest sub-knee rate.
    pub sub_knee_offered_qps: f64,
    /// p99 end-to-end latency (µs) at the highest sub-knee rate.
    pub sub_knee_p99_micros: u64,
    /// Warm-hit (warm + certificate) p99 latency (µs) at the highest
    /// sub-knee rate — the pipelined fast path answers these at
    /// resolve time, ahead of the execute barrier.
    pub warm_p99_micros: u64,
    /// The lowest rate re-run under the same seed produced identical
    /// per-connection response digests and request schedules.
    pub deterministic: bool,
    /// Responses lost *mid-flight* across the whole sweep (must be 0:
    /// every client reads to completion; shutdown-flush and shed
    /// ledgers are separate).
    pub responses_lost: u64,
    /// Client-side p99 (µs) of the fairness scenario's healthy
    /// connections when every client reads promptly.
    pub all_healthy_p99_micros: u64,
    /// Client-side p99 (µs) of the *same* connections when one peer
    /// connection is throttled to ~1 byte/ms.
    pub slow_reader_healthy_p99_micros: u64,
}

impl LoadGate {
    /// p99 SLO at the highest sub-knee rate. Sub-knee traffic is
    /// mostly cache hits with a minority of genuine engine passes;
    /// 100 ms is generous for CI hardware yet far below the
    /// horizon-scale latencies queueing collapse produces.
    pub const P99_SLO_MICROS: u64 = 100_000;

    /// Capacity ratchet: the realized offered rate at the knee must
    /// not fall below this. The quick-mode ladder saturates its third
    /// rung at a realized ≈6.6k q/s offered on the single-core CI
    /// box — engine passes are CPU-bound, so pipelining moves the
    /// sub-knee tail, not the saturation point, there. The floor sits
    /// just under the measured knee so a scheduling regression that
    /// drags the knee down a rung (to ≈1.5k) trips loudly.
    pub const KNEE_FLOOR_QPS: f64 = 6_000.0;

    /// Warm-hit p99 ceiling at the highest sub-knee rate. Hits are
    /// answered at resolve time instead of waiting out the execute
    /// barrier: the pipelined cycle measures a ≈11–25 ms warm p99
    /// (median ≈12 ms across calibration runs on the single-core CI
    /// box) where the synchronous cycle's all-query p99 ran ≈23.5 ms
    /// *median* — the ceiling takes the observed worst case with
    /// ≈60% noise margin, and a hit path regressing back behind the
    /// barrier (≥ full-cycle latency, ≈100 ms at this rate) clears it
    /// by a wide margin.
    pub const WARM_P99_CEIL_MICROS: u64 = 40_000;

    /// Slow-reader fairness: healthy connections' p99 may grow at
    /// most this factor (plus [`LoadGate::FAIRNESS_SLACK_MICROS`])
    /// when a peer connection stops reading.
    pub const FAIRNESS_FACTOR: u64 = 2;

    /// Absolute slack on the fairness bound: keeps a near-zero
    /// all-healthy p99 on fast hardware from degenerating the factor
    /// test, and absorbs single-core scheduler jitter (calibration
    /// runs measured factors 1.0–1.8 against ≈70–140 ms baselines).
    pub const FAIRNESS_SLACK_MICROS: u64 = 25_000;

    /// Whether the slow-reader scenario left healthy connections
    /// inside the fairness envelope.
    #[must_use]
    pub fn fairness_ok(&self) -> bool {
        self.slow_reader_healthy_p99_micros
            <= Self::FAIRNESS_FACTOR * self.all_healthy_p99_micros + Self::FAIRNESS_SLACK_MICROS
    }

    /// Whether the gate passes: knee found (with at least one healthy
    /// rate below it) at or above the capacity floor, the sub-knee
    /// p99 meets the SLO and its warm-hit slice meets the fast-path
    /// ceiling, the sweep was reproducible, no response went missing
    /// mid-flight, and a slow reader hurt only itself.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.knee_detected
            && self.knee_offered_qps >= Self::KNEE_FLOOR_QPS
            && self.sub_knee_p99_micros <= Self::P99_SLO_MICROS
            && self.warm_p99_micros <= Self::WARM_P99_CEIL_MICROS
            && self.deterministic
            && self.responses_lost == 0
            && self.fairness_ok()
    }
}

#[cfg(unix)]
mod sweep {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    use planartest_core::TesterConfig;
    use planartest_service::wire::Value;
    use planartest_service::{
        CacheStatus, GraphRef, Histogram, Property, Query, ServeOptions, Server, Service, Telemetry,
    };

    use super::{
        build_workload, corpus, warm_seeds, Json, LoadGate, OpKind, CONNECTIONS, EPSILONS,
        KNEE_FRACTION, LOAD_SEED, PHASES,
    };
    use crate::quick;

    /// Everything measured at one sweep rate.
    pub(super) struct RateOutcome {
        pub offered_qps: f64,
        pub realized_offered_qps: f64,
        pub requests: usize,
        pub queries: usize,
        pub achieved_qps: f64,
        pub wall_secs: f64,
        pub p50_micros: u64,
        pub p99_micros: u64,
        pub p999_micros: u64,
        pub mean_micros: f64,
        pub latency_count: u64,
        /// Warm-hit (warm + certificate) p99 — the fast-path slice of
        /// the same telemetry window.
        pub warm_p99_micros: u64,
        /// Client-side p99 across all connections: response receipt
        /// minus *scheduled* send, so schedule slip under overload is
        /// charged to the server, open-loop style.
        pub client_p99_micros: u64,
        pub queue_depth_hwm: usize,
        pub responses_lost: u64,
        pub responses_lost_shutdown: u64,
        pub responses_shed: u64,
        pub outbound_depth_hwm: usize,
        pub writer_stalls: u64,
        pub engine_passes: u64,
        pub coalesce_ratio: f64,
        pub drain_cycles: u64,
        /// Per-connection client-side latencies (µs), submission
        /// order (empty for a throttled connection).
        pub client_latencies: Vec<Vec<u64>>,
        /// Per-connection response digests, submission order: the
        /// reproducibility witness.
        pub digests: Vec<Vec<String>>,
    }

    /// Per-run knobs beyond the offered rate (the fairness scenario
    /// throttles one reader and bounds the outbound queues).
    #[derive(Debug, Clone, Copy, Default)]
    pub(super) struct RunOpts {
        /// Throttle this connection's reader to ~1 byte/ms; it stops
        /// digesting responses entirely (its responses are shed once
        /// its outbound queue fills — the policy under test).
        pub slow_conn: Option<usize>,
        /// Override the rate-derived schedule horizon.
        pub horizon_micros: Option<u64>,
        /// Per-connection outbound queue bound (0 = unbounded). The
        /// sweep runs unbounded — every client reads promptly, and an
        /// unbounded queue keeps the zero-responses-lost contract
        /// exact; the fairness scenario bounds it so the slow reader
        /// actually triggers shedding.
        pub outbound_depth: usize,
    }

    fn horizon_micros_for(rate: f64) -> u64 {
        // Long enough for a meaningful window at low rates; shrunk at
        // high rates so one saturated point cannot stall CI (the
        // request *count* is capped, the offered rate is not).
        let base: u64 = if quick() { 250_000 } else { 800_000 };
        let cap_requests: f64 = if quick() { 12_000.0 } else { 48_000.0 };
        let capped = (cap_requests * 1_000_000.0 / rate) as u64;
        base.min(capped).max(2_000)
    }

    /// Pre-populates the cache: every warm-pool combination once, so
    /// the measured window starts from the steady serving state (the
    /// mix's fresh-seed queries still pay real engine passes mid-load).
    fn warm_cache(service: &mut Service) {
        let seeds = warm_seeds();
        for (name, _, _) in corpus() {
            for eps in EPSILONS {
                let base = TesterConfig::new(eps).with_phases(PHASES as usize);
                for s in 0..seeds {
                    service.submit(Query::planarity(
                        GraphRef::Name(name.to_string()),
                        base.clone().with_seed(s),
                    ));
                }
                for property in [Property::CycleFreeness, Property::Bipartiteness] {
                    service.submit(Query {
                        graph: GraphRef::Name(name.to_string()),
                        property,
                        cfg: base.clone().with_seed(0),
                        backend: planartest_sim::Backend::Auto,
                    });
                }
                for (_, result) in service.drain() {
                    result.expect("warmup query");
                }
            }
        }
    }

    const PROPERTIES: [Property; 3] = [
        Property::Planarity,
        Property::CycleFreeness,
        Property::Bipartiteness,
    ];
    const STATUSES: [CacheStatus; 3] = [
        CacheStatus::Cold,
        CacheStatus::Warm,
        CacheStatus::Certificate,
    ];

    /// The per-`(property, cache)` latency cells passing `keep`,
    /// merged into one distribution, minus an earlier snapshot of the
    /// same cells.
    fn merged_latency_where(
        telemetry: &Telemetry,
        baseline: &[Histogram; 9],
        keep: impl Fn(CacheStatus) -> bool,
    ) -> Histogram {
        let mut merged = Histogram::new();
        for (i, (p, s)) in cell_ids().into_iter().enumerate() {
            if !keep(s) {
                continue;
            }
            if let Some(mut h) = telemetry.latency_histogram(p, s) {
                h.subtract(&baseline[i]);
                merged.merge(&h);
            }
        }
        merged
    }

    /// All cells merged (the end-to-end distribution).
    fn merged_latency(telemetry: &Telemetry, baseline: &[Histogram; 9]) -> Histogram {
        merged_latency_where(telemetry, baseline, |_| true)
    }

    /// Exact percentile over raw client-side samples.
    fn percentile(mut samples: Vec<u64>, q: f64) -> u64 {
        if samples.is_empty() {
            return 0;
        }
        samples.sort_unstable();
        let idx = ((samples.len() - 1) as f64 * q).round() as usize;
        samples[idx]
    }

    fn cell_ids() -> Vec<(Property, CacheStatus)> {
        PROPERTIES
            .into_iter()
            .flat_map(|p| STATUSES.into_iter().map(move |s| (p, s)))
            .collect()
    }

    fn latency_baseline(telemetry: &Telemetry) -> [Histogram; 9] {
        let cells: Vec<Histogram> = cell_ids()
            .into_iter()
            .map(|(p, s)| telemetry.latency_histogram(p, s).unwrap_or_default())
            .collect();
        cells.try_into().expect("9 cells")
    }

    fn engine_queries(telemetry: &Telemetry) -> u64 {
        telemetry
            .metrics_value()
            .get("engine")
            .and_then(|e| e.get("queries"))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    }

    /// Digest of one response line: the deterministic content only
    /// (verdicts), never timing-dependent fields (cache status,
    /// rounds under certificate replay, stats counters).
    fn digest(kind: OpKind, v: &Value) -> String {
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(true),
            "load response failed: {v:?}"
        );
        match kind {
            OpKind::Query => v
                .get("verdict")
                .and_then(Value::as_str)
                .expect("query verdict")
                .to_string(),
            OpKind::Batch => {
                let Some(Value::Arr(members)) = v.get("responses") else {
                    panic!("batch response shape");
                };
                members
                    .iter()
                    .map(|m| {
                        assert_eq!(m.get("ok").and_then(Value::as_bool), Some(true));
                        m.get("verdict").and_then(Value::as_str).expect("verdict")
                    })
                    .collect::<Vec<_>>()
                    .join("+")
            }
            OpKind::Stats => "stats".to_string(),
            OpKind::Ingest => "ingest".to_string(),
        }
    }

    /// Drives one rate point end to end against a fresh server.
    pub(super) fn run_rate(rate: f64, socket_tag: usize, opts: RunOpts) -> RateOutcome {
        let horizon = opts
            .horizon_micros
            .unwrap_or_else(|| horizon_micros_for(rate));
        let workload = build_workload(LOAD_SEED ^ rate.to_bits(), rate, horizon);

        let mut service = Service::new().with_group_threads(0);
        for (name, spec_text, _) in corpus() {
            service
                .registry_mut()
                .ingest_spec(name, &spec_text)
                .expect("corpus spec");
        }
        warm_cache(&mut service);
        let telemetry = service.telemetry();
        let baseline = latency_baseline(&telemetry);
        let passes_before = service.engine_passes();
        let equeries_before = engine_queries(&telemetry);
        let cycles_before = telemetry.cycles();

        let server = Server::start(
            service,
            ServeOptions {
                outbound_depth: opts.outbound_depth,
                ..ServeOptions::default()
            },
        );
        let socket = std::env::temp_dir().join(format!(
            "planartest-e15-{}-{socket_tag}.sock",
            std::process::id()
        ));
        server.listen_unix(&socket).expect("bind load socket");

        // Connect outside the client scope and keep the originals
        // alive until after the server's shutdown flush: a throttled
        // connection still has responses queued at shutdown, and
        // closing its socket early would turn those into *mid-flight*
        // losses instead of shutdown-flush ones.
        let streams: Vec<UnixStream> = workload
            .per_conn
            .iter()
            .map(|_| UnixStream::connect(&socket).expect("connect load client"))
            .collect();
        let stop_slow = AtomicBool::new(false);
        let started = Instant::now();
        type ClientResult = (Vec<String>, Vec<u64>, Instant);
        let per_conn: Vec<ClientResult> = std::thread::scope(|scope| {
            let mut handles: Vec<Option<std::thread::ScopedJoinHandle<'_, ClientResult>>> =
                Vec::new();
            for (ci, arrivals) in workload.per_conn.iter().enumerate() {
                // Open-loop writer: send at the scheduled instant,
                // never waiting for responses; when behind schedule,
                // send immediately (standard open-loop catch-up — the
                // backlog is the server's problem, which is the
                // point).
                let mut wstream = streams[ci].try_clone().expect("clone stream");
                scope.spawn(move || {
                    for a in arrivals {
                        let target = started + Duration::from_micros(a.at_micros);
                        let now = Instant::now();
                        if target > now {
                            std::thread::sleep(target - now);
                        }
                        wstream
                            .write_all(a.line.as_bytes())
                            .expect("send load request");
                    }
                });
                if opts.slow_conn == Some(ci) {
                    // Pathological reader: ~1 byte/ms, never a full
                    // response. Its outbound queue fills and sheds;
                    // the fairness gate checks nobody else noticed.
                    let mut rstream = streams[ci].try_clone().expect("clone stream");
                    rstream
                        .set_read_timeout(Some(Duration::from_millis(20)))
                        .expect("set read timeout");
                    let stop = &stop_slow;
                    handles.push(Some(scope.spawn(move || {
                        let mut byte = [0u8; 1];
                        while !stop.load(Ordering::Relaxed) {
                            match rstream.read(&mut byte) {
                                Ok(0) => break,
                                Ok(_) => std::thread::sleep(Duration::from_millis(1)),
                                Err(e)
                                    if e.kind() == std::io::ErrorKind::WouldBlock
                                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                                Err(_) => break,
                            }
                        }
                        (Vec::new(), Vec::new(), Instant::now())
                    })));
                } else {
                    let reader = BufReader::new(streams[ci].try_clone().expect("clone stream"));
                    handles.push(Some(scope.spawn(move || {
                        let mut reader = reader;
                        let mut digests = Vec::with_capacity(arrivals.len());
                        let mut latencies = Vec::with_capacity(arrivals.len());
                        let mut line = String::new();
                        for a in arrivals {
                            line.clear();
                            let n = reader.read_line(&mut line).expect("read load response");
                            assert!(n > 0, "connection closed before all responses arrived");
                            let recv =
                                u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                            latencies.push(recv.saturating_sub(a.at_micros));
                            let v = Value::parse(line.trim()).expect("response parses");
                            digests.push(digest(a.kind, &v));
                        }
                        (digests, latencies, Instant::now())
                    })));
                }
            }
            // Healthy clients finish on their own; the throttled one
            // is released only after they have, so it stays slow for
            // the entire measured window.
            let mut results: Vec<Option<ClientResult>> = (0..handles.len()).map(|_| None).collect();
            for ci in 0..handles.len() {
                if opts.slow_conn == Some(ci) {
                    continue;
                }
                results[ci] = Some(
                    handles[ci]
                        .take()
                        .expect("handle present")
                        .join()
                        .expect("load client"),
                );
            }
            stop_slow.store(true, Ordering::Relaxed);
            if let Some(ci) = opts.slow_conn {
                results[ci] = Some(
                    handles[ci]
                        .take()
                        .expect("handle present")
                        .join()
                        .expect("slow load client"),
                );
            }
            results
                .into_iter()
                .map(|r| r.expect("client joined"))
                .collect()
        });
        let wall_secs = per_conn
            .iter()
            .map(|(_, _, done)| done.duration_since(started).as_secs_f64())
            .fold(0.0f64, f64::max);

        server.request_shutdown();
        let service = server.join();
        drop(streams);
        let _ = std::fs::remove_file(&socket);

        let stats = service.stats();
        let latency = merged_latency(&telemetry, &baseline);
        let warm = merged_latency_where(&telemetry, &baseline, |s| s != CacheStatus::Cold);
        let passes = service.engine_passes() - passes_before;
        let equeries = engine_queries(&telemetry) - equeries_before;
        let realized =
            workload.requests as f64 / (workload.last_arrival_micros.max(1) as f64 / 1_000_000.0);
        let client_latencies: Vec<Vec<u64>> = per_conn.iter().map(|(_, l, _)| l.clone()).collect();
        RateOutcome {
            offered_qps: rate,
            realized_offered_qps: realized,
            requests: workload.requests,
            queries: workload.queries,
            achieved_qps: workload.requests as f64 / wall_secs.max(1e-9),
            wall_secs,
            p50_micros: latency.value_at_quantile(0.50),
            p99_micros: latency.value_at_quantile(0.99),
            p999_micros: latency.value_at_quantile(0.999),
            mean_micros: latency.mean(),
            latency_count: latency.count(),
            warm_p99_micros: warm.value_at_quantile(0.99),
            client_p99_micros: percentile(
                client_latencies.iter().flatten().copied().collect(),
                0.99,
            ),
            queue_depth_hwm: stats.queue_depth_hwm,
            responses_lost: stats.responses_lost,
            responses_lost_shutdown: stats.responses_lost_shutdown,
            responses_shed: stats.responses_shed,
            outbound_depth_hwm: stats.outbound_depth_hwm,
            writer_stalls: stats.writer_stalls,
            engine_passes: passes,
            coalesce_ratio: if passes == 0 {
                1.0
            } else {
                equeries as f64 / passes as f64
            },
            drain_cycles: telemetry.cycles() - cycles_before,
            client_latencies,
            digests: per_conn.into_iter().map(|(d, _, _)| d).collect(),
        }
    }

    /// What the slow-reader fairness scenario measured.
    pub(super) struct FairnessOutcome {
        pub rate_qps: f64,
        pub requests: usize,
        pub all_healthy_p99_micros: u64,
        pub slow_reader_healthy_p99_micros: u64,
        pub responses_shed: u64,
        pub mid_flight_losses: u64,
    }

    /// Runs one comfortably sub-knee rate twice — all clients healthy,
    /// then with connection 0 throttled to ~1 byte/ms — and compares
    /// the healthy connections' client-side p99 between the runs. The
    /// horizon is stretched so the throttled connection's response
    /// volume overflows its socket buffer and its bounded outbound
    /// queue: the shed policy has to actually engage for the isolation
    /// claim to mean anything.
    pub(super) fn fairness_scenario() -> FairnessOutcome {
        let rate = if quick() { 1_600.0 } else { 2_000.0 };
        let opts = RunOpts {
            slow_conn: None,
            horizon_micros: Some(2_000_000),
            outbound_depth: 256,
        };
        let healthy = run_rate(rate, 901, opts);
        let slowed = run_rate(
            rate,
            902,
            RunOpts {
                slow_conn: Some(0),
                ..opts
            },
        );
        let healthy_conns = |o: &RateOutcome| -> Vec<u64> {
            o.client_latencies
                .iter()
                .skip(1)
                .flatten()
                .copied()
                .collect()
        };
        FairnessOutcome {
            rate_qps: rate,
            requests: slowed.requests,
            all_healthy_p99_micros: percentile(healthy_conns(&healthy), 0.99),
            slow_reader_healthy_p99_micros: percentile(healthy_conns(&slowed), 0.99),
            responses_shed: slowed.responses_shed,
            mid_flight_losses: healthy.responses_lost + slowed.responses_lost,
        }
    }

    fn saturated(o: &RateOutcome) -> bool {
        o.achieved_qps < KNEE_FRACTION * o.realized_offered_qps
    }

    fn rate_row(o: &RateOutcome) -> Json {
        Json::obj()
            .field("offered_qps", o.offered_qps)
            .field("realized_offered_qps", o.realized_offered_qps)
            .field("achieved_qps", o.achieved_qps)
            .field("requests", o.requests)
            .field("queries", o.queries)
            .field("wall_seconds", o.wall_secs)
            .field("p50_micros", o.p50_micros)
            .field("p99_micros", o.p99_micros)
            .field("p999_micros", o.p999_micros)
            .field("mean_micros", o.mean_micros)
            .field("latency_count", o.latency_count)
            .field("warm_p99_micros", o.warm_p99_micros)
            .field("client_p99_micros", o.client_p99_micros)
            .field("queue_depth_hwm", o.queue_depth_hwm)
            .field("responses_lost", o.responses_lost)
            .field("responses_lost_shutdown", o.responses_lost_shutdown)
            .field("responses_shed", o.responses_shed)
            .field("outbound_depth_hwm", o.outbound_depth_hwm)
            .field("writer_stalls", o.writer_stalls)
            .field("engine_passes", o.engine_passes)
            .field("coalesce_ratio", o.coalesce_ratio)
            .field("drain_cycles", o.drain_cycles)
            .field("saturated", saturated(o))
    }

    pub(super) fn document() -> (Json, LoadGate) {
        println!("\n## open-loop load sweep (Poisson arrivals, Zipf popularity, mixed ops)");
        let mut rates: Vec<f64> = if quick() {
            vec![400.0, 1_600.0, 6_400.0, 25_600.0]
        } else {
            vec![500.0, 2_000.0, 8_000.0, 32_000.0]
        };
        // Fast hardware may swallow the whole initial list; escalate
        // ×4 until the knee shows (bounded so CI terminates).
        const MAX_ESCALATIONS: usize = 4;
        let initial_len = rates.len();

        let mut outcomes: Vec<RateOutcome> = Vec::new();
        let mut knee_idx: Option<usize> = None;
        let mut i = 0;
        while i < rates.len() {
            let o = run_rate(rates[i], i, RunOpts::default());
            println!(
                "rate {:>9.0} q/s offered  {:>9.0} achieved  p50 {:>7}us  p99 {:>8}us  \
                 warm-p99 {:>7}us  hwm {:>5}  coalesce {:>5.1}x{}",
                o.realized_offered_qps,
                o.achieved_qps,
                o.p50_micros,
                o.p99_micros,
                o.warm_p99_micros,
                o.queue_depth_hwm,
                o.coalesce_ratio,
                if saturated(&o) { "  << knee" } else { "" },
            );
            let is_knee = saturated(&o);
            outcomes.push(o);
            if is_knee {
                knee_idx = Some(i);
                break;
            }
            if i == rates.len() - 1 && rates.len() < initial_len + MAX_ESCALATIONS {
                let next = rates[i] * 4.0;
                rates.push(next);
            }
            i += 1;
        }

        // Reproducibility: the lowest rate again, same seed — the
        // schedule is identical by construction, and the response
        // digests (verdict content) must match bit for bit.
        let rerun = run_rate(rates[0], rates.len() + 1, RunOpts::default());
        let deterministic =
            rerun.requests == outcomes[0].requests && rerun.digests == outcomes[0].digests;
        println!(
            "determinism re-run at {:.0} q/s: {} ({} responses compared)",
            rates[0],
            if deterministic {
                "identical"
            } else {
                "DIVERGED"
            },
            rerun.requests,
        );

        let fairness = fairness_scenario();
        println!(
            "slow-reader fairness at {:.0} q/s: healthy-conn p99 {}us beside a throttled \
             peer vs {}us all-healthy ({} responses shed to the slow reader)",
            fairness.rate_qps,
            fairness.slow_reader_healthy_p99_micros,
            fairness.all_healthy_p99_micros,
            fairness.responses_shed,
        );

        let sub_knee = knee_idx
            .and_then(|k| k.checked_sub(1))
            .map(|k| &outcomes[k]);
        let responses_lost: u64 =
            outcomes.iter().map(|o| o.responses_lost).sum::<u64>() + fairness.mid_flight_losses;
        let gate = LoadGate {
            knee_detected: sub_knee.is_some(),
            knee_offered_qps: knee_idx.map_or(0.0, |k| outcomes[k].realized_offered_qps),
            sub_knee_offered_qps: sub_knee.map_or(0.0, |o| o.realized_offered_qps),
            sub_knee_p99_micros: sub_knee.map_or(u64::MAX, |o| o.p99_micros),
            warm_p99_micros: sub_knee.map_or(u64::MAX, |o| o.warm_p99_micros),
            deterministic,
            responses_lost,
            all_healthy_p99_micros: fairness.all_healthy_p99_micros,
            slow_reader_healthy_p99_micros: fairness.slow_reader_healthy_p99_micros,
        };
        if let (Some(k), Some(s)) = (knee_idx, sub_knee) {
            println!(
                "knee at {:.0} q/s offered (achieved {:.0}); highest healthy rate {:.0} q/s, \
                 p99 {}us (warm {}us)",
                outcomes[k].realized_offered_qps,
                outcomes[k].achieved_qps,
                s.realized_offered_qps,
                s.p99_micros,
                s.warm_p99_micros,
            );
        }

        let corpus_rows: Vec<Json> = corpus()
            .into_iter()
            .map(|(name, spec_text, planar)| {
                Json::obj()
                    .field("name", name)
                    .field("spec", spec_text.as_str())
                    .field("planar", planar)
            })
            .collect();
        let doc = Json::obj()
            .field("schema", "planartest-bench/load/v2")
            .field("quick_mode", quick())
            .field("seed", LOAD_SEED)
            .field("connections", CONNECTIONS as u64)
            .field("corpus", corpus_rows)
            .field(
                "mix",
                Json::obj()
                    .field("warm_planarity_query", 0.72)
                    .field("hereditary_query", 0.08)
                    .field("fresh_seed_query", 0.05)
                    .field("batch_of_3", 0.04)
                    .field("stats", 0.07)
                    .field("ingest", 0.04),
            )
            .field("rates", outcomes.iter().map(rate_row).collect::<Vec<_>>())
            .field(
                "knee",
                Json::obj()
                    .field("detected", gate.knee_detected)
                    .field("criterion", "achieved < 0.9 x realized offered")
                    .field(
                        "knee_offered_qps",
                        knee_idx.map_or(0.0, |k| outcomes[k].realized_offered_qps),
                    )
                    .field("sub_knee_offered_qps", gate.sub_knee_offered_qps),
            )
            .field(
                "determinism",
                Json::obj()
                    .field("verified", deterministic)
                    .field("rate_qps", rates[0])
                    .field("responses_compared", rerun.requests),
            )
            .field(
                "fairness",
                Json::obj()
                    .field("rate_qps", fairness.rate_qps)
                    .field("requests", fairness.requests)
                    .field("all_healthy_p99_micros", fairness.all_healthy_p99_micros)
                    .field(
                        "slow_reader_healthy_p99_micros",
                        fairness.slow_reader_healthy_p99_micros,
                    )
                    .field("responses_shed", fairness.responses_shed)
                    .field("factor", LoadGate::FAIRNESS_FACTOR)
                    .field("slack_micros", LoadGate::FAIRNESS_SLACK_MICROS)
                    .field("pass", gate.fairness_ok()),
            )
            .field(
                "gate",
                Json::obj()
                    .field("knee_detected", gate.knee_detected)
                    .field("knee_offered_qps", gate.knee_offered_qps)
                    .field("knee_floor_qps", LoadGate::KNEE_FLOOR_QPS)
                    .field("sub_knee_p99_micros", gate.sub_knee_p99_micros)
                    .field("p99_slo_micros", LoadGate::P99_SLO_MICROS)
                    .field("warm_p99_micros", gate.warm_p99_micros)
                    .field("warm_p99_ceil_micros", LoadGate::WARM_P99_CEIL_MICROS)
                    .field("deterministic", gate.deterministic)
                    .field("responses_lost", gate.responses_lost)
                    .field("fairness_pass", gate.fairness_ok())
                    .field("pass", gate.pass()),
            );
        (doc, gate)
    }
}

/// Builds the benchmark document (also printed as tables) plus the gate.
#[cfg(unix)]
#[must_use]
pub fn load_bench_document() -> (Json, LoadGate) {
    sweep::document()
}

/// Non-unix hosts have no unix sockets; the sweep is skipped and the
/// gate is vacuous (recorded as such in the artifact).
#[cfg(not(unix))]
#[must_use]
pub fn load_bench_document() -> (Json, LoadGate) {
    println!("load sweep skipped (no unix sockets on this platform)");
    (
        Json::obj()
            .field("schema", "planartest-bench/load/v2")
            .field("skipped", true),
        LoadGate {
            knee_detected: true,
            knee_offered_qps: LoadGate::KNEE_FLOOR_QPS,
            sub_knee_offered_qps: 0.0,
            sub_knee_p99_micros: 0,
            warm_p99_micros: 0,
            deterministic: true,
            responses_lost: 0,
            all_healthy_p99_micros: 0,
            slow_reader_healthy_p99_micros: 0,
        },
    )
}

/// Runs the benchmark and writes `BENCH_load.json` into the current
/// directory (the repo root under `cargo run`); returns the CI gate.
pub fn load_bench() -> LoadGate {
    let (doc, gate) = load_bench_document();
    let path = "BENCH_load.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_load.json");
    println!("wrote {path}");
    gate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_seed_deterministic() {
        let a = build_workload(11, 3_000.0, 80_000);
        let b = build_workload(11, 3_000.0, 80_000);
        assert_eq!(a, b);
        assert_ne!(a, build_workload(12, 3_000.0, 80_000));
    }

    #[test]
    fn workload_covers_the_mix_and_balances_connections() {
        let w = build_workload(5, 20_000.0, 400_000);
        assert_eq!(w.per_conn.len(), CONNECTIONS);
        let sizes: Vec<usize> = w.per_conn.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), w.requests);
        assert!(sizes.iter().all(|&s| s.abs_diff(sizes[0]) <= 1));
        let mut kinds = [0usize; 4];
        for a in w.per_conn.iter().flatten() {
            kinds[match a.kind {
                OpKind::Query => 0,
                OpKind::Batch => 1,
                OpKind::Stats => 2,
                OpKind::Ingest => 3,
            }] += 1;
            assert!(a.line.ends_with('\n'));
            assert!(a.line.starts_with('{'));
        }
        assert!(
            kinds.iter().all(|&k| k > 0),
            "all op kinds present: {kinds:?}"
        );
        assert!(
            kinds[0] > kinds[1] + kinds[2] + kinds[3],
            "queries dominate"
        );
        // Arrivals are in schedule order on every connection.
        for conn in &w.per_conn {
            assert!(conn.windows(2).all(|p| p[0].at_micros <= p[1].at_micros));
        }
    }

    #[test]
    fn gate_thresholds() {
        let base = LoadGate {
            knee_detected: true,
            knee_offered_qps: LoadGate::KNEE_FLOOR_QPS,
            sub_knee_offered_qps: 1000.0,
            sub_knee_p99_micros: LoadGate::P99_SLO_MICROS,
            warm_p99_micros: LoadGate::WARM_P99_CEIL_MICROS,
            deterministic: true,
            responses_lost: 0,
            all_healthy_p99_micros: 1_000,
            slow_reader_healthy_p99_micros: LoadGate::FAIRNESS_FACTOR * 1_000
                + LoadGate::FAIRNESS_SLACK_MICROS,
        };
        assert!(base.pass(), "every bound exactly at its limit passes");
        assert!(!LoadGate {
            knee_detected: false,
            ..base
        }
        .pass());
        assert!(!LoadGate {
            knee_offered_qps: LoadGate::KNEE_FLOOR_QPS - 1.0,
            ..base
        }
        .pass());
        assert!(!LoadGate {
            sub_knee_p99_micros: LoadGate::P99_SLO_MICROS + 1,
            ..base
        }
        .pass());
        assert!(!LoadGate {
            warm_p99_micros: LoadGate::WARM_P99_CEIL_MICROS + 1,
            ..base
        }
        .pass());
        assert!(!LoadGate {
            deterministic: false,
            ..base
        }
        .pass());
        assert!(!LoadGate {
            responses_lost: 1,
            ..base
        }
        .pass());
        assert!(!LoadGate {
            slow_reader_healthy_p99_micros: base.slow_reader_healthy_p99_micros + 1,
            ..base
        }
        .pass());
    }

    #[test]
    fn corpus_specs_parse() {
        for (_, spec_text, planar) in corpus() {
            let parsed = planartest_graph::generators::spec::parse(&spec_text).expect("spec");
            let _ = (parsed, planar);
        }
    }
}
