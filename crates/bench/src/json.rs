//! JSON document building for benchmark artifacts.
//!
//! The value type lives in [`planartest_service::wire`] (the service's
//! offline JSON implementation — parser, compact writer, and the
//! [`Json::pretty`] form the `BENCH_*.json` artifacts use); this module
//! just re-exports it under the name the bench writers grew up with, so
//! there is exactly one JSON implementation in the workspace.

pub use planartest_service::wire::Value as Json;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_shape() {
        let doc = Json::obj()
            .field("version", 1u64)
            .field("name", "bench \"quoted\"\n")
            .field("ok", true)
            .field("nan", f64::NAN)
            .field("items", vec![Json::UInt(1), Json::Float(2.5)])
            .field("nested", Json::obj().field("x", -3i64));
        let text = doc.pretty();
        assert!(text.contains("\"version\": 1"));
        assert!(text.contains("\\\"quoted\\\"\\n"));
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("2.5"));
        assert!(text.contains("\"x\": -3"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn field_overwrites() {
        let doc = Json::obj().field("a", 1u64).field("a", 2u64);
        assert_eq!(doc, Json::obj().field("a", 2u64));
    }

    #[test]
    fn empty_collections() {
        assert_eq!(Json::Arr(Vec::new()).pretty(), "[]\n");
        assert_eq!(Json::obj().pretty(), "{}\n");
    }
}
