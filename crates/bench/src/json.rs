//! A minimal JSON document builder (the workspace is offline, so no
//! serde): insertion-ordered objects, arrays, numbers, strings — enough
//! for machine-readable benchmark artifacts.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (emitted without decimal point).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float (non-finite values are emitted as `null`).
    Float(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds/overwrites `key` in an object (panics on non-objects —
    /// builder misuse, not data-dependent).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                fields.retain(|(k, _)| k != key);
                fields.push((key.to_string(), value.into()));
                self
            }
            other => panic!("field() on non-object {other:?}"),
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        use fmt::Write as _;
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(x) => {
                let _ = write!(out, "{x}");
            }
            Json::UInt(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Float(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::UInt(x)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::UInt(x as u64)
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Int(x)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_shape() {
        let doc = Json::obj()
            .field("version", 1u64)
            .field("name", "bench \"quoted\"\n")
            .field("ok", true)
            .field("nan", f64::NAN)
            .field("items", vec![Json::UInt(1), Json::Float(2.5)])
            .field("nested", Json::obj().field("x", -3i64));
        let text = doc.pretty();
        assert!(text.contains("\"version\": 1"));
        assert!(text.contains("\\\"quoted\\\"\\n"));
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("2.5"));
        assert!(text.contains("\"x\": -3"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn field_overwrites() {
        let doc = Json::obj().field("a", 1u64).field("a", 2u64);
        assert_eq!(doc, Json::obj().field("a", 2u64));
    }

    #[test]
    fn empty_collections() {
        assert_eq!(Json::Arr(Vec::new()).pretty(), "[]\n");
        assert_eq!(Json::obj().pretty(), "{}\n");
    }
}
