//! Runtime benchmark: serial vs parallel engine throughput, tester
//! n-sweeps, and trial-parallel sweep scaling — written both as a
//! human-readable table and as machine-readable `BENCH_runtime.json`
//! so the performance trajectory is tracked from PR to PR.

use std::time::Instant;

use planartest_core::{PlanarityTester, TestOutcome};
use planartest_graph::generators::planar;
use planartest_graph::{Graph, NodeId};
use planartest_sim::runtime::{auto_threads, Backend, TrialRunner};
use planartest_sim::{
    Engine, Msg, NodeLogic, Outbox, ParallelEngine, ParallelNodeLogic, SimConfig,
};

use crate::json::Json;
use crate::quick;

/// The flood workload used for raw engine throughput, expressed both
/// ways so each engine runs its native logic form.
struct FloodLogic {
    seen: Vec<bool>,
}

impl NodeLogic for FloodLogic {
    fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        if node.index() == 0 {
            self.seen[0] = true;
            out.send_all(Msg::words(&[1]));
        }
    }
    fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        if !self.seen[node.index()] && !inbox.is_empty() {
            self.seen[node.index()] = true;
            out.send_all(Msg::words(&[1]));
        }
    }
}

struct FloodProgram;

impl ParallelNodeLogic for FloodProgram {
    type State = bool;
    fn init(&self, node: NodeId, seen: &mut bool, out: &mut Outbox<'_>) {
        if node.index() == 0 {
            *seen = true;
            out.send_all(Msg::words(&[1]));
        }
    }
    fn round(&self, _: NodeId, seen: &mut bool, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        if !*seen && !inbox.is_empty() {
            *seen = true;
            out.send_all(Msg::words(&[1]));
        }
    }
}

/// Median-of-`reps` wall-clock seconds for `f` (quick mode: 1 rep).
fn time_median<F: FnMut()>(f: F) -> f64 {
    time_median_reps(if quick() { 1 } else { 3 }, f)
}

/// Median-of-`reps` wall-clock seconds for `f` with an explicit rep
/// count (the gated measurements keep 3 reps even in quick mode, so a
/// single noisy sample can't flip the CI gate).
fn time_median_reps<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Thread counts to sweep: 1, 2, 4, … up to the hardware (always
/// includes the hardware count itself).
fn thread_sweep() -> Vec<usize> {
    let max = auto_threads();
    let mut counts = vec![1];
    let mut t = 2;
    while t < max {
        counts.push(t);
        t *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts.dedup();
    counts
}

/// Raw engine throughput on a flood over a triangulated grid
/// (`n = side²`): serial engine vs worker pool at each thread count.
fn engine_throughput(side: usize) -> Json {
    let fam = planar::triangulated_grid(side, side);
    let g = &fam.graph;

    let mut serial_rounds = 0u64;
    let serial_secs = time_median(|| {
        let mut engine = Engine::new(g, SimConfig::default());
        let mut logic = FloodLogic {
            seen: vec![false; g.n()],
        };
        serial_rounds = engine.run(&mut logic, 1_000_000).expect("flood").rounds;
    });
    println!(
        "engine flood   n={:<6} serial                 {:>10.1} rounds/s ({serial_rounds} rounds)",
        g.n(),
        serial_rounds as f64 / serial_secs
    );

    let mut parallel = Vec::new();
    for threads in thread_sweep() {
        let mut rounds = 0u64;
        let secs = time_median(|| {
            let mut engine = ParallelEngine::new(g, SimConfig::default()).with_threads(threads);
            let mut states = vec![false; g.n()];
            rounds = engine
                .run(&FloodProgram, &mut states, 1_000_000)
                .expect("flood")
                .rounds;
        });
        assert_eq!(rounds, serial_rounds, "backends must agree on round count");
        let speedup = serial_secs / secs;
        println!(
            "engine flood   n={:<6} parallel(threads={:<2}) {:>10.1} rounds/s (speedup {speedup:.2}x)",
            g.n(),
            threads,
            rounds as f64 / secs
        );
        parallel.push(
            Json::obj()
                .field("threads", threads)
                .field("seconds", secs)
                .field("rounds_per_sec", rounds as f64 / secs)
                .field("speedup_vs_serial", speedup),
        );
    }

    Json::obj()
        .field("workload", "flood_triangulated_grid")
        .field("n", g.n())
        .field("m", g.m())
        .field("rounds", serial_rounds)
        .field(
            "serial",
            Json::obj()
                .field("seconds", serial_secs)
                .field("rounds_per_sec", serial_rounds as f64 / serial_secs),
        )
        .field("parallel", parallel)
}

/// Measures one tester workload on the three backends; returns the row
/// plus the parallel-vs-serial speedup. `reps` overrides the default
/// rep policy (the CI gate keeps 3 reps even in quick mode so one
/// noisy sample can't flip it).
fn tester_workload(side: usize, reps: usize) -> (Json, f64) {
    let fam = planar::triangulated_grid(side, side);
    let g = &fam.graph;
    let cfg = crate::practical_cfg(0.1);
    let mut rounds = 0u64;
    let serial_secs = time_median_reps(reps, || {
        let out = PlanarityTester::new(cfg.clone())
            .with_backend(Backend::Serial)
            .run(g)
            .expect("run");
        assert!(out.accepted());
        rounds = out.rounds();
    });
    let parallel_secs = time_median_reps(reps, || {
        let out = PlanarityTester::new(cfg.clone())
            .with_backend(Backend::Parallel { threads: 0 })
            .run(g)
            .expect("run");
        assert!(out.accepted());
        assert_eq!(out.rounds(), rounds, "backends must agree");
    });
    let auto_secs = time_median(|| {
        let out = PlanarityTester::new(cfg.clone())
            .with_backend(Backend::Auto)
            .run(g)
            .expect("run");
        assert!(out.accepted());
        assert_eq!(out.rounds(), rounds, "backends must agree");
    });
    let speedup = serial_secs / parallel_secs;
    println!(
        "tester sweep   n={:<6} serial {serial_secs:>8.3}s  parallel {parallel_secs:>8.3}s \
         (speedup {speedup:.2}x)  auto {auto_secs:>8.3}s  ({rounds} rounds)",
        g.n()
    );
    let row = Json::obj()
        .field("n", g.n())
        .field("m", g.m())
        .field("rounds", rounds)
        .field("serial_seconds", serial_secs)
        .field("parallel_seconds", parallel_secs)
        .field("speedup_vs_serial", speedup)
        .field("auto_seconds", auto_secs);
    (row, speedup)
}

/// Tester wall-clock vs `n`: serial backend vs parallel-at-max-threads
/// vs the default `Auto` backend. Returns the rows plus the
/// parallel-vs-serial speedup and size of the gated (largest) instance.
///
/// The largest instance — the CI gate — is sized to at least
/// [`Backend::AUTO_MIN_NODES`] in *both* modes: below that width the
/// code's own `Auto` calibration says pooled execution loses to serial,
/// so gating a smaller workload would demand a speedup the design
/// itself does not promise.
fn tester_n_sweep() -> (Json, f64, usize) {
    let sides: Vec<usize> = if quick() {
        vec![8, 16, 48]
    } else {
        vec![16, 32, 64]
    };
    let gate_side = *sides.last().expect("non-empty sweep");
    assert!(
        gate_side * gate_side >= Backend::AUTO_MIN_NODES,
        "gated workload narrower than the Auto pool threshold"
    );
    let mut rows = Vec::new();
    let (mut largest_speedup, mut largest_n) = (f64::NAN, 0);
    for side in sides {
        let reps = if side == gate_side || !quick() { 3 } else { 1 };
        let (row, speedup) = tester_workload(side, reps);
        largest_speedup = speedup;
        largest_n = side * side;
        rows.push(row);
    }
    (Json::Arr(rows), largest_speedup, largest_n)
}

/// Trial-parallel Monte-Carlo sweep (the e1 workload shape): the same
/// seeded tester runs fanned across cores by [`TrialRunner`].
fn trial_sweep() -> Json {
    let side = if quick() { 10 } else { 20 };
    let trials = if quick() { 4 } else { 16 };
    let fam = planar::triangulated_grid(side, side);
    let g: &Graph = &fam.graph;

    let run_trial = |seed: usize| {
        let cfg = crate::practical_cfg(0.1).with_seed(seed as u64);
        PlanarityTester::new(cfg).run(g).expect("run").accepted()
    };

    let mut verdicts_serial = Vec::new();
    let serial_secs = time_median(|| {
        verdicts_serial = TrialRunner::new(1).run(trials, run_trial);
    });
    let mut verdicts_parallel = Vec::new();
    let parallel_secs = time_median(|| {
        verdicts_parallel = TrialRunner::auto().run(trials, run_trial);
    });
    assert_eq!(
        verdicts_parallel, verdicts_serial,
        "trial order must be deterministic"
    );
    let speedup = serial_secs / parallel_secs;
    println!(
        "trial sweep    {trials} trials n={:<5} serial {serial_secs:>8.3}s  parallel({}) {parallel_secs:>8.3}s  speedup {speedup:.2}x",
        g.n(),
        TrialRunner::auto().threads(),
    );

    Json::obj()
        .field("workload", "tester_acceptance_sweep")
        .field("n", g.n())
        .field("trials", trials)
        .field("accepted", verdicts_serial.iter().filter(|&&a| a).count())
        .field("serial_seconds", serial_secs)
        .field("parallel_threads", TrialRunner::auto().threads())
        .field("parallel_seconds", parallel_secs)
        .field("speedup_vs_serial", speedup)
}

/// Batched vs sequential Monte-Carlo acceptance sweep: the same seeded
/// tester instances served one full `run` per seed (the sequential
/// per-instance path) vs one instance-multiplexed
/// [`PlanarityTester::run_many`] pass. Per-instance outcomes are
/// asserted bit-identical; only wall-clock may differ. Returns the row
/// plus the batched-over-sequential speedup (gated — median-of-3 even
/// in quick mode).
fn batch_sweep() -> (Json, f64, usize) {
    let side = if quick() { 16 } else { 32 };
    let trials = 16usize;
    let fam = planar::triangulated_grid(side, side);
    let g: &Graph = &fam.graph;
    // The paper-faithful configuration (derived Θ(log 1/ε) phase count,
    // not the experiment shortcut): Monte-Carlo trials amplify the
    // tester's one-sided soundness, which is exactly the workload
    // instance-multiplexing exists for.
    let eps = 0.2;
    let cfg = planartest_core::TesterConfig::new(eps);
    let seeds: Vec<u64> = (0..trials as u64).collect();

    let mut sequential: Vec<TestOutcome> = Vec::new();
    let sequential_secs = time_median_reps(3, || {
        sequential = seeds
            .iter()
            .map(|&seed| {
                PlanarityTester::new(cfg.clone().with_seed(seed))
                    .run(g)
                    .expect("run")
            })
            .collect();
    });
    let mut batched: Vec<TestOutcome> = Vec::new();
    let batched_secs = time_median_reps(3, || {
        batched = PlanarityTester::new(cfg.clone())
            .run_many(g, &seeds)
            .expect("run");
    });
    for (seq, bat) in sequential.iter().zip(&batched) {
        assert_eq!(bat.rejections, seq.rejections, "batched verdict diverged");
        assert_eq!(bat.stats, seq.stats, "batched stats diverged");
    }
    let speedup = sequential_secs / batched_secs;
    println!(
        "batch sweep    {trials} trials n={:<5} sequential {sequential_secs:>8.3}s  \
         batched {batched_secs:>8.3}s  speedup {speedup:.2}x",
        g.n(),
    );
    let row = Json::obj()
        .field("workload", "tester_acceptance_sweep_batched")
        .field("n", g.n())
        .field("epsilon", eps)
        .field("phases", cfg.phases(g.n()))
        .field("trials", trials)
        .field("accepted", batched.iter().filter(|o| o.accepted()).count())
        .field("sequential_seconds", sequential_secs)
        .field("batched_seconds", batched_secs)
        .field("speedup_vs_sequential", speedup);
    (row, speedup, trials)
}

/// The CI regression gate computed alongside the benchmark document:
/// the parallel backend at max threads must not lose to serial on the
/// largest `tester_n_sweep` workload, and the instance-multiplexed
/// Monte-Carlo sweep must not lose to the sequential-per-instance path.
#[derive(Debug, Clone, Copy)]
pub struct BenchGate {
    /// Node count of the gated (largest) tester workload.
    pub largest_n: usize,
    /// Serial wall-clock over parallel wall-clock on that workload.
    pub speedup: f64,
    /// Worker threads the parallel measurement resolved to.
    pub max_threads: usize,
    /// Trials in the gated batched acceptance sweep.
    pub batch_trials: usize,
    /// Sequential-per-instance wall-clock over batched wall-clock on
    /// the Monte-Carlo acceptance sweep.
    pub batch_speedup: f64,
}

impl BenchGate {
    /// Whether the gate passes: both speedups at or above parity. On a
    /// single-hardware-thread machine there is no pool to gate — the
    /// "parallel" run takes the same inline path as serial, so that
    /// ratio is pure timing noise and its clause is vacuously true. The
    /// batching clause is *never* vacuous: multiplexing pays off on one
    /// thread (that is the point — the round-loop fixed cost amortizes,
    /// no pool required).
    #[must_use]
    pub fn pass(&self) -> bool {
        (self.max_threads <= 1 || self.speedup >= 1.0) && self.batch_speedup >= 1.0
    }
}

/// Builds the full benchmark document (also printed as tables) and the
/// CI gate derived from it.
#[must_use]
pub fn runtime_bench_document() -> (Json, BenchGate) {
    println!("\n## runtime benchmark (serial vs parallel vs batched)");
    let side = if quick() { 24 } else { 64 };
    let (tester_rows, speedup, largest_n) = tester_n_sweep();
    let (batch_row, batch_speedup, batch_trials) = batch_sweep();
    let gate = BenchGate {
        largest_n,
        speedup,
        max_threads: auto_threads(),
        batch_trials,
        batch_speedup,
    };
    let doc = Json::obj()
        .field("schema", "planartest-bench/runtime/v1")
        .field("quick_mode", quick())
        .field("hardware_threads", auto_threads())
        .field("engine_throughput", engine_throughput(side))
        .field("tester_n_sweep", tester_rows)
        .field("trial_sweep", trial_sweep())
        .field("batch_sweep", batch_row)
        .field(
            "gate",
            Json::obj()
                .field("workload", "tester_n_sweep_largest")
                .field("n", gate.largest_n)
                .field("max_threads", gate.max_threads)
                .field("parallel_speedup_at_max_threads", gate.speedup)
                .field("batch_trials", gate.batch_trials)
                .field("batch_speedup_vs_sequential", gate.batch_speedup)
                .field("pass", gate.pass()),
        );
    (doc, gate)
}

/// Runs the benchmark and writes `BENCH_runtime.json` into the current
/// directory (the repo root under `cargo run`); returns the CI gate.
pub fn runtime_bench() -> BenchGate {
    let (doc, gate) = runtime_bench_document();
    let path = "BENCH_runtime.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_runtime.json");
    println!("wrote {path}");
    gate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sweep_starts_at_one() {
        let sweep = thread_sweep();
        assert_eq!(sweep[0], 1);
        assert!(sweep.iter().all(|&t| t >= 1));
        assert!(sweep.contains(&auto_threads()) || auto_threads() == 1);
    }

    #[test]
    fn tester_workload_row_has_required_fields() {
        // One tiny workload exercises the row builder and all three
        // backends; the full document (with the gate-sized instance) is
        // too heavy for a debug-build test and runs for real in CI via
        // `runtime_bench --check` on the release binary.
        let (row, speedup) = tester_workload(4, 1);
        let text = row.pretty();
        for key in [
            "rounds",
            "serial_seconds",
            "parallel_seconds",
            "speedup_vs_serial",
            "auto_seconds",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        assert!(speedup.is_finite() && speedup > 0.0);
    }

    #[test]
    fn gate_workload_is_wide_enough_for_the_pool() {
        // Both mode's largest sweep instance must be at least as wide
        // as the Auto pool threshold — gating a narrower workload would
        // demand a speedup the backend's own calibration rejects.
        for largest_side in [48usize, 64] {
            assert!(largest_side * largest_side >= Backend::AUTO_MIN_NODES);
        }
    }

    #[test]
    fn gate_threshold_is_parity() {
        let gate = |speedup: f64, max_threads: usize, batch_speedup: f64| BenchGate {
            largest_n: 1,
            speedup,
            max_threads,
            batch_trials: 8,
            batch_speedup,
        };
        assert!(gate(1.0, 4, 1.0).pass());
        assert!(!gate(0.99, 4, 1.0).pass());
        // One hardware thread: no pool to gate, noise must not fail CI.
        assert!(gate(0.99, 1, 1.0).pass());
        // The batching clause is never vacuous — multiplexing must pay
        // off even on one thread.
        assert!(!gate(1.0, 1, 0.99).pass());
        assert!(gate(1.0, 1, 2.5).pass());
    }
}
