//! Runtime benchmark: serial vs parallel engine throughput, tester
//! n-sweeps, and trial-parallel sweep scaling — written both as a
//! human-readable table and as machine-readable `BENCH_runtime.json`
//! so the performance trajectory is tracked from PR to PR.

use std::hint::black_box;
use std::time::Instant;

use planartest_core::stage2::pack;
use planartest_core::{PlanarityTester, TestOutcome};
use planartest_graph::generators::planar;
use planartest_graph::{Graph, NodeId};
use planartest_sim::runtime::{auto_threads, Backend, TrialRunner};
use planartest_sim::{
    Engine, LaneBits, Msg, NodeLogic, Outbox, ParallelEngine, ParallelNodeLogic, SimConfig,
};

use crate::json::Json;
use crate::quick;

/// The flood workload used for raw engine throughput, expressed both
/// ways so each engine runs its native logic form.
struct FloodLogic {
    seen: Vec<bool>,
}

impl NodeLogic for FloodLogic {
    fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        if node.index() == 0 {
            self.seen[0] = true;
            out.send_all(Msg::words(&[1]));
        }
    }
    fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        if !self.seen[node.index()] && !inbox.is_empty() {
            self.seen[node.index()] = true;
            out.send_all(Msg::words(&[1]));
        }
    }
}

struct FloodProgram;

impl ParallelNodeLogic for FloodProgram {
    type State = bool;
    fn init(&self, node: NodeId, seen: &mut bool, out: &mut Outbox<'_>) {
        if node.index() == 0 {
            *seen = true;
            out.send_all(Msg::words(&[1]));
        }
    }
    fn round(&self, _: NodeId, seen: &mut bool, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        if !*seen && !inbox.is_empty() {
            *seen = true;
            out.send_all(Msg::words(&[1]));
        }
    }
}

/// Median-of-`reps` wall-clock seconds for `f` (quick mode: 1 rep).
fn time_median<F: FnMut()>(f: F) -> f64 {
    time_median_reps(if quick() { 1 } else { 3 }, f)
}

/// Median-of-`reps` wall-clock seconds for `f` with an explicit rep
/// count (the gated measurements keep 3 reps even in quick mode, so a
/// single noisy sample can't flip the CI gate).
fn time_median_reps<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Thread counts to sweep: 1, 2, 4, … up to the hardware (always
/// includes the hardware count itself).
fn thread_sweep() -> Vec<usize> {
    let max = auto_threads();
    let mut counts = vec![1];
    let mut t = 2;
    while t < max {
        counts.push(t);
        t *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts.dedup();
    counts
}

/// Raw engine throughput on a flood over a triangulated grid
/// (`n = side²`): serial engine vs worker pool at each thread count.
fn engine_throughput(side: usize) -> Json {
    let fam = planar::triangulated_grid(side, side);
    let g = &fam.graph;

    let mut serial_rounds = 0u64;
    let serial_secs = time_median(|| {
        let mut engine = Engine::new(g, SimConfig::default());
        let mut logic = FloodLogic {
            seen: vec![false; g.n()],
        };
        serial_rounds = engine.run(&mut logic, 1_000_000).expect("flood").rounds;
    });
    println!(
        "engine flood   n={:<6} serial                 {:>10.1} rounds/s ({serial_rounds} rounds)",
        g.n(),
        serial_rounds as f64 / serial_secs
    );

    let mut parallel = Vec::new();
    for threads in thread_sweep() {
        let mut rounds = 0u64;
        let secs = time_median(|| {
            let mut engine = ParallelEngine::new(g, SimConfig::default()).with_threads(threads);
            let mut states = vec![false; g.n()];
            rounds = engine
                .run(&FloodProgram, &mut states, 1_000_000)
                .expect("flood")
                .rounds;
        });
        assert_eq!(rounds, serial_rounds, "backends must agree on round count");
        let speedup = serial_secs / secs;
        println!(
            "engine flood   n={:<6} parallel(threads={:<2}) {:>10.1} rounds/s (speedup {speedup:.2}x)",
            g.n(),
            threads,
            rounds as f64 / secs
        );
        parallel.push(
            Json::obj()
                .field("threads", threads)
                .field("seconds", secs)
                .field("rounds_per_sec", rounds as f64 / secs)
                .field("speedup_vs_serial", speedup),
        );
    }

    Json::obj()
        .field("workload", "flood_triangulated_grid")
        .field("n", g.n())
        .field("m", g.m())
        .field("rounds", serial_rounds)
        .field(
            "serial",
            Json::obj()
                .field("seconds", serial_secs)
                .field("rounds_per_sec", serial_rounds as f64 / serial_secs),
        )
        .field("parallel", parallel)
}

/// Measures one tester workload on the three backends; returns the row
/// plus the parallel-vs-serial speedup. `reps` overrides the default
/// rep policy (the CI gate keeps 3 reps even in quick mode so one
/// noisy sample can't flip it).
fn tester_workload(side: usize, reps: usize) -> (Json, f64) {
    let fam = planar::triangulated_grid(side, side);
    let g = &fam.graph;
    let cfg = crate::practical_cfg(0.1);
    let mut rounds = 0u64;
    let serial_secs = time_median_reps(reps, || {
        let out = PlanarityTester::new(cfg.clone())
            .with_backend(Backend::Serial)
            .run(g)
            .expect("run");
        assert!(out.accepted());
        rounds = out.rounds();
    });
    let parallel_secs = time_median_reps(reps, || {
        let out = PlanarityTester::new(cfg.clone())
            .with_backend(Backend::Parallel { threads: 0 })
            .run(g)
            .expect("run");
        assert!(out.accepted());
        assert_eq!(out.rounds(), rounds, "backends must agree");
    });
    let auto_secs = time_median(|| {
        let out = PlanarityTester::new(cfg.clone())
            .with_backend(Backend::Auto)
            .run(g)
            .expect("run");
        assert!(out.accepted());
        assert_eq!(out.rounds(), rounds, "backends must agree");
    });
    let speedup = serial_secs / parallel_secs;
    println!(
        "tester sweep   n={:<6} serial {serial_secs:>8.3}s  parallel {parallel_secs:>8.3}s \
         (speedup {speedup:.2}x)  auto {auto_secs:>8.3}s  ({rounds} rounds)",
        g.n()
    );
    let row = Json::obj()
        .field("n", g.n())
        .field("m", g.m())
        .field("rounds", rounds)
        .field("serial_seconds", serial_secs)
        .field("parallel_seconds", parallel_secs)
        .field("speedup_vs_serial", speedup)
        .field("auto_seconds", auto_secs);
    (row, speedup)
}

/// Tester wall-clock vs `n`: serial backend vs parallel-at-max-threads
/// vs the default `Auto` backend. Returns the rows plus the
/// parallel-vs-serial speedup and size of the gated (largest) instance.
///
/// The largest instance — the CI gate — is sized to at least
/// [`Backend::AUTO_MIN_NODES`] in *both* modes: below that width the
/// code's own `Auto` calibration says pooled execution loses to serial,
/// so gating a smaller workload would demand a speedup the design
/// itself does not promise.
fn tester_n_sweep() -> (Json, f64, usize) {
    let sides: Vec<usize> = if quick() {
        vec![8, 16, 48]
    } else {
        vec![16, 32, 64]
    };
    let gate_side = *sides.last().expect("non-empty sweep");
    assert!(
        gate_side * gate_side >= Backend::AUTO_MIN_NODES,
        "gated workload narrower than the Auto pool threshold"
    );
    let mut rows = Vec::new();
    let (mut largest_speedup, mut largest_n) = (f64::NAN, 0);
    for side in sides {
        let reps = if side == gate_side || !quick() { 3 } else { 1 };
        let (row, speedup) = tester_workload(side, reps);
        largest_speedup = speedup;
        largest_n = side * side;
        rows.push(row);
    }
    (Json::Arr(rows), largest_speedup, largest_n)
}

/// Trial-parallel Monte-Carlo sweep (the e1 workload shape): the same
/// seeded tester runs fanned across cores by [`TrialRunner`].
fn trial_sweep() -> Json {
    let side = if quick() { 10 } else { 20 };
    let trials = if quick() { 4 } else { 16 };
    let fam = planar::triangulated_grid(side, side);
    let g: &Graph = &fam.graph;

    let run_trial = |seed: usize| {
        let cfg = crate::practical_cfg(0.1).with_seed(seed as u64);
        PlanarityTester::new(cfg).run(g).expect("run").accepted()
    };

    let mut verdicts_serial = Vec::new();
    let serial_secs = time_median(|| {
        verdicts_serial = TrialRunner::new(1).run(trials, run_trial);
    });
    let mut verdicts_parallel = Vec::new();
    let parallel_secs = time_median(|| {
        verdicts_parallel = TrialRunner::auto().run(trials, run_trial);
    });
    assert_eq!(
        verdicts_parallel, verdicts_serial,
        "trial order must be deterministic"
    );
    let speedup = serial_secs / parallel_secs;
    println!(
        "trial sweep    {trials} trials n={:<5} serial {serial_secs:>8.3}s  parallel({}) {parallel_secs:>8.3}s  speedup {speedup:.2}x",
        g.n(),
        TrialRunner::auto().threads(),
    );

    Json::obj()
        .field("workload", "tester_acceptance_sweep")
        .field("n", g.n())
        .field("trials", trials)
        .field("accepted", verdicts_serial.iter().filter(|&&a| a).count())
        .field("serial_seconds", serial_secs)
        .field("parallel_threads", TrialRunner::auto().threads())
        .field("parallel_seconds", parallel_secs)
        .field("speedup_vs_serial", speedup)
}

/// Batched vs sequential Monte-Carlo acceptance sweep: the same seeded
/// tester instances served one full `run` per seed (the sequential
/// per-instance path) vs one instance-multiplexed
/// [`PlanarityTester::run_many`] pass. Per-instance outcomes are
/// asserted bit-identical; only wall-clock may differ. Returns the row
/// plus the batched-over-sequential speedup (gated — warm-up pass plus
/// the median of 5 *paired* ratios even in quick mode, because this
/// ratio is compared against the raised
/// [`BenchGate::BATCH_SPEEDUP_FLOOR`], not mere parity, and pairing is
/// what keeps background load drift from flipping the CI gate).
fn batch_sweep() -> (Json, f64, usize) {
    let side = if quick() { 16 } else { 32 };
    let trials = 16usize;
    let fam = planar::triangulated_grid(side, side);
    let g: &Graph = &fam.graph;
    // The paper-faithful configuration (derived Θ(log 1/ε) phase count,
    // not the experiment shortcut): Monte-Carlo trials amplify the
    // tester's one-sided soundness, which is exactly the workload
    // instance-multiplexing exists for.
    let eps = 0.2;
    let cfg = planartest_core::TesterConfig::new(eps);
    let seeds: Vec<u64> = (0..trials as u64).collect();

    // One untimed pass on each side first: the gated ratio must not
    // depend on who pays the cold-cache / first-allocation cost.
    let _ = PlanarityTester::new(cfg.clone().with_seed(0)).run(g);
    let _ = PlanarityTester::new(cfg.clone()).run_many(g, &seeds);

    // Paired reps: each rep times sequential and batched back-to-back
    // and contributes one ratio; the gate takes the median ratio.
    // Timing the two sides in separate blocks (independent medians)
    // lets machine-wide load drift between the blocks masquerade as a
    // batching regression — pairing cancels it, because any slowdown
    // hits both halves of the same rep.
    let reps = 5;
    let mut sequential: Vec<TestOutcome> = Vec::new();
    let mut batched: Vec<TestOutcome> = Vec::new();
    let mut seq_samples = Vec::with_capacity(reps);
    let mut bat_samples = Vec::with_capacity(reps);
    let mut ratios = Vec::with_capacity(reps);
    for _ in 0..reps {
        let seq_secs = time_median_reps(1, || {
            sequential = seeds
                .iter()
                .map(|&seed| {
                    PlanarityTester::new(cfg.clone().with_seed(seed))
                        .run(g)
                        .expect("run")
                })
                .collect();
        });
        let bat_secs = time_median_reps(1, || {
            batched = PlanarityTester::new(cfg.clone())
                .run_many(g, &seeds)
                .expect("run");
        });
        seq_samples.push(seq_secs);
        bat_samples.push(bat_secs);
        ratios.push(seq_secs / bat_secs);
    }
    for (seq, bat) in sequential.iter().zip(&batched) {
        assert_eq!(bat.rejections, seq.rejections, "batched verdict diverged");
        assert_eq!(bat.stats, seq.stats, "batched stats diverged");
    }
    seq_samples.sort_by(f64::total_cmp);
    bat_samples.sort_by(f64::total_cmp);
    ratios.sort_by(f64::total_cmp);
    let sequential_secs = seq_samples[reps / 2];
    let batched_secs = bat_samples[reps / 2];
    let speedup = ratios[reps / 2];
    println!(
        "batch sweep    {trials} trials n={:<5} sequential {sequential_secs:>8.3}s  \
         batched {batched_secs:>8.3}s  speedup {speedup:.2}x",
        g.n(),
    );
    let row = Json::obj()
        .field("workload", "tester_acceptance_sweep_batched")
        .field("n", g.n())
        .field("epsilon", eps)
        .field("phases", cfg.phases(g.n()))
        .field("trials", trials)
        .field("accepted", batched.iter().filter(|o| o.accepted()).count())
        .field("sequential_seconds", sequential_secs)
        .field("batched_seconds", batched_secs)
        .field("speedup_vs_sequential", speedup);
    (row, speedup, trials)
}

/// SplitMix64 — deterministic digit/bit workloads for the kernel
/// microbenchmarks.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One before/after kernel row: scalar reference vs SWAR path over the
/// same workload, both asserted to produce identical results first.
fn kernel_row(name: &str, scalar_secs: f64, swar_secs: f64, speedup: f64) -> Json {
    println!(
        "kernel         {name:<24} scalar {scalar_secs:>10.6}s  swar {swar_secs:>10.6}s  \
         speedup {speedup:.2}x"
    );
    Json::obj()
        .field("kernel", name)
        .field("scalar_seconds", scalar_secs)
        .field("swar_seconds", swar_secs)
        .field("speedup", speedup)
}

/// Paired before/after kernel measurement: after a warm-up pair, each
/// of `pairs` reps times scalar then SWAR back to back and the gated
/// speedup is the **median of the per-pair ratios**. Pairing is what
/// makes a 1.0 floor holdable: machine-wide drift (thermal ramp,
/// frequency scaling, a CI neighbour) hits both sides of a pair about
/// equally and cancels in its ratio, where a ratio of two
/// independently-taken medians inherits the drift between them as
/// bias. Returns `(scalar_median, swar_median, ratio_median)`.
fn paired_kernel_times(
    pairs: usize,
    scalar: &mut dyn FnMut(),
    swar: &mut dyn FnMut(),
) -> (f64, f64, f64) {
    fn time_one(f: &mut dyn FnMut()) -> f64 {
        let start = Instant::now();
        f();
        start.elapsed().as_secs_f64()
    }
    scalar();
    swar();
    let mut scalar_times = Vec::with_capacity(pairs);
    let mut swar_times = Vec::with_capacity(pairs);
    let mut ratios = Vec::with_capacity(pairs);
    for _ in 0..pairs {
        let s = time_one(scalar);
        let w = time_one(swar);
        scalar_times.push(s);
        swar_times.push(w);
        ratios.push(s / w);
    }
    scalar_times.sort_by(f64::total_cmp);
    swar_times.sort_by(f64::total_cmp);
    ratios.sort_by(f64::total_cmp);
    (
        scalar_times[pairs / 2],
        swar_times[pairs / 2],
        ratios[pairs / 2],
    )
}

/// Per-kernel before/after microbenchmarks for the SWAR round kernels:
/// the stage-2 label digit pack/unpack at each width class, and the
/// `LaneBits` bulk clear / quiescence scan. "Before" is the portable
/// scalar reference (the `scalar-kernels` feature path), "after" the
/// default SWAR dispatch — the same code CI runs the whole suite
/// against both ways. Returns the rows plus the worst row's
/// `(speedup, kernel name)` — the gate's "every SWAR kernel earns its
/// keep" clause.
fn kernel_bench() -> (Json, f64, &'static str) {
    let reps = if quick() { 300 } else { 2_000 };
    let pairs = if quick() { 5 } else { 9 };
    let mut rows = Vec::new();
    let mut min_speedup = f64::INFINITY;
    let mut min_kernel: &'static str = "none";
    let mut push_row =
        |rows: &mut Vec<Json>, name: &'static str, scalar: f64, swar: f64, ratio: f64| {
            rows.push(kernel_row(name, scalar, swar, ratio));
            if ratio < min_speedup {
                min_speedup = ratio;
                min_kernel = name;
            }
        };

    // Label digit transpose: 512 labels × 24 digits per width class
    // (tree-path labels are Θ(depth) digits; 24 covers the deep-part
    // regime while still exercising ragged tails).
    for &(name, bits, per, mask) in &[
        ("label_pack_4bit", 4u32, 16usize, 15u32),
        ("label_pack_16bit", 16, 4, 65_535),
        ("label_pack_32bit", 32, 2, u32::MAX),
    ] {
        let labels: Vec<Vec<u32>> = (0..512u64)
            .map(|s| {
                (0..24u64)
                    .map(|i| (mix(s << 32 | i) as u32) & mask)
                    .collect()
            })
            .collect();
        let pass = |words: &mut Vec<u64>, digits: &mut Vec<u32>, swar: bool| {
            words.clear();
            digits.clear();
            for label in &labels {
                let start = words.len();
                if swar {
                    pack::pack_swar(label, bits, per, words);
                    pack::unpack_swar(&words[start..], label.len(), bits, per, digits);
                } else {
                    pack::pack_scalar(label, bits, per, words);
                    pack::unpack_scalar(&words[start..], label.len(), bits, per, digits);
                }
            }
        };
        let mut words: Vec<u64> = Vec::new();
        let mut digits: Vec<u32> = Vec::new();
        pass(&mut words, &mut digits, false);
        let reference = digits.clone();
        pass(&mut words, &mut digits, true);
        assert_eq!(
            digits, reference,
            "{name}: kernels must agree before timing"
        );
        // Separate buffers per side: the paired closures live at once.
        let (mut words_w, mut digits_w) = (Vec::new(), Vec::new());
        let (scalar_secs, swar_secs, ratio) = paired_kernel_times(
            pairs,
            &mut || {
                for _ in 0..reps {
                    pass(&mut words, &mut digits, false);
                }
                black_box((&words, &digits));
            },
            &mut || {
                for _ in 0..reps {
                    pass(&mut words_w, &mut digits_w, true);
                }
                black_box((&words_w, &digits_w));
            },
        );
        push_row(
            &mut rows,
            name,
            scalar_secs / reps as f64,
            swar_secs / reps as f64,
            ratio,
        );
    }

    // LaneBits bookkeeping over a 64k-lane batch (e.g. B=16 × n=4096):
    // the per-round wake-flag bulk clear and the quiescence scan.
    let lanes = 1 << 16;
    let mut bits = LaneBits::new(lanes);
    for i in (0..lanes).step_by(97) {
        bits.set(i);
    }
    assert_eq!(bits.any_set_words(), bits.any_set_scalar());
    let mut bits_w = LaneBits::new(lanes);
    let (scalar_secs, swar_secs, ratio) = paired_kernel_times(
        pairs,
        &mut || {
            for _ in 0..reps {
                black_box(&mut bits).clear_all_scalar();
            }
        },
        &mut || {
            for _ in 0..reps {
                black_box(&mut bits_w).clear_all_words();
            }
        },
    );
    push_row(
        &mut rows,
        "lanebits_clear_all",
        scalar_secs / reps as f64,
        swar_secs / reps as f64,
        ratio,
    );

    bits.set(lanes - 1); // worst case: the scan must reach the last word
    let (scalar_secs, swar_secs, ratio) = paired_kernel_times(
        pairs,
        &mut || {
            for _ in 0..reps {
                black_box(black_box(&bits).any_set_scalar());
            }
        },
        &mut || {
            for _ in 0..reps {
                black_box(black_box(&bits).any_set_words());
            }
        },
    );
    push_row(
        &mut rows,
        "lanebits_any_set",
        scalar_secs / reps as f64,
        swar_secs / reps as f64,
        ratio,
    );

    (Json::Arr(rows), min_speedup, min_kernel)
}

/// The CI regression gate computed alongside the benchmark document:
/// the parallel backend at max threads must not lose to serial on the
/// largest `tester_n_sweep` workload, and the instance-multiplexed
/// Monte-Carlo sweep must not lose to the sequential-per-instance path.
#[derive(Debug, Clone, Copy)]
pub struct BenchGate {
    /// Node count of the gated (largest) tester workload.
    pub largest_n: usize,
    /// Serial wall-clock over parallel wall-clock on that workload.
    pub speedup: f64,
    /// Worker threads the parallel measurement resolved to.
    pub max_threads: usize,
    /// Trials in the gated batched acceptance sweep.
    pub batch_trials: usize,
    /// Sequential-per-instance wall-clock over batched wall-clock on
    /// the Monte-Carlo acceptance sweep.
    pub batch_speedup: f64,
    /// The *worst* per-kernel SWAR-vs-scalar speedup across every
    /// `kernel_bench` row (median of paired ratios).
    pub min_kernel_speedup: f64,
    /// Which kernel posted that worst ratio.
    pub min_kernel: &'static str,
}

impl BenchGate {
    /// Floor for the batched-vs-sequential speedup. Raised from parity
    /// (1.0) after the node-major lane flip: with recycled batch
    /// scratch (zero per-instance re-zeroing via epoch stamps), the
    /// SWAR round kernels, and the per-part sample check borrowing the
    /// root-decoded list instead of re-decoding at every member node,
    /// the gated 16-trial acceptance sweep measures ≈ 4.6x on one core
    /// (median of paired ratios; the pre-flip layout measured 3.36x).
    /// The floor sits at 4.0 — regression margin above the old layout's
    /// best, noise margin below the new steady state.
    pub const BATCH_SPEEDUP_FLOOR: f64 = 4.0;

    /// Floor for every per-kernel SWAR-vs-scalar ratio: a SWAR path
    /// that loses to its own scalar reference is a regression, full
    /// stop — there is no workload argument for shipping a slower
    /// dispatch default. Holdable at exactly 1.0 (not 1.0 minus a
    /// noise allowance) because the measurement is a median of
    /// *paired* ratios: drift cancels within each pair, and the
    /// unrolled kernels clear parity with real margin (the old
    /// pairwise-spread 16-bit pack measured 0.83x and would fail
    /// here, as it should).
    pub const KERNEL_SPEEDUP_FLOOR: f64 = 1.0;

    /// Whether the gate passes: the parallel speedup at or above parity
    /// and the batch speedup at or above
    /// [`BATCH_SPEEDUP_FLOOR`](Self::BATCH_SPEEDUP_FLOOR). On a
    /// single-hardware-thread machine there is no pool to gate — the
    /// "parallel" run takes the same inline path as serial, so that
    /// ratio is pure timing noise and its clause is vacuously true. The
    /// batching clause is *never* vacuous: multiplexing pays off on one
    /// thread (that is the point — the round-loop fixed cost amortizes,
    /// no pool required).
    #[must_use]
    pub fn pass(&self) -> bool {
        (self.max_threads <= 1 || self.speedup >= 1.0)
            && self.batch_speedup >= Self::BATCH_SPEEDUP_FLOOR
            && self.min_kernel_speedup >= Self::KERNEL_SPEEDUP_FLOOR
    }
}

/// Builds the full benchmark document (also printed as tables) and the
/// CI gate derived from it.
#[must_use]
pub fn runtime_bench_document() -> (Json, BenchGate) {
    println!("\n## runtime benchmark (serial vs parallel vs batched)");
    let side = if quick() { 24 } else { 64 };
    let (tester_rows, speedup, largest_n) = tester_n_sweep();
    let (batch_row, batch_speedup, batch_trials) = batch_sweep();
    let (kernel_rows, min_kernel_speedup, min_kernel) = kernel_bench();
    let gate = BenchGate {
        largest_n,
        speedup,
        max_threads: auto_threads(),
        batch_trials,
        batch_speedup,
        min_kernel_speedup,
        min_kernel,
    };
    let doc = Json::obj()
        .field("schema", "planartest-bench/runtime/v2")
        .field("quick_mode", quick())
        .field("hardware_threads", auto_threads())
        .field("engine_throughput", engine_throughput(side))
        .field("kernel_bench", kernel_rows)
        .field("tester_n_sweep", tester_rows)
        .field("trial_sweep", trial_sweep())
        .field("batch_sweep", batch_row)
        .field(
            "gate",
            Json::obj()
                .field("workload", "tester_n_sweep_largest")
                .field("n", gate.largest_n)
                .field("max_threads", gate.max_threads)
                .field("parallel_speedup_at_max_threads", gate.speedup)
                .field("batch_trials", gate.batch_trials)
                .field("batch_speedup_vs_sequential", gate.batch_speedup)
                .field("batch_speedup_floor", BenchGate::BATCH_SPEEDUP_FLOOR)
                .field("min_kernel_speedup", gate.min_kernel_speedup)
                .field("min_kernel", gate.min_kernel)
                .field("kernel_speedup_floor", BenchGate::KERNEL_SPEEDUP_FLOOR)
                .field("pass", gate.pass()),
        );
    (doc, gate)
}

/// Runs the benchmark and writes `BENCH_runtime.json` into the current
/// directory (the repo root under `cargo run`); returns the CI gate.
pub fn runtime_bench() -> BenchGate {
    let (doc, gate) = runtime_bench_document();
    let path = "BENCH_runtime.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_runtime.json");
    println!("wrote {path}");
    gate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sweep_starts_at_one() {
        let sweep = thread_sweep();
        assert_eq!(sweep[0], 1);
        assert!(sweep.iter().all(|&t| t >= 1));
        assert!(sweep.contains(&auto_threads()) || auto_threads() == 1);
    }

    #[test]
    fn tester_workload_row_has_required_fields() {
        // One tiny workload exercises the row builder and all three
        // backends; the full document (with the gate-sized instance) is
        // too heavy for a debug-build test and runs for real in CI via
        // `runtime_bench --check` on the release binary.
        let (row, speedup) = tester_workload(4, 1);
        let text = row.pretty();
        for key in [
            "rounds",
            "serial_seconds",
            "parallel_seconds",
            "speedup_vs_serial",
            "auto_seconds",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        assert!(speedup.is_finite() && speedup > 0.0);
    }

    #[test]
    fn gate_workload_is_wide_enough_for_the_pool() {
        // Both mode's largest sweep instance must be at least as wide
        // as the Auto pool threshold — gating a narrower workload would
        // demand a speedup the backend's own calibration rejects.
        for largest_side in [48usize, 64] {
            assert!(largest_side * largest_side >= Backend::AUTO_MIN_NODES);
        }
    }

    #[test]
    fn gate_thresholds() {
        let floor = BenchGate::BATCH_SPEEDUP_FLOOR;
        assert!(
            floor > 3.36,
            "the batch gate must stay above the pre-flip ratio"
        );
        let gate = |speedup: f64, max_threads: usize, batch_speedup: f64| BenchGate {
            largest_n: 1,
            speedup,
            max_threads,
            batch_trials: 8,
            batch_speedup,
            min_kernel_speedup: 1.2,
            min_kernel: "label_pack_16bit",
        };
        assert!(gate(1.0, 4, floor).pass());
        assert!(!gate(0.99, 4, floor).pass());
        // One hardware thread: no pool to gate, noise must not fail CI.
        assert!(gate(0.99, 1, floor).pass());
        // The batching clause is never vacuous — multiplexing must
        // clear the raised floor even on one thread.
        assert!(!gate(1.0, 1, floor - 0.01).pass());
        assert!(!gate(1.0, 1, 1.0).pass());
        assert!(gate(1.0, 1, floor + 0.5).pass());
        // Every SWAR kernel must at least match its scalar reference:
        // the historical 0.83x pack regression fails the gate.
        let slow = BenchGate {
            min_kernel_speedup: 0.83,
            ..gate(1.0, 4, floor)
        };
        assert!(!slow.pass());
        assert_eq!(BenchGate::KERNEL_SPEEDUP_FLOOR, 1.0);
    }

    #[test]
    fn kernel_rows_have_required_fields() {
        let (rows, min_speedup, min_kernel) = kernel_bench();
        let text = rows.pretty();
        for key in [
            "label_pack_4bit",
            "label_pack_16bit",
            "label_pack_32bit",
            "lanebits_clear_all",
            "lanebits_any_set",
            "scalar_seconds",
            "swar_seconds",
            "speedup",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        // The minimum is drawn from the rows actually produced (debug
        // builds don't gate the *value* — CI gates the release run).
        assert!(min_speedup.is_finite() && min_speedup > 0.0);
        assert!(text.contains(min_kernel));
    }
}
