//! Runtime benchmark: serial vs parallel engine throughput, tester
//! n-sweeps, and trial-parallel sweep scaling — written both as a
//! human-readable table and as machine-readable `BENCH_runtime.json`
//! so the performance trajectory is tracked from PR to PR.

use std::time::Instant;

use planartest_core::PlanarityTester;
use planartest_graph::generators::planar;
use planartest_graph::{Graph, NodeId};
use planartest_sim::runtime::{auto_threads, Backend, TrialRunner};
use planartest_sim::{
    Engine, Msg, NodeLogic, Outbox, ParallelEngine, ParallelNodeLogic, SimConfig,
};

use crate::json::Json;
use crate::quick;

/// The flood workload used for raw engine throughput, expressed both
/// ways so each engine runs its native logic form.
struct FloodLogic {
    seen: Vec<bool>,
}

impl NodeLogic for FloodLogic {
    fn init(&mut self, node: NodeId, out: &mut Outbox<'_>) {
        if node.index() == 0 {
            self.seen[0] = true;
            out.send_all(Msg::words(&[1]));
        }
    }
    fn round(&mut self, node: NodeId, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        if !self.seen[node.index()] && !inbox.is_empty() {
            self.seen[node.index()] = true;
            out.send_all(Msg::words(&[1]));
        }
    }
}

struct FloodProgram;

impl ParallelNodeLogic for FloodProgram {
    type State = bool;
    fn init(&self, node: NodeId, seen: &mut bool, out: &mut Outbox<'_>) {
        if node.index() == 0 {
            *seen = true;
            out.send_all(Msg::words(&[1]));
        }
    }
    fn round(&self, _: NodeId, seen: &mut bool, inbox: &[(NodeId, Msg)], out: &mut Outbox<'_>) {
        if !*seen && !inbox.is_empty() {
            *seen = true;
            out.send_all(Msg::words(&[1]));
        }
    }
}

/// Median-of-`reps` wall-clock seconds for `f` (quick mode: 1 rep).
fn time_median<F: FnMut()>(mut f: F) -> f64 {
    let reps = if quick() { 1 } else { 3 };
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Thread counts to sweep: 1, 2, 4, … up to the hardware (always
/// includes the hardware count itself).
fn thread_sweep() -> Vec<usize> {
    let max = auto_threads();
    let mut counts = vec![1];
    let mut t = 2;
    while t < max {
        counts.push(t);
        t *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts.dedup();
    counts
}

/// Raw engine throughput on a flood over a triangulated grid
/// (`n = side²`): serial engine vs worker pool at each thread count.
fn engine_throughput(side: usize) -> Json {
    let fam = planar::triangulated_grid(side, side);
    let g = &fam.graph;

    let mut serial_rounds = 0u64;
    let serial_secs = time_median(|| {
        let mut engine = Engine::new(g, SimConfig::default());
        let mut logic = FloodLogic {
            seen: vec![false; g.n()],
        };
        serial_rounds = engine.run(&mut logic, 1_000_000).expect("flood").rounds;
    });
    println!(
        "engine flood   n={:<6} serial                 {:>10.1} rounds/s ({serial_rounds} rounds)",
        g.n(),
        serial_rounds as f64 / serial_secs
    );

    let mut parallel = Vec::new();
    for threads in thread_sweep() {
        let mut rounds = 0u64;
        let secs = time_median(|| {
            let mut engine = ParallelEngine::new(g, SimConfig::default()).with_threads(threads);
            let mut states = vec![false; g.n()];
            rounds = engine
                .run(&FloodProgram, &mut states, 1_000_000)
                .expect("flood")
                .rounds;
        });
        assert_eq!(rounds, serial_rounds, "backends must agree on round count");
        let speedup = serial_secs / secs;
        println!(
            "engine flood   n={:<6} parallel(threads={:<2}) {:>10.1} rounds/s (speedup {speedup:.2}x)",
            g.n(),
            threads,
            rounds as f64 / secs
        );
        parallel.push(
            Json::obj()
                .field("threads", threads)
                .field("seconds", secs)
                .field("rounds_per_sec", rounds as f64 / secs)
                .field("speedup_vs_serial", speedup),
        );
    }

    Json::obj()
        .field("workload", "flood_triangulated_grid")
        .field("n", g.n())
        .field("m", g.m())
        .field("rounds", serial_rounds)
        .field(
            "serial",
            Json::obj()
                .field("seconds", serial_secs)
                .field("rounds_per_sec", serial_rounds as f64 / serial_secs),
        )
        .field("parallel", parallel)
}

/// Tester wall-clock vs `n`, serial backend vs parallel backend.
fn tester_n_sweep() -> Json {
    let sides: Vec<usize> = if quick() {
        vec![8, 16]
    } else {
        vec![16, 32, 64]
    };
    let mut rows = Vec::new();
    for side in sides {
        let fam = planar::triangulated_grid(side, side);
        let g = &fam.graph;
        let cfg = crate::practical_cfg(0.1);
        let mut rounds = 0u64;
        let serial_secs = time_median(|| {
            let out = PlanarityTester::new(cfg.clone()).run(g).expect("run");
            assert!(out.accepted());
            rounds = out.rounds();
        });
        let parallel_secs = time_median(|| {
            let out = PlanarityTester::new(cfg.clone())
                .with_backend(Backend::Parallel { threads: 0 })
                .run(g)
                .expect("run");
            assert!(out.accepted());
            assert_eq!(out.rounds(), rounds, "backends must agree");
        });
        println!(
            "tester sweep   n={:<6} serial {serial_secs:>8.3}s  parallel {parallel_secs:>8.3}s  ({rounds} rounds)",
            g.n()
        );
        rows.push(
            Json::obj()
                .field("n", g.n())
                .field("m", g.m())
                .field("rounds", rounds)
                .field("serial_seconds", serial_secs)
                .field("parallel_seconds", parallel_secs),
        );
    }
    Json::Arr(rows)
}

/// Trial-parallel Monte-Carlo sweep (the e1 workload shape): the same
/// seeded tester runs fanned across cores by [`TrialRunner`].
fn trial_sweep() -> Json {
    let side = if quick() { 10 } else { 20 };
    let trials = if quick() { 4 } else { 16 };
    let fam = planar::triangulated_grid(side, side);
    let g: &Graph = &fam.graph;

    let run_trial = |seed: usize| {
        let cfg = crate::practical_cfg(0.1).with_seed(seed as u64);
        PlanarityTester::new(cfg).run(g).expect("run").accepted()
    };

    let mut verdicts_serial = Vec::new();
    let serial_secs = time_median(|| {
        verdicts_serial = TrialRunner::new(1).run(trials, run_trial);
    });
    let mut verdicts_parallel = Vec::new();
    let parallel_secs = time_median(|| {
        verdicts_parallel = TrialRunner::auto().run(trials, run_trial);
    });
    assert_eq!(
        verdicts_parallel, verdicts_serial,
        "trial order must be deterministic"
    );
    let speedup = serial_secs / parallel_secs;
    println!(
        "trial sweep    {trials} trials n={:<5} serial {serial_secs:>8.3}s  parallel({}) {parallel_secs:>8.3}s  speedup {speedup:.2}x",
        g.n(),
        TrialRunner::auto().threads(),
    );

    Json::obj()
        .field("workload", "tester_acceptance_sweep")
        .field("n", g.n())
        .field("trials", trials)
        .field("accepted", verdicts_serial.iter().filter(|&&a| a).count())
        .field("serial_seconds", serial_secs)
        .field("parallel_threads", TrialRunner::auto().threads())
        .field("parallel_seconds", parallel_secs)
        .field("speedup_vs_serial", speedup)
}

/// Builds the full benchmark document (also printed as tables).
#[must_use]
pub fn runtime_bench_document() -> Json {
    println!("\n## runtime benchmark (serial vs parallel)");
    let side = if quick() { 24 } else { 64 };
    Json::obj()
        .field("schema", "planartest-bench/runtime/v1")
        .field("quick_mode", quick())
        .field("hardware_threads", auto_threads())
        .field("engine_throughput", engine_throughput(side))
        .field("tester_n_sweep", tester_n_sweep())
        .field("trial_sweep", trial_sweep())
}

/// Runs the benchmark and writes `BENCH_runtime.json` into the current
/// directory (the repo root under `cargo run`).
pub fn runtime_bench() {
    let doc = runtime_bench_document();
    let path = "BENCH_runtime.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_runtime.json");
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sweep_starts_at_one() {
        let sweep = thread_sweep();
        assert_eq!(sweep[0], 1);
        assert!(sweep.iter().all(|&t| t >= 1));
        assert!(sweep.contains(&auto_threads()) || auto_threads() == 1);
    }

    #[test]
    fn document_has_required_sections() {
        // Force quick sizes regardless of the environment: the document
        // builder itself reads `quick()`, so just verify on whatever
        // size is configured but keep CI fast via PLANARTEST_QUICK.
        if !quick() {
            return; // full-size benches belong to `cargo run`, not tests
        }
        let doc = runtime_bench_document();
        let text = doc.pretty();
        for key in [
            "engine_throughput",
            "tester_n_sweep",
            "trial_sweep",
            "speedup_vs_serial",
            "rounds_per_sec",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
