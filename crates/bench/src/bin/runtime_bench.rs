//! Serial-vs-parallel runtime benchmark; writes `BENCH_runtime.json`.
//! Set `PLANARTEST_QUICK=1` for CI-sized runs, `PLANARTEST_THREADS=k`
//! to cap the worker pools.
//!
//! With `--check`, exits non-zero when the regression gate fails
//! (parallel at max threads losing to serial on the largest tester
//! workload) — this is the CI performance gate.
fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let gate = planartest_bench::runtime_bench();
    if check && !gate.pass() {
        eprintln!(
            "benchmark gate FAILED: parallel speedup {:.3}x < 1.0 on the largest \
             tester workload (n={})",
            gate.speedup, gate.largest_n
        );
        std::process::exit(1);
    }
    if check {
        println!(
            "benchmark gate passed: parallel speedup {:.3}x on n={}",
            gate.speedup, gate.largest_n
        );
    }
}
