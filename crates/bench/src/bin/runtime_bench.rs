//! Serial-vs-parallel runtime benchmark; writes `BENCH_runtime.json`.
//! Set `PLANARTEST_QUICK=1` for CI-sized runs, `PLANARTEST_THREADS=k`
//! to cap the worker pools.
fn main() {
    planartest_bench::runtime_bench();
}
