//! Serial-vs-parallel-vs-batched runtime benchmark; writes
//! `BENCH_runtime.json`. Set `PLANARTEST_QUICK=1` for CI-sized runs,
//! `PLANARTEST_THREADS=k` to cap the worker pools.
//!
//! With `--check`, exits non-zero when the regression gate fails —
//! parallel at max threads losing to serial on the largest tester
//! workload, the instance-multiplexed Monte-Carlo acceptance sweep
//! dropping below the raised batched-vs-sequential floor
//! ([`BenchGate::BATCH_SPEEDUP_FLOOR`]), or *any* SWAR kernel row
//! losing to its scalar reference
//! ([`BenchGate::KERNEL_SPEEDUP_FLOOR`]). This is the CI performance
//! gate.
//!
//! [`BenchGate::BATCH_SPEEDUP_FLOOR`]: planartest_bench::BenchGate::BATCH_SPEEDUP_FLOOR
//! [`BenchGate::KERNEL_SPEEDUP_FLOOR`]: planartest_bench::BenchGate::KERNEL_SPEEDUP_FLOOR

use planartest_bench::BenchGate;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let gate = planartest_bench::runtime_bench();
    if check && !gate.pass() {
        eprintln!(
            "benchmark gate FAILED: parallel speedup {:.3}x on the largest tester \
             workload (n={}, must be >= 1.0; vacuous on 1 hardware thread), \
             batched sweep speedup {:.3}x over sequential ({} trials, must be \
             >= {:.2}), worst kernel `{}` at {:.3}x vs scalar (every kernel \
             must be >= {:.2})",
            gate.speedup,
            gate.largest_n,
            gate.batch_speedup,
            gate.batch_trials,
            BenchGate::BATCH_SPEEDUP_FLOOR,
            gate.min_kernel,
            gate.min_kernel_speedup,
            BenchGate::KERNEL_SPEEDUP_FLOOR
        );
        std::process::exit(1);
    }
    if check {
        println!(
            "benchmark gate passed: parallel speedup {:.3}x on n={}, batched sweep \
             {:.3}x over sequential ({} trials, floor {:.2}), worst kernel `{}` \
             {:.3}x vs scalar (floor {:.2})",
            gate.speedup,
            gate.largest_n,
            gate.batch_speedup,
            gate.batch_trials,
            BenchGate::BATCH_SPEEDUP_FLOOR,
            gate.min_kernel,
            gate.min_kernel_speedup,
            BenchGate::KERNEL_SPEEDUP_FLOOR
        );
    }
}
