//! Regenerates the e6 table of `EXPERIMENTS.md`.
fn main() {
    planartest_bench::e6_violations();
}
