//! Regenerates the e9 table of `EXPERIMENTS.md`.
fn main() {
    planartest_bench::e9_hereditary();
}
