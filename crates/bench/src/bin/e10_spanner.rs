//! Regenerates the e10 table of `EXPERIMENTS.md`.
fn main() {
    planartest_bench::e10_spanner();
}
