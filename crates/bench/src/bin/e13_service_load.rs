//! E13 — service-layer load benchmark; writes `BENCH_service.json`.
//!
//! `--check` turns the gate into an exit code for CI: warm-cache p50
//! must beat cold by at least 10×, the coalesced same-graph sweep must
//! not lose to sequential per-query drains, and the multi-client
//! unix-socket scenario (N concurrent clients through the background
//! drain loop, outcomes asserted identical to sequential) must not
//! lose to per-client serial service.

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let gate = planartest_bench::service_load();
    if check && !gate.pass() {
        eprintln!(
            "service gate FAILED: warm p50 speedup {:.2}x (need >= {:.0}x), \
             coalesced speedup {:.2}x (need >= 1.0x), \
             multi-client speedup {:.2}x (need >= 1.0x)",
            gate.warm_p50_speedup,
            planartest_bench::ServiceGate::WARM_SPEEDUP_FLOOR,
            gate.coalesced_speedup,
            gate.multi_client_speedup,
        );
        std::process::exit(1);
    }
}
