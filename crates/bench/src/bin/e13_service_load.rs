//! E13 — service-layer load benchmark; writes `BENCH_service.json`
//! plus the `BENCH_trace.ldjson` event-log artifact.
//!
//! `--check` turns the gate into an exit code for CI: warm-cache p50
//! must beat cold by at least 10×, the coalesced same-graph sweep must
//! not lose to sequential per-query drains, the multi-client
//! unix-socket scenario (N concurrent clients through the background
//! drain loop, outcomes asserted identical to sequential) must not
//! lose to per-client serial service, and attaching the `--trace`
//! event log must keep at least 95% of metrics-only throughput on the
//! cold serving path.

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let gate = planartest_bench::service_load();
    if check && !gate.pass() {
        eprintln!(
            "service gate FAILED: warm p50 speedup {:.2}x (need >= {:.0}x), \
             coalesced speedup {:.2}x (need >= 1.0x), \
             multi-client speedup {:.2}x (need >= 1.0x), \
             trace overhead ratio {:.3} (need >= {:.2})",
            gate.warm_p50_speedup,
            planartest_bench::ServiceGate::WARM_SPEEDUP_FLOOR,
            gate.coalesced_speedup,
            gate.multi_client_speedup,
            gate.trace_overhead,
            planartest_bench::ServiceGate::TRACE_OVERHEAD_FLOOR,
        );
        std::process::exit(1);
    }
}
