//! Regenerates the e12 table of `EXPERIMENTS.md`.
fn main() {
    planartest_bench::e12_bandwidth();
}
