//! Regenerates the e8 table of `EXPERIMENTS.md`.
fn main() {
    planartest_bench::e8_partition();
}
