//! Regenerates the e1 table of `EXPERIMENTS.md`.
fn main() {
    planartest_bench::e1_correctness();
}
