//! Regenerates the e7 table of `EXPERIMENTS.md`.
fn main() {
    planartest_bench::e7_lowerbound();
}
