//! Regenerates the e11 table of `EXPERIMENTS.md`.
fn main() {
    planartest_bench::e11_stage1_alt();
}
