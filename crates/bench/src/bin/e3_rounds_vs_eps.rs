//! Regenerates the e3 table of `EXPERIMENTS.md`.
fn main() {
    planartest_bench::e3_rounds_vs_eps();
}
