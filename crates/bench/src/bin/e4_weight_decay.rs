//! Regenerates the e4 table of `EXPERIMENTS.md`.
fn main() {
    planartest_bench::e4_weight_decay();
}
