//! E15 — open-loop load harness; writes `BENCH_load.json`.
//!
//! `--quick` forces CI-sized sweeps (same as setting
//! `PLANARTEST_QUICK`); `--check` turns the gate into an exit code: a
//! saturation knee must be located above the lowest sweep rate, p99
//! end-to-end latency at the highest sub-knee rate must meet the SLO,
//! the seeded sweep must reproduce bit-identically on a re-run, and no
//! response may be lost.

use planartest_bench::LoadGate;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    if std::env::args().any(|a| a == "--quick") {
        std::env::set_var("PLANARTEST_QUICK", "1");
    }
    let gate = planartest_bench::load_bench();
    if check && !gate.pass() {
        eprintln!(
            "load gate FAILED: knee_detected {} (need a saturated rate above the \
             lowest), sub-knee p99 {}us (SLO <= {}us at {:.0} q/s), deterministic \
             {}, responses lost {} (need 0)",
            gate.knee_detected,
            gate.sub_knee_p99_micros,
            LoadGate::P99_SLO_MICROS,
            gate.sub_knee_offered_qps,
            gate.deterministic,
            gate.responses_lost,
        );
        std::process::exit(1);
    }
    if check {
        println!(
            "load gate passed: knee located, p99 {}us at the highest sub-knee \
             rate ({:.0} q/s, SLO {}us), sweep reproducible, zero responses lost",
            gate.sub_knee_p99_micros,
            gate.sub_knee_offered_qps,
            LoadGate::P99_SLO_MICROS,
        );
    }
}
