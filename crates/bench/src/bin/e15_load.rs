//! E15 — open-loop load harness; writes `BENCH_load.json`.
//!
//! `--quick` forces CI-sized sweeps (same as setting
//! `PLANARTEST_QUICK`); `--check` turns the gate into an exit code: a
//! saturation knee must be located above the lowest sweep rate and at
//! or above the capacity floor, p99 end-to-end latency at the highest
//! sub-knee rate must meet the SLO and its warm-hit slice the
//! fast-path ceiling, the seeded sweep must reproduce bit-identically
//! on a re-run, no response may be lost mid-flight, and the
//! slow-reader scenario must leave healthy connections inside the
//! fairness envelope.

use planartest_bench::LoadGate;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    if std::env::args().any(|a| a == "--quick") {
        std::env::set_var("PLANARTEST_QUICK", "1");
    }
    let gate = planartest_bench::load_bench();
    if check && !gate.pass() {
        eprintln!(
            "load gate FAILED: knee_detected {} (need a saturated rate above the \
             lowest), knee at {:.0} q/s (floor {:.0}), sub-knee p99 {}us (SLO <= \
             {}us at {:.0} q/s), warm-hit p99 {}us (ceiling {}us), deterministic \
             {}, responses lost mid-flight {} (need 0), healthy-conn p99 {}us \
             beside a slow reader vs {}us all-healthy (bound {}x + {}us)",
            gate.knee_detected,
            gate.knee_offered_qps,
            LoadGate::KNEE_FLOOR_QPS,
            gate.sub_knee_p99_micros,
            LoadGate::P99_SLO_MICROS,
            gate.sub_knee_offered_qps,
            gate.warm_p99_micros,
            LoadGate::WARM_P99_CEIL_MICROS,
            gate.deterministic,
            gate.responses_lost,
            gate.slow_reader_healthy_p99_micros,
            gate.all_healthy_p99_micros,
            LoadGate::FAIRNESS_FACTOR,
            LoadGate::FAIRNESS_SLACK_MICROS,
        );
        std::process::exit(1);
    }
    if check {
        println!(
            "load gate passed: knee at {:.0} q/s (floor {:.0}), p99 {}us and \
             warm-hit p99 {}us at the highest sub-knee rate ({:.0} q/s), sweep \
             reproducible, zero mid-flight losses, slow reader contained \
             (healthy p99 {}us vs {}us)",
            gate.knee_offered_qps,
            LoadGate::KNEE_FLOOR_QPS,
            gate.sub_knee_p99_micros,
            gate.warm_p99_micros,
            gate.sub_knee_offered_qps,
            gate.slow_reader_healthy_p99_micros,
            gate.all_healthy_p99_micros,
        );
    }
}
