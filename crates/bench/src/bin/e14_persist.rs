//! E14 — durability benchmark; writes `BENCH_persist.json`.
//!
//! `--check` turns the gate into an exit code for CI: restart-time
//! certificate replay must beat cold recompute by at least 100× at the
//! median, the streaming ingest scenario must push ≥10⁶ nodes through
//! the two-pass disk builder into an mmap-backed graph, and the mapped
//! tier must serve outcomes bit-identical to the resident tier.

use planartest_bench::PersistGate;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let gate = planartest_bench::persist_bench();
    if check && !gate.pass() {
        eprintln!(
            "persistence gate FAILED: certificate replay p50 speedup {:.1}x \
             (need >= {:.0}x), streamed nodes {} (need >= {}), \
             mapped-vs-resident parity {}",
            gate.replay_p50_speedup,
            PersistGate::REPLAY_SPEEDUP_FLOOR,
            gate.streamed_nodes,
            PersistGate::STREAM_NODES_FLOOR,
            gate.tier_parity,
        );
        std::process::exit(1);
    }
    if check {
        println!(
            "persistence gate passed: certificate replay p50 {:.1}x over cold \
             recompute (floor {:.0}), {} nodes streamed spec->disk->mmap, \
             mapped tier bit-identical to resident",
            gate.replay_p50_speedup,
            PersistGate::REPLAY_SPEEDUP_FLOOR,
            gate.streamed_nodes,
        );
    }
}
