//! Regenerates the e5 table of `EXPERIMENTS.md`.
fn main() {
    planartest_bench::e5_diameter();
}
