//! Regenerates the e2 table of `EXPERIMENTS.md`.
fn main() {
    planartest_bench::e2_rounds_vs_n();
}
