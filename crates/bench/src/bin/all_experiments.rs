//! Regenerates every EXPERIMENTS.md table in one run.
//! Set `PLANARTEST_QUICK=1` for CI-sized sweeps.
fn main() {
    planartest_bench::run_all();
}
