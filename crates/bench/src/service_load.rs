//! E13 — closed-loop load driver for the query service layer, written
//! both as tables and as machine-readable `BENCH_service.json`.
//!
//! Three measurements, mirroring the service's three cost levers:
//!
//! * **cold** — every query pays an engine pass (distinct graph ×
//!   config × seed combinations, issued one at a time);
//! * **warm** — the identical queries replayed against the populated
//!   cache (one-sided-error retention: accepts per seed, rejects as
//!   permanent certificates);
//! * **coalesced vs serial** — the same same-graph Monte-Carlo fan-out
//!   issued one query per drain (serial) vs one coalesced drain riding
//!   a single `run_many` engine pass;
//! * **multi-client** — the transport path end to end: N concurrent
//!   unix-socket clients, each its own seed range, against one
//!   in-process [`Server`]; the drain loop coalesces *across clients*
//!   into one engine pass, asserted identical to the sequential
//!   baseline bit for bit;
//! * **trace overhead** — the cold pass re-measured with the
//!   `--trace` LDJSON writer attached (median of three repetitions),
//!   leaving `BENCH_trace.ldjson` behind as the CI artifact.
//!
//! The `--check` gate enforces the service-layer contract: warm-cache
//! p50 latency at least [`ServiceGate::WARM_SPEEDUP_FLOOR`]× better
//! than cold, coalesced throughput at least the serial baseline,
//! cross-client coalesced throughput at least per-client serial, and
//! trace-enabled throughput at least
//! [`ServiceGate::TRACE_OVERHEAD_FLOOR`]× the metrics-only baseline.
//!
//! Percentiles come from the service's own log-bucketed
//! [`Histogram`] — the same structure the `metrics` wire op snapshots
//! — so the benchmark and the live exposition surface agree on
//! quantile semantics (bucket upper edges, never under-reporting).

use std::time::Instant;

use planartest_core::TesterConfig;
use planartest_service::{CacheStatus, GraphRef, Histogram, Outcome, Property, Query, Service};

use crate::json::Json;
use crate::quick;

fn latency_row(label: &str, micros: &[u64], wall_secs: f64) -> (Json, u64) {
    let mut hist = Histogram::new();
    for &v in micros {
        hist.record(v);
    }
    let (p50, p95, p99) = (
        hist.value_at_quantile(0.50),
        hist.value_at_quantile(0.95),
        hist.value_at_quantile(0.99),
    );
    let qps = micros.len() as f64 / wall_secs;
    println!(
        "{label:<10} {:>5} queries {qps:>10.1} q/s   p50 {p50:>8}us  p95 {p95:>8}us  p99 {p99:>8}us",
        micros.len(),
    );
    let row = Json::obj()
        .field("queries", micros.len())
        .field("wall_seconds", wall_secs)
        .field("throughput_qps", qps)
        .field("p50_micros", p50)
        .field("p95_micros", p95)
        .field("p99_micros", p99)
        .field("mean_micros", hist.mean());
    (row, p50)
}

/// The graph mix: planar (accepts, cached per seed), certified-far
/// (rejects, cached as permanent certificates), and a denser planar
/// instance — all ingested once, resident thereafter.
fn corpus() -> Vec<(&'static str, String)> {
    let side = if quick() { 14 } else { 24 };
    let tiles = if quick() { 16 } else { 40 };
    let n = if quick() { 150 } else { 400 };
    vec![
        ("tri", format!("tri_grid({side},{side})")),
        ("far", format!("k5_chain({tiles})")),
        ("rp", format!("random_planar({n}, 0.7, seed=3)")),
    ]
}

fn query_mix(service: &Service) -> Vec<Query> {
    let seeds = if quick() { 4u64 } else { 8 };
    let mut queries = Vec::new();
    for entry in service.registry().entries() {
        let name = entry.names[0].clone();
        for &eps in &[0.1, 0.2] {
            for seed in 0..seeds {
                queries.push(Query::planarity(
                    GraphRef::Name(name.clone()),
                    TesterConfig::new(eps).with_phases(8).with_seed(seed),
                ));
            }
        }
        // The deterministic Corollary 16 properties ride the same
        // service (one cache stripe each).
        for property in [Property::CycleFreeness, Property::Bipartiteness] {
            queries.push(
                Query::planarity(
                    GraphRef::Name(name.clone()),
                    TesterConfig::new(0.1).with_phases(8),
                )
                .with_property(property),
            );
        }
    }
    queries
}

/// Cold pass: every query issued alone, each timed individually.
fn run_pass(
    service: &mut Service,
    queries: &[Query],
    expect: Option<&[bool]>,
) -> (Vec<u64>, f64, Vec<bool>) {
    let mut micros = Vec::with_capacity(queries.len());
    let mut verdicts = Vec::with_capacity(queries.len());
    let started = Instant::now();
    for (i, q) in queries.iter().enumerate() {
        let one = Instant::now();
        let r = service.query(q.clone()).expect("query");
        micros.push(one.elapsed().as_micros() as u64);
        verdicts.push(r.outcome.accepted());
        if let Some(expect) = expect {
            assert_eq!(
                verdicts[i], expect[i],
                "cache replay changed a verdict (query {i})"
            );
            assert_ne!(r.cache, CacheStatus::Cold, "warm pass hit the engine");
        }
    }
    (micros, started.elapsed().as_secs_f64(), verdicts)
}

/// Serial vs coalesced fan-out of one graph's Monte-Carlo sweep.
fn coalesce_section(service: &mut Service) -> (Json, f64) {
    let trials = 16u64;
    let make = |seed: u64| {
        Query::planarity(
            GraphRef::Name("tri".into()),
            TesterConfig::new(0.2).with_seed(seed),
        )
    };

    // Serial: one query per drain — one engine pass each.
    service.clear_cache();
    let started = Instant::now();
    let serial: Vec<Outcome> = (0..trials)
        .map(|seed| service.query(make(seed)).expect("query").outcome)
        .collect();
    let serial_secs = started.elapsed().as_secs_f64();

    // Coalesced: one drain — one engine pass for the whole sweep.
    service.clear_cache();
    let passes_before = service.engine_passes();
    let started = Instant::now();
    for seed in 0..trials {
        service.submit(make(seed));
    }
    let drained = service.drain();
    let coalesced_secs = started.elapsed().as_secs_f64();
    assert_eq!(
        service.engine_passes() - passes_before,
        1,
        "coalesced sweep must ride one engine pass"
    );
    for ((_, result), solo) in drained.iter().zip(&serial) {
        let outcome = &result.as_ref().expect("drained").outcome;
        assert_eq!(
            outcome.accepted(),
            solo.accepted(),
            "coalesced verdict diverged from serial"
        );
        assert_eq!(outcome.stats(), solo.stats(), "coalesced stats diverged");
    }

    let serial_qps = trials as f64 / serial_secs;
    let coalesced_qps = trials as f64 / coalesced_secs;
    let speedup = serial_secs / coalesced_secs;
    println!(
        "coalesce   {trials:>5} queries serial {serial_qps:>8.1} q/s   coalesced {coalesced_qps:>8.1} q/s   speedup {speedup:.2}x",
    );
    let row = Json::obj()
        .field("workload", "same_graph_monte_carlo_fanout")
        .field("trials", trials)
        .field("serial_seconds", serial_secs)
        .field("serial_qps", serial_qps)
        .field("coalesced_seconds", coalesced_secs)
        .field("coalesced_qps", coalesced_qps)
        .field("speedup_vs_serial", speedup);
    (row, speedup)
}

/// Multi-client scenario: N concurrent unix-socket clients against one
/// in-process server, each querying the same graph under its own seed
/// range, versus the same workload served sequentially one query per
/// drain. Asserts cross-client coalescing (one engine pass) and
/// bit-identical outcomes; returns the JSON row and the speedup.
#[cfg(unix)]
fn multi_client_section() -> (Json, f64) {
    use planartest_service::wire::Value;
    use planartest_service::{ServeOptions, Server};
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let clients = 4usize;
    let per_client = if quick() { 4u64 } else { 8 };
    let total = clients as u64 * per_client;
    let spec_text = if quick() {
        "tri_grid(14,14)"
    } else {
        "tri_grid(24,24)"
    };
    let cfg = TesterConfig::new(0.2).with_phases(8);
    let make =
        |seed: u64| Query::planarity(GraphRef::Name("g".into()), cfg.clone().with_seed(seed));

    // Sequential baseline: every query pays its own drain (and pass).
    let mut baseline = Service::new();
    baseline
        .registry_mut()
        .ingest_spec("g", spec_text)
        .expect("spec");
    let started = Instant::now();
    let serial: Vec<Outcome> = (0..total)
        .map(|seed| baseline.query(make(seed)).expect("query").outcome)
        .collect();
    let serial_secs = started.elapsed().as_secs_f64();

    // Concurrent clients against the real transport stack. wake_depth
    // = total makes the measurement deterministic: the cycle fires
    // exactly when the last client's last query lands.
    let mut service = Service::new().with_group_threads(0);
    service
        .registry_mut()
        .ingest_spec("g", spec_text)
        .expect("spec");
    let server = Server::start(
        service,
        ServeOptions {
            linger: std::time::Duration::from_secs(30),
            wake_depth: total as usize,
            ..ServeOptions::default()
        },
    );
    let socket = std::env::temp_dir().join(format!("planartest-e13-{}.sock", std::process::id()));
    server.listen_unix(&socket).expect("bind bench socket");

    let started = Instant::now();
    let outcomes: Vec<Vec<(bool, u64, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let socket = socket.clone();
                scope.spawn(move || {
                    let mut stream = UnixStream::connect(&socket).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                    let seeds: Vec<u64> =
                        (c as u64 * per_client..(c as u64 + 1) * per_client).collect();
                    for seed in &seeds {
                        writeln!(
                            stream,
                            "{{\"op\":\"query\",\"graph\":\"g\",\"epsilon\":0.2,\
                             \"phases\":8,\"seed\":{seed}}}"
                        )
                        .expect("send query");
                    }
                    stream.flush().expect("flush");
                    seeds
                        .iter()
                        .map(|_| {
                            let mut line = String::new();
                            reader.read_line(&mut line).expect("read response");
                            let v = Value::parse(line.trim()).expect("response parses");
                            assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
                            (
                                v.get("verdict").unwrap().as_str() == Some("accept"),
                                v.get("rounds").unwrap().as_u64().unwrap(),
                                v.get("words").unwrap().as_u64().unwrap(),
                            )
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let coalesced_secs = started.elapsed().as_secs_f64();

    // Outcomes identical to the sequential baseline, client-major.
    for (c, client_outcomes) in outcomes.iter().enumerate() {
        for (t, &(accepted, rounds, words)) in client_outcomes.iter().enumerate() {
            let reference = &serial[c * per_client as usize + t];
            assert_eq!(
                accepted,
                reference.accepted(),
                "multi-client verdict diverged"
            );
            assert_eq!(
                rounds,
                reference.stats().total_rounds(),
                "multi-client rounds diverged"
            );
            assert_eq!(
                words,
                reference.stats().words,
                "multi-client words diverged"
            );
        }
    }

    // Cross-client coalescing proof: the whole fan-out rode one pass.
    let stats = {
        let mut stream = UnixStream::connect(&socket).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        writeln!(stream, "{{\"op\":\"stats\"}}").expect("send stats");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read stats");
        Value::parse(line.trim()).expect("stats parses")
    };
    assert_eq!(
        stats.get("engine_passes").unwrap().as_u64(),
        Some(1),
        "cross-client fan-out must ride one engine pass"
    );
    server.request_shutdown();
    let _ = server.join();
    let _ = std::fs::remove_file(&socket);

    let serial_qps = total as f64 / serial_secs;
    let coalesced_qps = total as f64 / coalesced_secs;
    let speedup = serial_secs / coalesced_secs;
    println!(
        "multiclient {total:>4} queries x{clients} clients  serial {serial_qps:>8.1} q/s   coalesced {coalesced_qps:>8.1} q/s   speedup {speedup:.2}x",
    );
    let row = Json::obj()
        .field("workload", "cross_client_unix_socket_fanout")
        .field("clients", clients)
        .field("queries_per_client", per_client)
        .field("serial_seconds", serial_secs)
        .field("serial_qps", serial_qps)
        .field("coalesced_seconds", coalesced_secs)
        .field("coalesced_qps", coalesced_qps)
        .field("speedup_vs_serial", speedup);
    (row, speedup)
}

/// Non-unix hosts have no unix sockets; the scenario is skipped and
/// its gate clause is vacuous (recorded as such in the artifact).
#[cfg(not(unix))]
fn multi_client_section() -> (Json, f64) {
    println!("multiclient skipped (no unix sockets on this platform)");
    (
        Json::obj()
            .field("workload", "cross_client_unix_socket_fanout")
            .field("skipped", true),
        1.0,
    )
}

/// Telemetry-overhead scenario: the identical warm-cache replay
/// measured twice — metrics-only (histograms are always on) and with
/// the `--trace` LDJSON writer attached — best of three interleaved
/// repetitions each, so a transient stall cannot fail the gate. The
/// workload
/// is the cold serving path (the cache is cleared before every
/// repetition): that is the traffic a traced deployment actually
/// serves, and per-query trace records must amortize against real
/// engine work. (Tracing a pure warm replay is *measured* by the
/// latency histograms but not gated — four formatted records per
/// sub-microsecond cache hit are inherently proportional cost.) The
/// traced run's event log is left behind as `BENCH_trace.ldjson` (the
/// CI artifact). Returns the JSON row and the traced/plain throughput
/// ratio.
fn overhead_section(queries: &[Query]) -> (Json, f64) {
    const REPS: usize = 3;
    let trace_path = "BENCH_trace.ldjson";

    let build = || {
        let mut service = Service::new();
        for (name, spec_text) in corpus() {
            service
                .registry_mut()
                .ingest_spec(name, &spec_text)
                .expect("corpus spec");
        }
        service
    };
    let one_rep = |service: &mut Service| -> f64 {
        service.clear_cache();
        let started = Instant::now();
        for q in queries {
            service.query(q.clone()).expect("overhead query");
        }
        queries.len() as f64 / started.elapsed().as_secs_f64()
    };

    let mut plain = build();
    let mut traced = build();
    let file = std::fs::File::create(trace_path).expect("create BENCH_trace.ldjson");
    traced
        .telemetry()
        .set_trace_writer(Box::new(std::io::BufWriter::new(file)));

    // The arms are interleaved (plain, traced, plain, traced, …) and
    // each reports its best repetition: the workload is deterministic,
    // so the fastest run is the least-perturbed one, and pairing the
    // arms in time keeps ambient load drift from biasing the ratio.
    let mut plain_qps = 0.0f64;
    let mut traced_qps = 0.0f64;
    for _ in 0..REPS {
        plain_qps = plain_qps.max(one_rep(&mut plain));
        traced_qps = traced_qps.max(one_rep(&mut traced));
    }
    drop(traced); // flush the BufWriter so the artifact is complete

    let ratio = traced_qps / plain_qps;
    println!(
        "overhead   {:>5} queries plain {plain_qps:>10.1} q/s   traced {traced_qps:>8.1} q/s   ratio {ratio:.3}",
        queries.len(),
    );
    let row = Json::obj()
        .field("workload", "cold_path_trace_overhead")
        .field("repetitions", REPS)
        .field("queries_per_repetition", queries.len())
        .field("plain_qps", plain_qps)
        .field("traced_qps", traced_qps)
        .field("throughput_ratio", ratio)
        .field("trace_path", trace_path);
    (row, ratio)
}

/// The CI gate over `BENCH_service.json`.
#[derive(Debug, Clone, Copy)]
pub struct ServiceGate {
    /// Cold p50 over warm p50.
    pub warm_p50_speedup: f64,
    /// Serial wall over coalesced wall on the same-graph fan-out.
    pub coalesced_speedup: f64,
    /// Per-client-serial wall over cross-client coalesced wall on the
    /// multi-client unix-socket scenario.
    pub multi_client_speedup: f64,
    /// Trace-enabled throughput over metrics-only throughput on the
    /// cold serving path (best of three interleaved repetitions each).
    pub trace_overhead: f64,
}

impl ServiceGate {
    /// Minimum accepted cold-p50 / warm-p50 ratio: a cache hit must be
    /// at least an order of magnitude cheaper than an engine pass.
    pub const WARM_SPEEDUP_FLOOR: f64 = 10.0;

    /// Minimum accepted traced/plain throughput ratio: the `--trace`
    /// event log may cost at most 5% of cold-path serving throughput.
    pub const TRACE_OVERHEAD_FLOOR: f64 = 0.95;

    /// Whether the gate passes: warm replay ≥ 10× cheaper at the
    /// median, coalescing at least breaks even with serial drains
    /// (the shared Stage-I pass is the win; no pool required, so this
    /// clause is never vacuous — same stance as the batch gate), the
    /// full transport path — concurrent socket clients through the
    /// background drain loop — at least breaks even with per-client
    /// serial service despite paying framing and scheduling overhead,
    /// and per-query tracing stays within its 5% throughput budget.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.warm_p50_speedup >= Self::WARM_SPEEDUP_FLOOR
            && self.coalesced_speedup >= 1.0
            && self.multi_client_speedup >= 1.0
            && self.trace_overhead >= Self::TRACE_OVERHEAD_FLOOR
    }
}

/// Builds the benchmark document (also printed as tables) plus the gate.
#[must_use]
pub fn service_load_document() -> (Json, ServiceGate) {
    println!("\n## service load benchmark (cold vs warm vs coalesced)");
    let mut service = Service::new();
    let mut ingest_rows = Vec::new();
    let ingest_started = Instant::now();
    for (name, spec_text) in corpus() {
        let entry = service
            .registry_mut()
            .ingest_spec(name, &spec_text)
            .expect("corpus spec");
        ingest_rows.push(
            Json::obj()
                .field("name", name)
                .field("spec", spec_text.as_str())
                .field("fingerprint", entry.fingerprint.to_string())
                .field("n", entry.graph.n())
                .field("m", entry.graph.m()),
        );
    }
    let ingest_secs = ingest_started.elapsed().as_secs_f64();

    let queries = query_mix(&service);
    let (cold_micros, cold_wall, cold_verdicts) = run_pass(&mut service, &queries, None);
    let (cold_row, cold_p50) = latency_row("cold", &cold_micros, cold_wall);
    let passes_after_cold = service.engine_passes();

    let (warm_micros, warm_wall, _) = run_pass(&mut service, &queries, Some(&cold_verdicts));
    let (warm_row, warm_p50) = latency_row("warm", &warm_micros, warm_wall);
    assert_eq!(
        service.engine_passes(),
        passes_after_cold,
        "warm pass must be engine-free"
    );

    let (coalesce_row, coalesced_speedup) = coalesce_section(&mut service);
    let (multi_client_row, multi_client_speedup) = multi_client_section();
    let (overhead_row, trace_overhead) = overhead_section(&queries);

    let warm_p50_speedup = cold_p50 as f64 / (warm_p50.max(1)) as f64;
    println!("warm p50 speedup {warm_p50_speedup:.1}x (cold {cold_p50}us / warm {warm_p50}us)");
    let gate = ServiceGate {
        warm_p50_speedup,
        coalesced_speedup,
        multi_client_speedup,
        trace_overhead,
    };
    let stats = service.stats();
    let doc = Json::obj()
        .field("schema", "planartest-bench/service/v3")
        .field("quick_mode", quick())
        .field(
            "registry",
            Json::obj()
                .field("graphs", ingest_rows)
                .field("ingest_seconds", ingest_secs),
        )
        .field("cold", cold_row)
        .field("warm", warm_row)
        .field("coalesce", coalesce_row)
        .field("multi_client", multi_client_row)
        .field("trace_overhead", overhead_row)
        .field(
            "cache",
            Json::obj()
                .field("slots", stats.cache_slots)
                .field("stored_outcomes", stats.cached_outcomes)
                .field("warm_hits", stats.cache.warm_hits)
                .field("certificate_hits", stats.cache.certificate_hits)
                .field("misses", stats.cache.misses)
                .field("evictions", stats.cache.evictions),
        )
        .field(
            "gate",
            Json::obj()
                .field("warm_p50_speedup", warm_p50_speedup)
                .field("warm_p50_speedup_floor", ServiceGate::WARM_SPEEDUP_FLOOR)
                .field("coalesced_speedup", coalesced_speedup)
                .field("coalesced_speedup_floor", 1.0)
                .field("multi_client_speedup", multi_client_speedup)
                .field("multi_client_speedup_floor", 1.0)
                .field("trace_overhead", trace_overhead)
                .field("trace_overhead_floor", ServiceGate::TRACE_OVERHEAD_FLOOR)
                .field("pass", gate.pass()),
        );
    (doc, gate)
}

/// Runs the benchmark and writes `BENCH_service.json` into the current
/// directory (the repo root under `cargo run`); returns the CI gate.
pub fn service_load() -> ServiceGate {
    let (doc, gate) = service_load_document();
    let path = "BENCH_service.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_service.json");
    println!("wrote {path}");
    gate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_track_exact_ranks() {
        // Group-0 values (< 16) are bucket-exact; larger values may
        // round up by at most one bucket width (value/16 + 1).
        let sample = [1u64, 2, 3, 4, 100];
        let mut hist = Histogram::new();
        for &v in &sample {
            hist.record(v);
        }
        assert_eq!(hist.value_at_quantile(0.0), 1);
        assert_eq!(hist.value_at_quantile(0.5), 3);
        let p100 = hist.value_at_quantile(1.0);
        assert!((100..=100 + 100 / 16 + 1).contains(&p100));
    }

    #[test]
    fn gate_thresholds() {
        let gate = |warm: f64, coalesce: f64, multi: f64, trace: f64| ServiceGate {
            warm_p50_speedup: warm,
            coalesced_speedup: coalesce,
            multi_client_speedup: multi,
            trace_overhead: trace,
        };
        assert!(gate(10.0, 1.0, 1.0, 0.95).pass());
        assert!(!gate(9.9, 1.0, 1.0, 0.95).pass());
        assert!(!gate(10.0, 0.99, 1.0, 0.95).pass());
        assert!(!gate(10.0, 1.0, 0.99, 0.95).pass());
        assert!(!gate(10.0, 1.0, 1.0, 0.94).pass());
        assert!(gate(500.0, 3.0, 2.5, 1.02).pass());
    }

    #[test]
    fn corpus_specs_parse() {
        for (_, spec_text) in corpus() {
            planartest_graph::generators::spec::parse(&spec_text).expect("corpus spec");
        }
    }
}
