//! E13 — closed-loop load driver for the query service layer, written
//! both as tables and as machine-readable `BENCH_service.json`.
//!
//! Three measurements, mirroring the service's three cost levers:
//!
//! * **cold** — every query pays an engine pass (distinct graph ×
//!   config × seed combinations, issued one at a time);
//! * **warm** — the identical queries replayed against the populated
//!   cache (one-sided-error retention: accepts per seed, rejects as
//!   permanent certificates);
//! * **coalesced vs serial** — the same same-graph Monte-Carlo fan-out
//!   issued one query per drain (serial) vs one coalesced drain riding
//!   a single `run_many` engine pass.
//!
//! The `--check` gate enforces the service-layer contract: warm-cache
//! p50 latency at least [`ServiceGate::WARM_SPEEDUP_FLOOR`]× better
//! than cold, and coalesced throughput at least the serial baseline.

use std::time::Instant;

use planartest_core::TesterConfig;
use planartest_service::{CacheStatus, GraphRef, Outcome, Property, Query, Service};

use crate::json::Json;
use crate::quick;

/// Latency percentile over a sample of per-query wall-clocks.
fn percentile_micros(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn latency_row(label: &str, micros: &mut [u64], wall_secs: f64) -> (Json, u64) {
    micros.sort_unstable();
    let (p50, p95, p99) = (
        percentile_micros(micros, 0.50),
        percentile_micros(micros, 0.95),
        percentile_micros(micros, 0.99),
    );
    let qps = micros.len() as f64 / wall_secs;
    println!(
        "{label:<10} {:>5} queries {qps:>10.1} q/s   p50 {p50:>8}us  p95 {p95:>8}us  p99 {p99:>8}us",
        micros.len(),
    );
    let row = Json::obj()
        .field("queries", micros.len())
        .field("wall_seconds", wall_secs)
        .field("throughput_qps", qps)
        .field("p50_micros", p50)
        .field("p95_micros", p95)
        .field("p99_micros", p99);
    (row, p50)
}

/// The graph mix: planar (accepts, cached per seed), certified-far
/// (rejects, cached as permanent certificates), and a denser planar
/// instance — all ingested once, resident thereafter.
fn corpus() -> Vec<(&'static str, String)> {
    let side = if quick() { 14 } else { 24 };
    let tiles = if quick() { 16 } else { 40 };
    let n = if quick() { 150 } else { 400 };
    vec![
        ("tri", format!("tri_grid({side},{side})")),
        ("far", format!("k5_chain({tiles})")),
        ("rp", format!("random_planar({n}, 0.7, seed=3)")),
    ]
}

fn query_mix(service: &Service) -> Vec<Query> {
    let seeds = if quick() { 4u64 } else { 8 };
    let mut queries = Vec::new();
    for entry in service.registry().entries() {
        let name = entry.names[0].clone();
        for &eps in &[0.1, 0.2] {
            for seed in 0..seeds {
                queries.push(Query::planarity(
                    GraphRef::Name(name.clone()),
                    TesterConfig::new(eps).with_phases(8).with_seed(seed),
                ));
            }
        }
        // The deterministic Corollary 16 properties ride the same
        // service (one cache stripe each).
        for property in [Property::CycleFreeness, Property::Bipartiteness] {
            queries.push(
                Query::planarity(
                    GraphRef::Name(name.clone()),
                    TesterConfig::new(0.1).with_phases(8),
                )
                .with_property(property),
            );
        }
    }
    queries
}

/// Cold pass: every query issued alone, each timed individually.
fn run_pass(
    service: &mut Service,
    queries: &[Query],
    expect: Option<&[bool]>,
) -> (Vec<u64>, f64, Vec<bool>) {
    let mut micros = Vec::with_capacity(queries.len());
    let mut verdicts = Vec::with_capacity(queries.len());
    let started = Instant::now();
    for (i, q) in queries.iter().enumerate() {
        let one = Instant::now();
        let r = service.query(q.clone()).expect("query");
        micros.push(one.elapsed().as_micros() as u64);
        verdicts.push(r.outcome.accepted());
        if let Some(expect) = expect {
            assert_eq!(
                verdicts[i], expect[i],
                "cache replay changed a verdict (query {i})"
            );
            assert_ne!(r.cache, CacheStatus::Cold, "warm pass hit the engine");
        }
    }
    (micros, started.elapsed().as_secs_f64(), verdicts)
}

/// Serial vs coalesced fan-out of one graph's Monte-Carlo sweep.
fn coalesce_section(service: &mut Service) -> (Json, f64) {
    let trials = 16u64;
    let make = |seed: u64| {
        Query::planarity(
            GraphRef::Name("tri".into()),
            TesterConfig::new(0.2).with_seed(seed),
        )
    };

    // Serial: one query per drain — one engine pass each.
    service.clear_cache();
    let started = Instant::now();
    let serial: Vec<Outcome> = (0..trials)
        .map(|seed| service.query(make(seed)).expect("query").outcome)
        .collect();
    let serial_secs = started.elapsed().as_secs_f64();

    // Coalesced: one drain — one engine pass for the whole sweep.
    service.clear_cache();
    let passes_before = service.engine_passes();
    let started = Instant::now();
    for seed in 0..trials {
        service.submit(make(seed));
    }
    let drained = service.drain();
    let coalesced_secs = started.elapsed().as_secs_f64();
    assert_eq!(
        service.engine_passes() - passes_before,
        1,
        "coalesced sweep must ride one engine pass"
    );
    for ((_, result), solo) in drained.iter().zip(&serial) {
        let outcome = &result.as_ref().expect("drained").outcome;
        assert_eq!(
            outcome.accepted(),
            solo.accepted(),
            "coalesced verdict diverged from serial"
        );
        assert_eq!(outcome.stats(), solo.stats(), "coalesced stats diverged");
    }

    let serial_qps = trials as f64 / serial_secs;
    let coalesced_qps = trials as f64 / coalesced_secs;
    let speedup = serial_secs / coalesced_secs;
    println!(
        "coalesce   {trials:>5} queries serial {serial_qps:>8.1} q/s   coalesced {coalesced_qps:>8.1} q/s   speedup {speedup:.2}x",
    );
    let row = Json::obj()
        .field("workload", "same_graph_monte_carlo_fanout")
        .field("trials", trials)
        .field("serial_seconds", serial_secs)
        .field("serial_qps", serial_qps)
        .field("coalesced_seconds", coalesced_secs)
        .field("coalesced_qps", coalesced_qps)
        .field("speedup_vs_serial", speedup);
    (row, speedup)
}

/// The CI gate over `BENCH_service.json`.
#[derive(Debug, Clone, Copy)]
pub struct ServiceGate {
    /// Cold p50 over warm p50.
    pub warm_p50_speedup: f64,
    /// Serial wall over coalesced wall on the same-graph fan-out.
    pub coalesced_speedup: f64,
}

impl ServiceGate {
    /// Minimum accepted cold-p50 / warm-p50 ratio: a cache hit must be
    /// at least an order of magnitude cheaper than an engine pass.
    pub const WARM_SPEEDUP_FLOOR: f64 = 10.0;

    /// Whether the gate passes: warm replay ≥ 10× cheaper at the
    /// median, and coalescing at least breaks even with serial drains
    /// (the shared Stage-I pass is the win; no pool required, so this
    /// clause is never vacuous — same stance as the batch gate).
    #[must_use]
    pub fn pass(&self) -> bool {
        self.warm_p50_speedup >= Self::WARM_SPEEDUP_FLOOR && self.coalesced_speedup >= 1.0
    }
}

/// Builds the benchmark document (also printed as tables) plus the gate.
#[must_use]
pub fn service_load_document() -> (Json, ServiceGate) {
    println!("\n## service load benchmark (cold vs warm vs coalesced)");
    let mut service = Service::new();
    let mut ingest_rows = Vec::new();
    let ingest_started = Instant::now();
    for (name, spec_text) in corpus() {
        let entry = service
            .registry_mut()
            .ingest_spec(name, &spec_text)
            .expect("corpus spec");
        ingest_rows.push(
            Json::obj()
                .field("name", name)
                .field("spec", spec_text.as_str())
                .field("fingerprint", entry.fingerprint.to_string())
                .field("n", entry.graph.n())
                .field("m", entry.graph.m()),
        );
    }
    let ingest_secs = ingest_started.elapsed().as_secs_f64();

    let queries = query_mix(&service);
    let (mut cold_micros, cold_wall, cold_verdicts) = run_pass(&mut service, &queries, None);
    let (cold_row, cold_p50) = latency_row("cold", &mut cold_micros, cold_wall);
    let passes_after_cold = service.engine_passes();

    let (mut warm_micros, warm_wall, _) = run_pass(&mut service, &queries, Some(&cold_verdicts));
    let (warm_row, warm_p50) = latency_row("warm", &mut warm_micros, warm_wall);
    assert_eq!(
        service.engine_passes(),
        passes_after_cold,
        "warm pass must be engine-free"
    );

    let (coalesce_row, coalesced_speedup) = coalesce_section(&mut service);

    let warm_p50_speedup = cold_p50 as f64 / (warm_p50.max(1)) as f64;
    println!("warm p50 speedup {warm_p50_speedup:.1}x (cold {cold_p50}us / warm {warm_p50}us)");
    let gate = ServiceGate {
        warm_p50_speedup,
        coalesced_speedup,
    };
    let stats = service.stats();
    let doc = Json::obj()
        .field("schema", "planartest-bench/service/v1")
        .field("quick_mode", quick())
        .field(
            "registry",
            Json::obj()
                .field("graphs", ingest_rows)
                .field("ingest_seconds", ingest_secs),
        )
        .field("cold", cold_row)
        .field("warm", warm_row)
        .field("coalesce", coalesce_row)
        .field(
            "cache",
            Json::obj()
                .field("slots", stats.cache_slots)
                .field("stored_outcomes", stats.cached_outcomes)
                .field("warm_hits", stats.cache.warm_hits)
                .field("certificate_hits", stats.cache.certificate_hits)
                .field("misses", stats.cache.misses),
        )
        .field(
            "gate",
            Json::obj()
                .field("warm_p50_speedup", warm_p50_speedup)
                .field("warm_p50_speedup_floor", ServiceGate::WARM_SPEEDUP_FLOOR)
                .field("coalesced_speedup", coalesced_speedup)
                .field("coalesced_speedup_floor", 1.0)
                .field("pass", gate.pass()),
        );
    (doc, gate)
}

/// Runs the benchmark and writes `BENCH_service.json` into the current
/// directory (the repo root under `cargo run`); returns the CI gate.
pub fn service_load() -> ServiceGate {
    let (doc, gate) = service_load_document();
    let path = "BENCH_service.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_service.json");
    println!("wrote {path}");
    gate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_ranks() {
        let sorted = vec![1, 2, 3, 4, 100];
        assert_eq!(percentile_micros(&sorted, 0.0), 1);
        assert_eq!(percentile_micros(&sorted, 0.5), 3);
        assert_eq!(percentile_micros(&sorted, 1.0), 100);
    }

    #[test]
    fn gate_thresholds() {
        let gate = |warm: f64, coalesce: f64| ServiceGate {
            warm_p50_speedup: warm,
            coalesced_speedup: coalesce,
        };
        assert!(gate(10.0, 1.0).pass());
        assert!(!gate(9.9, 1.0).pass());
        assert!(!gate(10.0, 0.99).pass());
        assert!(gate(500.0, 3.0).pass());
    }

    #[test]
    fn corpus_specs_parse() {
        for (_, spec_text) in corpus() {
            planartest_graph::generators::spec::parse(&spec_text).expect("corpus spec");
        }
    }
}
