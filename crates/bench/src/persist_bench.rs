//! E14 — durability benchmark for the tiered registry and certificate
//! log; writes `BENCH_persist.json`.
//!
//! Three measurements, mirroring the persistence layer's three
//! promises:
//!
//! * **certificate replay** — a certified-far corpus is rejected cold
//!   (every query pays an engine pass), the service is dropped, and a
//!   *fresh* process-equivalent service re-attaches the same state
//!   directory: the identical queries must come back as certificate
//!   replays, and the replay p50 must beat the cold p50 by at least
//!   [`PersistGate::REPLAY_SPEEDUP_FLOOR`]× (a reject is a permanent
//!   proof; serving it again must never cost an engine pass);
//! * **streaming ingest** — a ≥10⁶-node grid is streamed spec→disk
//!   through the two-pass counting-sort builder without materializing
//!   a heap CSR, then memory-mapped; the whole pipeline must fit the
//!   quick-mode CI budget and the entry must be born mapped;
//! * **mapped vs resident parity** — the same graph served from a
//!   heap-resident CSR and from the mmap-backed tier must produce
//!   bit-identical outcomes (verdict, rounds, words) under an identical
//!   query mix — the engine cannot tell the tiers apart.
//!
//! The `--check` binary turns [`PersistGate::pass`] into an exit code
//! for CI, the same contract as `runtime_bench` and `service_load`.

use std::path::{Path, PathBuf};
use std::time::Instant;

use planartest_core::TesterConfig;
use planartest_service::{CacheStatus, GraphRef, Histogram, Query, Service};

use crate::json::Json;
use crate::quick;

/// Certified-far corpus: every member rejects, so every cold query
/// mints a durable certificate.
fn far_corpus() -> Vec<(&'static str, String)> {
    let tiles = if quick() { 24 } else { 64 };
    let n = if quick() { 120 } else { 300 };
    vec![
        ("far_k5", format!("k5_chain({tiles})")),
        (
            "far_chords",
            format!("planar_plus_chords({n}, {n}, seed=7)"),
        ),
    ]
}

fn reject_queries(names: &[&str]) -> Vec<Query> {
    let seeds = if quick() { 3u64 } else { 6 };
    let mut queries = Vec::new();
    for &name in names {
        for seed in 0..seeds {
            queries.push(Query::planarity(
                GraphRef::Name(name.to_string()),
                TesterConfig::new(0.05).with_phases(8).with_seed(seed),
            ));
        }
    }
    queries
}

fn p50(micros: &[u64]) -> u64 {
    let mut hist = Histogram::new();
    for &v in micros {
        hist.record(v);
    }
    hist.value_at_quantile(0.50)
}

/// Cold-reject / restart-replay scenario. Returns the JSON row and the
/// cold-p50 / replay-p50 ratio.
fn replay_section(dir: &Path) -> (Json, f64) {
    let corpus = far_corpus();
    let names: Vec<&str> = corpus.iter().map(|(n, _)| *n).collect();
    let queries = reject_queries(&names);

    // Cold pass: a first service owns the state dir, ingests the far
    // corpus and pays one engine pass per certificate.
    let mut service = Service::new();
    service.set_state_dir(dir).expect("attach state dir");
    for (name, spec_text) in &corpus {
        service
            .registry_mut()
            .ingest_spec(name, spec_text)
            .expect("corpus spec");
    }
    // Only queries that actually hit the engine count as "recompute"
    // cost: one-sided error means the first reject per graph already
    // certifies every later seed, so the in-memory certificate absorbs
    // the rest of the sweep even before any restart.
    let mut cold_micros = Vec::new();
    let mut cold_outcomes = Vec::with_capacity(queries.len());
    let started = Instant::now();
    for q in &queries {
        let one = Instant::now();
        let r = service.query(q.clone()).expect("cold query");
        if r.cache == CacheStatus::Cold {
            cold_micros.push(one.elapsed().as_micros() as u64);
        }
        assert!(!r.outcome.accepted(), "far corpus must reject");
        cold_outcomes.push((
            r.outcome.accepted(),
            r.outcome.stats().total_rounds(),
            r.outcome.stats().words,
        ));
    }
    let cold_wall = started.elapsed().as_secs_f64();
    assert_eq!(
        cold_micros.len(),
        corpus.len(),
        "exactly one engine pass per far graph"
    );
    let engine_passes = service.engine_passes();
    drop(service);

    // Restart: a fresh service re-attaches the directory. Graph
    // bindings come back mapped from the manifest, certificates replay
    // from the log — the same queries must never touch the engine.
    let mut revived = Service::new();
    let summary = revived.set_state_dir(dir).expect("re-attach state dir");
    assert_eq!(
        summary.graphs_restored,
        corpus.len(),
        "manifest must restore every binding"
    );
    assert!(
        summary.certificates_replayed >= 1,
        "certificate log must replay at least one reject"
    );
    let mut replay_micros = Vec::with_capacity(queries.len());
    let started = Instant::now();
    for (q, cold) in queries.iter().zip(&cold_outcomes) {
        let one = Instant::now();
        let r = revived.query(q.clone()).expect("replay query");
        replay_micros.push(one.elapsed().as_micros() as u64);
        assert_ne!(r.cache, CacheStatus::Cold, "replay pass hit the engine");
        let got = (
            r.outcome.accepted(),
            r.outcome.stats().total_rounds(),
            r.outcome.stats().words,
        );
        assert_eq!(&got, cold, "replayed outcome diverged from cold run");
    }
    let replay_wall = started.elapsed().as_secs_f64();
    assert_eq!(revived.engine_passes(), 0, "replay must be engine-free");

    let cold_p50 = p50(&cold_micros);
    let replay_p50 = p50(&replay_micros);
    let speedup = cold_p50 as f64 / replay_p50.max(1) as f64;
    println!(
        "replay     {:>5} queries cold p50 {cold_p50:>8}us   replay p50 {replay_p50:>6}us   speedup {speedup:.1}x",
        queries.len(),
    );
    let row = Json::obj()
        .field("queries", queries.len())
        .field("cold_engine_queries", cold_micros.len())
        .field("cold_engine_passes", engine_passes)
        .field("cold_wall_seconds", cold_wall)
        .field("cold_p50_micros", cold_p50)
        .field("replay_wall_seconds", replay_wall)
        .field("replay_p50_micros", replay_p50)
        .field("certificates_replayed", summary.certificates_replayed)
        .field("graphs_restored", summary.graphs_restored)
        .field("speedup", speedup);
    (row, speedup)
}

/// Streaming-ingest scenario: spec → two-pass disk build → mmap,
/// never materializing a heap CSR. Returns the JSON row and the node
/// count that actually streamed.
fn streaming_section(dir: &Path) -> (Json, u64) {
    // 10⁶ nodes in both modes: the acceptance bar is that out-of-core
    // ingest at this scale fits the CI budget, not a scaled-down proxy.
    let spec_text = "grid(1000,1000)";
    let mut service = Service::new();
    service.set_state_dir(dir).expect("attach state dir");
    let started = Instant::now();
    let entry = service
        .registry_mut()
        .ingest_spec_to_disk("mega", spec_text)
        .expect("streaming ingest");
    let secs = started.elapsed().as_secs_f64();
    let (n, m) = (entry.graph.n() as u64, entry.graph.m() as u64);
    let mapped = entry.graph.is_mapped();
    let fingerprint = entry.fingerprint;
    assert!(mapped, "streamed graph must be born mapped");
    let csr_bytes = std::fs::metadata(dir.join("csr").join(format!("{fingerprint}.csr")))
        .map(|meta| meta.len())
        .unwrap_or(0);
    let rate = n as f64 / secs.max(1e-9) / 1e6;
    println!(
        "stream     {spec_text} n={n} m={m}   {secs:.2}s ({rate:.1} Mnode/s)   csr {:.1} MiB   mapped={mapped}",
        csr_bytes as f64 / (1024.0 * 1024.0),
    );
    let row = Json::obj()
        .field("spec", spec_text)
        .field("n", n)
        .field("m", m)
        .field("seconds", secs)
        .field("nodes_per_second", n as f64 / secs.max(1e-9))
        .field("csr_bytes", csr_bytes)
        .field("fingerprint", fingerprint.to_string())
        .field("born_mapped", mapped);
    (row, n)
}

/// Mapped-vs-resident parity: one graph served from the heap tier and
/// from the mmap tier under the same query mix; outcomes must agree
/// bit for bit. Returns the JSON row and whether parity held.
fn parity_section(dir: &Path) -> (Json, bool) {
    let side = if quick() { 20 } else { 32 };
    let spec_text = format!("tri_grid({side},{side})");
    let seeds = if quick() { 4u64 } else { 8 };
    let make = |seed: u64| {
        Query::planarity(
            GraphRef::Name("g".into()),
            TesterConfig::new(0.1).with_phases(8).with_seed(seed),
        )
    };
    let run = |service: &mut Service| -> (Vec<(bool, u64, u64)>, f64) {
        let started = Instant::now();
        let outs = (0..seeds)
            .map(|seed| {
                let r = service.query(make(seed)).expect("parity query");
                (
                    r.outcome.accepted(),
                    r.outcome.stats().total_rounds(),
                    r.outcome.stats().words,
                )
            })
            .collect();
        (outs, started.elapsed().as_secs_f64())
    };

    // Resident tier: plain in-memory ingest, no state dir.
    let mut resident = Service::new();
    resident
        .registry_mut()
        .ingest_spec("g", &spec_text)
        .expect("resident spec");
    assert!(!resident
        .registry()
        .resolve(&GraphRef::Name("g".into()))
        .expect("resolve")
        .graph
        .is_mapped());
    let (resident_outs, resident_secs) = run(&mut resident);

    // Mapped tier: the same spec streamed to disk and memory-mapped.
    let mut mapped = Service::new();
    mapped.set_state_dir(dir).expect("attach state dir");
    let entry = mapped
        .registry_mut()
        .ingest_spec_to_disk("g", &spec_text)
        .expect("mapped spec");
    assert!(entry.graph.is_mapped(), "disk ingest must map the graph");
    let (mapped_outs, mapped_secs) = run(&mut mapped);

    let parity = resident_outs == mapped_outs;
    assert!(parity, "mapped tier diverged from resident tier");
    println!(
        "parity     {spec_text} x{seeds} seeds   resident {resident_secs:.3}s   mapped {mapped_secs:.3}s   identical={parity}",
    );
    let row = Json::obj()
        .field("spec", spec_text.as_str())
        .field("seeds", seeds)
        .field("resident_seconds", resident_secs)
        .field("mapped_seconds", mapped_secs)
        .field("outcomes_identical", parity);
    (row, parity)
}

/// The CI gate over `BENCH_persist.json`.
#[derive(Debug, Clone, Copy)]
pub struct PersistGate {
    /// Cold-reject p50 over restart-replay p50.
    pub replay_p50_speedup: f64,
    /// Nodes streamed through the out-of-core ingest pipeline.
    pub streamed_nodes: u64,
    /// Whether mapped-tier outcomes matched the resident tier bit for
    /// bit.
    pub tier_parity: bool,
}

impl PersistGate {
    /// Minimum accepted cold-p50 / replay-p50 ratio: serving a stored
    /// certificate must beat recomputing it by at least two orders of
    /// magnitude (measured ~1000× or better in practice; 100× leaves
    /// headroom for noisy CI hosts without ever letting a replay that
    /// secretly re-runs the engine slip through).
    pub const REPLAY_SPEEDUP_FLOOR: f64 = 100.0;

    /// Minimum node count the streaming-ingest scenario must push
    /// through the two-pass disk builder, in quick mode included.
    pub const STREAM_NODES_FLOOR: u64 = 1_000_000;

    /// Whether the gate passes: certificate replay ≥ 100× cheaper than
    /// recompute at the median, at least 10⁶ nodes streamed spec→disk
    /// →mmap inside the CI budget, and the mapped tier bit-identical
    /// to the resident tier.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.replay_p50_speedup >= Self::REPLAY_SPEEDUP_FLOOR
            && self.streamed_nodes >= Self::STREAM_NODES_FLOOR
            && self.tier_parity
    }
}

/// Builds the benchmark document (also printed as tables) plus the
/// gate. State lives under a per-process temp directory, removed on
/// the way out.
#[must_use]
pub fn persist_bench_document() -> (Json, PersistGate) {
    println!("\n## persistence benchmark (certificate replay / streaming ingest / tier parity)");
    let root = scratch_dir();
    let (replay_row, replay_p50_speedup) = replay_section(&root.join("replay"));
    let (stream_row, streamed_nodes) = streaming_section(&root.join("stream"));
    let (parity_row, tier_parity) = parity_section(&root.join("parity"));
    let _ = std::fs::remove_dir_all(&root);

    let gate = PersistGate {
        replay_p50_speedup,
        streamed_nodes,
        tier_parity,
    };
    let doc = Json::obj()
        .field("schema", "planartest-bench/persist/v1")
        .field("quick_mode", quick())
        .field("certificate_replay", replay_row)
        .field("streaming_ingest", stream_row)
        .field("tier_parity", parity_row)
        .field(
            "gate",
            Json::obj()
                .field("replay_p50_speedup", replay_p50_speedup)
                .field(
                    "replay_p50_speedup_floor",
                    PersistGate::REPLAY_SPEEDUP_FLOOR,
                )
                .field("streamed_nodes", streamed_nodes)
                .field("streamed_nodes_floor", PersistGate::STREAM_NODES_FLOOR)
                .field("tier_parity", tier_parity)
                .field("pass", gate.pass()),
        );
    (doc, gate)
}

fn scratch_dir() -> PathBuf {
    let root = std::env::temp_dir().join(format!("planartest-e14-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create bench scratch dir");
    root
}

/// Runs the benchmark and writes `BENCH_persist.json` into the current
/// directory (the repo root under `cargo run`); returns the CI gate.
pub fn persist_bench() -> PersistGate {
    let (doc, gate) = persist_bench_document();
    let path = "BENCH_persist.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_persist.json");
    println!("wrote {path}");
    gate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_thresholds() {
        let gate = |replay: f64, nodes: u64, parity: bool| PersistGate {
            replay_p50_speedup: replay,
            streamed_nodes: nodes,
            tier_parity: parity,
        };
        assert!(gate(100.0, 1_000_000, true).pass());
        assert!(!gate(99.9, 1_000_000, true).pass());
        assert!(!gate(100.0, 999_999, true).pass());
        assert!(!gate(100.0, 1_000_000, false).pass());
        assert!(gate(1800.0, 1_002_001, true).pass());
    }

    #[test]
    fn far_corpus_specs_parse_and_reject() {
        for (_, spec_text) in far_corpus() {
            planartest_graph::generators::spec::parse(&spec_text).expect("corpus spec");
        }
    }
}
