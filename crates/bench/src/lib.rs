//! Experiment harness for `EXPERIMENTS.md`: workload construction,
//! sweeps, and the table printers behind the `e1`–`e13` binaries.
//!
//! Every experiment is a plain function so the `all_experiments` binary
//! (and tests) can run them programmatically; binaries are thin wrappers.
//! Sizes respect the `PLANARTEST_QUICK` environment variable (any value →
//! smaller sweeps) so CI stays fast while full runs remain one command.
//!
//! Three experiments double as CI performance gates, each writing a
//! machine-readable artifact: [`runtime_bench`] (`BENCH_runtime.json`,
//! engine/tester/batching/kernel speedups), [`service_load`]
//! (`BENCH_service.json`, the query service's cold/warm latency and
//! coalescing throughput) and [`persist_bench`] (`BENCH_persist.json`,
//! certificate-replay speedup, out-of-core streaming ingest and
//! mapped-vs-resident tier parity). Their `--check` binaries fail the
//! build on regression.

use planartest_core::applications::{build_spanner, test_bipartiteness, test_cycle_freeness};
use planartest_core::baselines::{random_shift_partition, shift_spanner, RandomShiftConfig};
use planartest_core::oracle;
use planartest_core::partition::randomized::{run_randomized_partition, RandomPartitionConfig};
use planartest_core::partition::run_partition;
use planartest_core::{EmbeddingMode, PlanarityTester, TesterConfig};
use planartest_embed::demoucron::check_planarity;
use planartest_embed::hints;
use planartest_graph::generators::{nonplanar, planar, Certified};
use planartest_graph::{Graph, NodeId};
use planartest_sim::{Engine, SimConfig, TrialRunner};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod json;
mod load_bench;
mod persist_bench;
mod runtime_bench;
mod service_load;

pub use load_bench::{
    build_workload, load_bench, load_bench_document, Arrival, LoadGate, OpKind, Workload,
    CONNECTIONS, KNEE_FRACTION, LOAD_SEED,
};
pub use persist_bench::{persist_bench, persist_bench_document, PersistGate};
pub use runtime_bench::{runtime_bench, runtime_bench_document, BenchGate};
pub use service_load::{service_load, service_load_document, ServiceGate};

/// Whether quick (CI-sized) sweeps were requested.
pub fn quick() -> bool {
    std::env::var_os("PLANARTEST_QUICK").is_some()
}

fn scale(full: usize, quick_val: usize) -> usize {
    if quick() {
        quick_val
    } else {
        full
    }
}

/// A tester configuration with practical phase counts (the paper's
/// worst-case `t ≈ 106` is justified by Claim 1's pessimistic decay; E4
/// measures the actual decay, which is far faster — 8–12 phases reach the
/// target cut on every family we generate).
pub fn practical_cfg(eps: f64) -> TesterConfig {
    TesterConfig::new(eps).with_phases(10)
}

fn header(title: &str, columns: &str) {
    println!("\n## {title}");
    println!("{columns}");
}

/// E1 — Theorem 1 correctness: acceptance on planar families, rejection
/// rates on certified-far families across seeds.
///
/// The per-family Monte-Carlo sweep is served by
/// [`PlanarityTester::run_many`]: all seeds of a family ride one
/// instance-multiplexed pass (shared Stage I, batched Stage-II sample
/// streams) instead of one full tester run per seed.
pub fn e1_correctness() {
    header(
        "E1 Theorem 1 correctness (one-sided error)",
        "family                              n      m   far>=   accept-rate  (expected)",
    );
    let n = scale(1024, 256);
    let seeds: Vec<u64> = (0..scale(10, 4) as u64).collect();
    let mut rng = StdRng::seed_from_u64(1);
    let planar_families: Vec<Certified> = vec![
        planar::triangulated_grid(isqrt(n), isqrt(n)),
        planar::apollonian(n.min(400), &mut rng),
        planar::random_planar(n.min(400), 0.7, &mut rng),
        planar::random_tree(n, &mut rng),
        planar::maximal_outerplanar(n.min(400), &mut rng),
    ];
    for fam in &planar_families {
        let accepts = PlanarityTester::new(practical_cfg(0.1))
            .run_many(&fam.graph, &seeds)
            .expect("run")
            .iter()
            .filter(|out| out.accepted())
            .count();
        print_family_row(fam, accepts, seeds.len(), "1.00");
    }
    let far_families: Vec<Certified> = vec![
        nonplanar::k5_chain(n / 5),
        nonplanar::planar_plus_chords(n.min(300), n.min(300), &mut rng),
        nonplanar::near_regular(n.min(512), 8, &mut rng),
        nonplanar::gnp(n.min(512), 8.0 / n.min(512) as f64, &mut rng),
    ];
    for fam in &far_families {
        let rejects = PlanarityTester::new(practical_cfg(0.05))
            .run_many(&fam.graph, &seeds)
            .expect("run")
            .iter()
            .filter(|out| !out.accepted())
            .count();
        print_family_row(fam, rejects, seeds.len(), "1.00 (reject)");
    }
}

fn print_family_row(fam: &Certified, hits: usize, total: usize, expected: &str) {
    println!(
        "{:<34} {:>5} {:>6} {:>7.3}   {:>6.2}       {}",
        fam.name,
        fam.graph.n(),
        fam.graph.m(),
        fam.far_fraction(),
        hits as f64 / total as f64,
        expected
    );
}

/// E2 — rounds vs `n` at fixed ε: the `rounds / log₂ n` column should
/// flatten (Theorem 1's `O(log n · poly(1/ε))`).
pub fn e2_rounds_vs_n() {
    header(
        "E2 rounds vs n (fixed eps=0.1)",
        "family          n       m     rounds   rounds/log2(n)",
    );
    let sizes: Vec<usize> = if quick() {
        vec![64, 144, 256]
    } else {
        vec![64, 256, 1024, 2304, 4096]
    };
    // Independent sizes: fan across cores, print in deterministic order.
    let rows = TrialRunner::auto().map(sizes, |n| {
        let side = isqrt(n);
        let fam = planar::triangulated_grid(side, side);
        let rot =
            hints::rotation_from_coordinates(&fam.graph, &hints::grid_coordinates(side, side))
                .expect("grid coordinates");
        let cfg = practical_cfg(0.1).with_embedding(EmbeddingMode::Hint(rot));
        let out = PlanarityTester::new(cfg).run(&fam.graph).expect("run");
        (fam.graph.n(), fam.graph.m(), out.rounds())
    });
    for (n, m, rounds) in rows {
        let lg = (n as f64).log2();
        println!(
            "{:<14} {:>5} {:>7} {:>10} {:>12.1}",
            "tri_grid",
            n,
            m,
            rounds,
            rounds as f64 / lg
        );
    }
}

/// E3 — rounds vs `1/ε` at fixed `n`.
pub fn e3_rounds_vs_eps() {
    header(
        "E3 rounds vs eps (tri_grid)",
        "eps     phases   rounds    cut-fraction",
    );
    let side = if quick() { 12 } else { 24 };
    let fam = planar::triangulated_grid(side, side);
    let rows = TrialRunner::auto().map(vec![0.4, 0.3, 0.2, 0.1, 0.05], |eps| {
        let cfg = TesterConfig::new(eps); // derived (paper) phase count
        let phases = cfg.phases(fam.graph.n());
        let rot =
            hints::rotation_from_coordinates(&fam.graph, &hints::grid_coordinates(side, side))
                .expect("grid");
        let cfg = cfg
            .with_phases(phases.min(24))
            .with_embedding(EmbeddingMode::Hint(rot));
        let mut engine = Engine::new(&fam.graph, SimConfig::default());
        let p = run_partition(&mut engine, &cfg).expect("partition");
        let cut = p.state.cut_weight(&fam.graph) as f64 / fam.graph.m() as f64;
        let out = PlanarityTester::new(cfg).run(&fam.graph).expect("run");
        (eps, phases, out.rounds(), cut)
    });
    for (eps, phases, rounds, cut) in rows {
        println!("{:<7} {:>6} {:>9} {:>10.4}", eps, phases, rounds, cut);
    }
}

/// E4 — Claim 1 / Claim 14: per-phase cut-weight decay vs the proven
/// bounds `1 − 1/36` (deterministic) and `1 − 1/192` (randomized).
pub fn e4_weight_decay() {
    header(
        "E4 per-phase weight decay (Claim 1 bound: ratio <= 0.9722...)",
        "phase   cut(det)   ratio(det)   cut(rand)   ratio(rand)",
    );
    let side = if quick() { 12 } else { 20 };
    let fam = planar::triangulated_grid(side, side);
    let cfg = practical_cfg(0.05).with_phases(8);
    let mut engine = Engine::new(&fam.graph, SimConfig::default());
    let det = run_partition(&mut engine, &cfg).expect("partition");
    let rcfg = RandomPartitionConfig::new(0.05, 0.1)
        .with_phases(8)
        .with_seed(5);
    let mut engine = Engine::new(&fam.graph, SimConfig::default());
    let rand = run_randomized_partition(&mut engine, &rcfg).expect("partition");
    let m = fam.graph.m() as f64;
    let mut prev_d = m;
    let mut prev_r = m;
    for i in 0..det.phases.len().max(rand.phases.len()) {
        let d = det.phases.get(i).map(|p| p.cut_weight as f64);
        let r = rand.phases.get(i).map(|p| p.cut_weight as f64);
        println!(
            "{:>5}   {:>8}   {:>10}   {:>9}   {:>11}",
            i + 1,
            d.map_or("-".into(), |x| format!("{x:.0}")),
            d.map_or("-".into(), |x| format!("{:.3}", x / prev_d.max(1.0))),
            r.map_or("-".into(), |x| format!("{x:.0}")),
            r.map_or("-".into(), |x| format!("{:.3}", x / prev_r.max(1.0))),
        );
        if let Some(x) = d {
            assert!(x <= prev_d, "deterministic cut weight must be monotone");
            prev_d = x;
        }
        if let Some(x) = r {
            prev_r = x;
        }
    }
}

/// E5 — Claim 4: max part diameter per phase vs the `4^{i+1}` bound.
pub fn e5_diameter() {
    header(
        "E5 part diameter growth (Claim 4 bound: diam < 4^{i+1})",
        "phase   max_tree_depth   exact_max_diameter   4^{i+1}",
    );
    let side = if quick() { 10 } else { 16 };
    let fam = planar::triangulated_grid(side, side);
    for t in 1..=6usize {
        let cfg = practical_cfg(0.1).with_phases(t);
        let mut engine = Engine::new(&fam.graph, SimConfig::default());
        let p = run_partition(&mut engine, &cfg).expect("partition");
        let audit = oracle::audit_partition(&fam.graph, &p);
        let depth = p.phases.last().map(|m| m.max_depth).unwrap_or(0);
        println!(
            "{:>5}   {:>14}   {:>18}   {:>8}",
            t,
            depth,
            audit.max_diameter,
            4u64.pow(t as u32 + 1)
        );
        assert!(
            (audit.max_diameter as u64) < 4u64.pow(t as u32 + 1),
            "Claim 4 violated"
        );
    }
}

/// E6 — Claims 8/10 and Corollary 9: violating-edge counts, including the
/// **Claim 10 refutation** measured at scale.
pub fn e6_violations() {
    header(
        "E6 violating edges (Claim 8 holds; Claim 10 REFUTED; Cor 9 holds)",
        "graph                         m    far>=   violations   cor9-bound   claim10-pred",
    );
    let mut rng = StdRng::seed_from_u64(42);
    let nsz = scale(200, 80);
    // Generation consumes the shared RNG sequentially (reproducible
    // streams); the embedding + interval analysis fans across cores.
    let planar_fams: Vec<Certified> = (0..5).map(|_| planar::apollonian(nsz, &mut rng)).collect();
    let far_fams: Vec<Certified> = [nsz / 4, nsz / 2, nsz]
        .into_iter()
        .map(|k| nonplanar::planar_plus_chords(nsz, k, &mut rng))
        .collect();
    // Planar inputs: Claim 10 predicts 0; we measure > 0 on most
    // Apollonian networks (the refutation).
    let planar_rows = TrialRunner::auto().map(planar_fams, |fam| {
        let rot = check_planarity(&fam.graph).into_rotation().expect("planar");
        let ivs = oracle::non_tree_intervals(&fam.graph, &rot, NodeId::new(0));
        (fam, oracle::count_violating_edges(&ivs))
    });
    let mut refuted = 0;
    for (fam, v) in planar_rows {
        refuted += usize::from(v > 0);
        println!(
            "{:<28} {:>5} {:>7.3} {:>12} {:>12} {:>14}",
            fam.name,
            fam.graph.m(),
            0.0,
            v,
            0,
            "0 (refuted!)"
        );
    }
    println!("planar graphs with violations under valid embeddings: {refuted}/5");
    // Far inputs: Corollary 9's lower bound (which is sound) must hold.
    let far_rows = TrialRunner::auto().map(far_fams, |fam| {
        let rot = planartest_embed::RotationSystem::from_adjacency(&fam.graph);
        let ivs = oracle::non_tree_intervals(&fam.graph, &rot, NodeId::new(0));
        (fam, oracle::count_violating_edges(&ivs))
    });
    for (fam, v) in far_rows {
        let bound = (fam.far_fraction() * fam.graph.m() as f64).floor() as usize;
        println!(
            "{:<28} {:>5} {:>7.3} {:>12} {:>12} {:>14}",
            fam.name,
            fam.graph.m(),
            fam.far_fraction(),
            v,
            bound,
            ">= bound"
        );
        assert!(v >= bound, "Corollary 9 violated");
    }
}

/// E7 — Theorem 2: girth vs `log n`, far-ness certificates and the
/// blind-round budget of the lower-bound construction.
pub fn e7_lowerbound() {
    header(
        "E7 lower-bound construction (Theorem 2)",
        "n        m     removed   girth   ln(n)   far>=    blind-rounds",
    );
    let sizes: Vec<usize> = if quick() {
        vec![200, 400]
    } else {
        vec![200, 400, 800, 1600, 3200]
    };
    for &n in &sizes {
        let inst = planartest_core::lowerbound::construct(n, 10, 99);
        let g = &inst.certified.graph;
        println!(
            "{:<8} {:>5} {:>8} {:>7} {:>7.2} {:>7.3} {:>13}",
            n,
            g.m(),
            inst.removed_edges,
            inst.girth.map_or("-".into(), |x| x.to_string()),
            (n as f64).ln(),
            inst.certified.far_fraction(),
            inst.max_blind_rounds(),
        );
        assert!(
            inst.certified.far_fraction() > 0.2,
            "construction must stay far"
        );
    }
}

/// E8 — Theorem 3 vs Theorem 4: partition quality and cost, deterministic
/// vs randomized across δ.
pub fn e8_partition() {
    header(
        "E8 partition quality (det Thm 3 vs randomized Thm 4)",
        "algorithm        parts   cut   cut/n    max_diam   rounds",
    );
    let side = if quick() { 12 } else { 20 };
    let fam = planar::triangulated_grid(side, side);
    let n = fam.graph.n() as f64;
    let cfg = practical_cfg(0.1).with_phases(8);
    let mut engine = Engine::new(&fam.graph, SimConfig::default());
    let det = run_partition(&mut engine, &cfg).expect("partition");
    let audit = oracle::audit_partition(&fam.graph, &det);
    println!(
        "{:<16} {:>5} {:>5} {:>7.3} {:>10} {:>8}",
        "deterministic",
        audit.parts,
        audit.cut_edges,
        audit.cut_edges as f64 / n,
        audit.max_diameter,
        engine.stats().total_rounds()
    );
    for delta in [0.5, 0.1, 0.01] {
        let rcfg = RandomPartitionConfig::new(0.1, delta)
            .with_phases(8)
            .with_seed(4);
        let mut engine = Engine::new(&fam.graph, SimConfig::default());
        let p = run_randomized_partition(&mut engine, &rcfg).expect("partition");
        let audit = oracle::audit_partition(&fam.graph, &p);
        println!(
            "{:<16} {:>5} {:>5} {:>7.3} {:>10} {:>8}",
            format!("rand d={delta}"),
            audit.parts,
            audit.cut_edges,
            audit.cut_edges as f64 / n,
            audit.max_diameter,
            engine.stats().total_rounds()
        );
        assert!(audit.parts_connected);
    }
}

/// E9 — Corollary 16: hereditary-property testers.
pub fn e9_hereditary() {
    header(
        "E9 hereditary testers on minor-free graphs (Cor 16)",
        "property        input            verdict   rejecting   rounds",
    );
    let mut rng = StdRng::seed_from_u64(8);
    let nsz = scale(400, 150);
    let cfg = practical_cfg(0.2).with_phases(6);
    let cases: Vec<(&str, Graph, bool)> = vec![
        ("cycle-free", planar::random_tree(nsz, &mut rng).graph, true),
        (
            "cycle-free",
            planar::triangulated_grid(isqrt(nsz), isqrt(nsz)).graph,
            false,
        ),
        (
            "bipartite",
            planar::grid(isqrt(nsz), isqrt(nsz)).graph,
            true,
        ),
        (
            "bipartite",
            planar::triangulated_grid(isqrt(nsz), isqrt(nsz)).graph,
            false,
        ),
    ];
    for (prop, g, expect_accept) in cases {
        let mut engine = Engine::new(&g, SimConfig::default());
        let out = if prop == "cycle-free" {
            test_cycle_freeness(&mut engine, &cfg).expect("run")
        } else {
            test_bipartiteness(&mut engine, &cfg).expect("run")
        };
        println!(
            "{:<15} n={:<12} {:>8} {:>10} {:>8}",
            prop,
            g.n(),
            if out.accepted() { "ACCEPT" } else { "REJECT" },
            out.rejecting.len(),
            engine.stats().total_rounds()
        );
        assert_eq!(out.accepted(), expect_accept, "{prop} verdict wrong");
    }
}

/// E10 — Corollary 17 vs the random-shift (Elkin–Neiman-style) baseline.
pub fn e10_spanner() {
    header(
        "E10 spanners (Cor 17 vs random-shift baseline)",
        "algorithm        eps/beta   edges   size/n   max_stretch   rounds",
    );
    let side = if quick() { 10 } else { 16 };
    let g = planar::triangulated_grid(side, side).graph;
    for eps in [0.3, 0.1] {
        let cfg = practical_cfg(eps).with_phases(8);
        let mut engine = Engine::new(&g, SimConfig::default());
        let sp = build_spanner(&mut engine, &cfg).expect("spanner");
        println!(
            "{:<16} {:>8} {:>7} {:>8.3} {:>13} {:>8}",
            "ours (Cor 17)",
            eps,
            sp.edges.len(),
            sp.size_ratio(&g),
            sp.max_stretch(&g),
            engine.stats().total_rounds()
        );
    }
    for beta in [0.3, 0.1] {
        let cfg = RandomShiftConfig::new(beta);
        let mut engine = Engine::new(&g, SimConfig::default());
        let edges = shift_spanner(&mut engine, &cfg).expect("spanner");
        let keep: std::collections::HashSet<u32> = edges.iter().map(|e| e.raw()).collect();
        let (sub, _) = g.edge_subgraph(|e| keep.contains(&e.raw()));
        let mut worst = 1u32;
        for (u, v) in g.edges() {
            if let Some(d) = planartest_graph::algo::bfs::distances(&sub, u)[v.index()] {
                worst = worst.max(d);
            }
        }
        println!(
            "{:<16} {:>8} {:>7} {:>8.3} {:>13} {:>8}",
            "random-shift",
            beta,
            edges.len(),
            edges.len() as f64 / g.n() as f64,
            worst,
            engine.stats().total_rounds()
        );
    }
}

/// E11 — §1.1 remark: our Stage I vs the random-shift clustering
/// alternative (`O(log n)` vs `O(log² n)` flavour).
pub fn e11_stage1_alt() {
    header(
        "E11 Stage I vs random-shift clustering",
        "algorithm        n      parts   cut/m    max_diam   rounds",
    );
    let sizes: Vec<usize> = if quick() {
        vec![100, 256]
    } else {
        vec![256, 1024, 2304]
    };
    for &n in &sizes {
        let side = isqrt(n);
        let g = planar::triangulated_grid(side, side).graph;
        let cfg = practical_cfg(0.15).with_phases(8);
        let mut engine = Engine::new(&g, SimConfig::default());
        let det = run_partition(&mut engine, &cfg).expect("partition");
        let a = oracle::audit_partition(&g, &det);
        println!(
            "{:<16} {:>5} {:>7} {:>8.3} {:>9} {:>9}",
            "stage-I (ours)",
            g.n(),
            a.parts,
            a.cut_fraction,
            a.max_diameter,
            engine.stats().total_rounds()
        );
        let cfg = RandomShiftConfig::new(0.15);
        let mut engine = Engine::new(&g, SimConfig::default());
        let state = random_shift_partition(&mut engine, &cfg).expect("cluster");
        let cut = state.cut_weight(&g);
        println!(
            "{:<16} {:>5} {:>7} {:>8.3} {:>9} {:>9}",
            "random-shift",
            g.n(),
            state.part_count(),
            cut as f64 / g.m() as f64,
            "-",
            engine.stats().total_rounds()
        );
    }
}

/// E12 — model audit: bandwidth ceiling and message volume.
pub fn e12_bandwidth() {
    header(
        "E12 bandwidth audit (per-edge per-round <= W enforced by engine)",
        "graph                     W   rounds   messages   words   words/msg<=W",
    );
    let mut rng = StdRng::seed_from_u64(3);
    let graphs = vec![
        planar::triangulated_grid(10, 10),
        nonplanar::planar_plus_chords(100, 60, &mut rng),
    ];
    for fam in graphs {
        for w in [2usize, 4, 8] {
            let sim = SimConfig {
                max_words_per_message: w,
                ..SimConfig::default()
            };
            let cfg = practical_cfg(0.1).with_phases(6);
            let out = PlanarityTester::new(cfg)
                .with_sim_config(sim)
                .run(&fam.graph);
            match out {
                Ok(out) => println!(
                    "{:<24} {:>3} {:>8} {:>10} {:>7} {:>8.2}",
                    fam.name,
                    w,
                    out.rounds(),
                    out.stats.messages,
                    out.stats.words,
                    out.stats.words as f64 / out.stats.messages.max(1) as f64
                ),
                Err(e) => println!("{:<24} {:>3}  error: {e}", fam.name, w),
            }
        }
    }
}

fn isqrt(n: usize) -> usize {
    (n as f64).sqrt().round() as usize
}

/// Runs every experiment in order (the `all_experiments` binary).
pub fn run_all() {
    e1_correctness();
    e2_rounds_vs_n();
    e3_rounds_vs_eps();
    e4_weight_decay();
    e5_diameter();
    e6_violations();
    e7_lowerbound();
    e8_partition();
    e9_hereditary();
    e10_spanner();
    e11_stage1_alt();
    e12_bandwidth();
    let _ = runtime_bench();
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_flag_reads_env() {
        // Just exercise the helper; the value depends on the environment.
        let _ = super::quick();
    }
}
